package tflm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
)

// Kernel executes one float op into out, a tensor the interpreter has
// bound to the op's slot of its activation arena, and returns the op's
// output (usually out itself). Registered kernels are resolved by name
// at every Invoke — the runtime dispatch the EON compiler eliminates.
// Custom kernels may ignore out and return their own tensor.
type Kernel func(layer nn.Layer, in, out *tensor.F32) *tensor.F32

// opRegistry maps op kinds to float kernels. All builtin kinds delegate
// to the layer's stateless InferInto; the registry exists to model (and
// measure, in benchmarks) interpreter-style indirection, and to let
// tests register custom ops.
var opRegistry = map[string]Kernel{}

// RegisterKernel installs a kernel for an op kind, replacing any builtin.
// It returns a function restoring the previous registration.
func RegisterKernel(kind string, k Kernel) func() {
	prev, had := opRegistry[kind]
	opRegistry[kind] = k
	return func() {
		if had {
			opRegistry[kind] = prev
		} else {
			delete(opRegistry, kind)
		}
	}
}

func init() {
	for _, kind := range []string{
		"dense", "conv2d", "depthwise_conv2d", "conv1d",
		"maxpool2d", "avgpool2d", "maxpool1d", "gap2d",
		"flatten", "reshape", "softmax", "dropout", "batchnorm",
	} {
		opRegistry[kind] = func(layer nn.Layer, in, out *tensor.F32) *tensor.F32 {
			layer.InferInto(in, out)
			return out
		}
	}
}

// Interpreter executes a ModelFile by walking its op list and resolving
// each op's kernel from the registry at call time. Activation data lives
// in a pooled arena with one slot per op (no lifetime reuse — the
// planning the EON compiler performs), and every Invoke rebuilds a
// TfLiteTensor-style header per op: the per-tensor bookkeeping the
// interpreter engine pays and compiled programs eliminate.
type Interpreter struct {
	mf *ModelFile
	// invocations counts ops dispatched (for tests and stats).
	invocations atomic.Int64

	// Float-path layout, resolved once at construction.
	shapes   []tensor.Shape
	offs     []int
	arenaLen int
	pool     sync.Pool // *[]float32 arena
}

// NewInterpreter validates the model and prepares it for execution.
func NewInterpreter(mf *ModelFile) (*Interpreter, error) {
	it := &Interpreter{mf: mf}
	switch mf.Precision {
	case Float32:
		if mf.Float == nil {
			return nil, fmt.Errorf("tflm: float model missing")
		}
		specs, err := mf.Float.Spec()
		if err != nil {
			return nil, err
		}
		for _, s := range specs {
			if _, ok := opRegistry[s.Kind]; !ok {
				return nil, fmt.Errorf("tflm: no kernel registered for %q", s.Kind)
			}
			it.shapes = append(it.shapes, s.OutShape.Clone())
			it.offs = append(it.offs, it.arenaLen)
			it.arenaLen += s.OutShape.Elems()
		}
		it.pool.New = func() any {
			buf := make([]float32, it.arenaLen)
			return &buf
		}
	case Int8:
		if mf.Quant == nil {
			return nil, fmt.Errorf("tflm: quant model missing")
		}
	default:
		return nil, fmt.Errorf("tflm: unknown precision %d", mf.Precision)
	}
	return it, nil
}

// Invoke runs one inference and returns class probabilities. The result
// never aliases interpreter state, and concurrent Invoke calls are safe.
func (it *Interpreter) Invoke(in *tensor.F32) (*tensor.F32, error) {
	if !in.Shape.Equal(it.mf.InputShape()) {
		return nil, fmt.Errorf("tflm: input shape %v != model %v", in.Shape, it.mf.InputShape())
	}
	if it.mf.Precision == Int8 {
		it.invocations.Add(int64(len(it.mf.Quant.Ops)))
		return it.mf.Quant.Forward(in), nil
	}
	arena := it.pool.Get().(*[]float32)
	x := in
	for i, l := range it.mf.Float.Layers {
		kernel := opRegistry[l.Kind()] // runtime dispatch per op
		// Per-op TfLiteTensor-style header into this op's arena slot.
		out := &tensor.F32{
			Shape: it.shapes[i].Clone(),
			Data:  (*arena)[it.offs[i] : it.offs[i]+it.shapes[i].Elems()],
		}
		x = kernel(l, x, out)
		it.invocations.Add(1)
	}
	res := x.Clone()
	it.pool.Put(arena)
	return res, nil
}

// Invocations returns the total number of op dispatches performed.
func (it *Interpreter) Invocations() int64 { return it.invocations.Load() }

// ModelFileFromFloat wraps a trained float model for serialization.
func ModelFileFromFloat(m *nn.Model) *ModelFile {
	return &ModelFile{Precision: Float32, NumClasses: m.NumClasses, Float: m}
}

// ModelFileFromQuant wraps a quantized model for serialization.
func ModelFileFromQuant(qm *quant.QModel) *ModelFile {
	return &ModelFile{Precision: Int8, NumClasses: qm.NumClasses, Quant: qm}
}
