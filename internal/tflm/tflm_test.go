package tflm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
)

func smallModel(t testing.TB, seed int64) *nn.Model {
	t.Helper()
	m := nn.NewModel(6, 6, 1)
	m.NumClasses = 3
	m.Add(nn.NewConv2D(4, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewMaxPool2D(2, 2)).
		Add(nn.NewFlatten()).
		Add(nn.NewDense(3, nn.None)).
		Add(nn.NewSoftmax())
	if err := nn.InitWeights(m, seed); err != nil {
		t.Fatal(err)
	}
	return m
}

func randIn(rng *rand.Rand, shape ...int) *tensor.F32 {
	x := tensor.NewF32(shape...)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

func TestFloatMarshalRoundTrip(t *testing.T) {
	m := smallModel(t, 1)
	data, err := Marshal(ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	mf2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if mf2.Precision != Float32 || mf2.NumClasses != 3 {
		t.Fatalf("header: %+v", mf2)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		in := randIn(rng, 6, 6, 1)
		a := m.Forward(in)
		b := mf2.Float.Forward(in)
		for c := range a.Data {
			if math.Abs(float64(a.Data[c]-b.Data[c])) > 1e-6 {
				t.Fatalf("roundtrip diverges: %v vs %v", a.Data, b.Data)
			}
		}
	}
}

func TestInt8MarshalRoundTrip(t *testing.T) {
	m := smallModel(t, 3)
	rng := rand.New(rand.NewSource(4))
	calib := []*tensor.F32{randIn(rng, 6, 6, 1), randIn(rng, 6, 6, 1)}
	qm, err := quant.Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(ModelFileFromQuant(qm))
	if err != nil {
		t.Fatal(err)
	}
	mf2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if mf2.Precision != Int8 {
		t.Fatal("precision lost")
	}
	for i := 0; i < 10; i++ {
		in := randIn(rng, 6, 6, 1)
		a := qm.Forward(in)
		b := mf2.Quant.Forward(in)
		for c := range a.Data {
			if math.Abs(float64(a.Data[c]-b.Data[c])) > 1e-6 {
				t.Fatalf("int8 roundtrip diverges: %v vs %v", a.Data, b.Data)
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XX"),
		[]byte("NOPE1234"),
		[]byte("EPTM"),                     // truncated after magic
		[]byte("EPTM\x02\x00\x00\x00"),     // bad version
		[]byte("EPTM\x01\x00\x00\x00\x07"), // bad precision, truncated
		append([]byte("EPTM\x01\x00\x00\x00\x00"), 0xFF, 0xFF, 0xFF, 0xFF), // absurd count
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: Unmarshal accepted garbage", i)
		}
	}
}

func TestUnmarshalTruncationProperty(t *testing.T) {
	// No prefix of a valid model may crash the parser.
	m := smallModel(t, 5)
	data, err := Marshal(ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	f := func(cut uint16) bool {
		n := int(cut) % len(data)
		_, err := Unmarshal(data[:n])
		return err != nil // must error, not panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInterpreterInvoke(t *testing.T) {
	m := smallModel(t, 6)
	it, err := NewInterpreter(ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in := randIn(rng, 6, 6, 1)
	out, err := it.Invoke(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Data) != 3 {
		t.Fatalf("out = %v", out.Shape)
	}
	if it.Invocations() != 5 {
		t.Errorf("invocations = %d, want 5", it.Invocations())
	}
	// Wrong input shape rejected.
	if _, err := it.Invoke(tensor.NewF32(3, 3, 1)); err == nil {
		t.Error("accepted wrong shape")
	}
}

func TestInterpreterInt8(t *testing.T) {
	m := smallModel(t, 8)
	rng := rand.New(rand.NewSource(9))
	qm, err := quant.Quantize(m, []*tensor.F32{randIn(rng, 6, 6, 1)})
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewInterpreter(ModelFileFromQuant(qm))
	if err != nil {
		t.Fatal(err)
	}
	out, err := it.Invoke(randIn(rng, 6, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-4 {
		t.Errorf("probabilities sum %g", sum)
	}
}

func TestRegisterKernelOverride(t *testing.T) {
	m := smallModel(t, 10)
	it, err := NewInterpreter(ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	called := false
	restore := RegisterKernel("dense", func(layer nn.Layer, in, out *tensor.F32) *tensor.F32 {
		called = true
		return layer.Forward(in)
	})
	defer restore()
	rng := rand.New(rand.NewSource(11))
	if _, err := it.Invoke(randIn(rng, 6, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("custom kernel not dispatched")
	}
	restore()
	if _, ok := opRegistry["dense"]; !ok {
		t.Fatal("restore removed builtin kernel")
	}
}

func TestNewInterpreterValidation(t *testing.T) {
	if _, err := NewInterpreter(&ModelFile{Precision: Float32}); err == nil {
		t.Error("accepted missing float model")
	}
	if _, err := NewInterpreter(&ModelFile{Precision: Int8}); err == nil {
		t.Error("accepted missing quant model")
	}
	if _, err := NewInterpreter(&ModelFile{Precision: 9}); err == nil {
		t.Error("accepted unknown precision")
	}
}

func TestMarshalValidation(t *testing.T) {
	if _, err := Marshal(&ModelFile{Precision: Float32}); err == nil {
		t.Error("marshalled missing float model")
	}
	if _, err := Marshal(&ModelFile{Precision: 9}); err == nil {
		t.Error("marshalled unknown precision")
	}
}

func TestBatchNormStateSerialized(t *testing.T) {
	m := nn.NewModel(4, 4, 2)
	m.NumClasses = 2
	m.Add(nn.NewConv2D(2, 3, 1, nn.Same, nn.None)).
		Add(nn.NewBatchNorm()).
		Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDense(2, nn.None)).
		Add(nn.NewSoftmax())
	nn.InitWeights(m, 12)
	bn := m.Layers[1].(*nn.BatchNorm)
	bn.Build(2)
	bn.Mean.Data[0] = 3.5
	bn.Var.Data[1] = 0.25
	data, err := Marshal(ModelFileFromFloat(m))
	if err != nil {
		t.Fatal(err)
	}
	mf2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	bn2 := mf2.Float.Layers[1].(*nn.BatchNorm)
	if bn2.Mean.Data[0] != 3.5 || bn2.Var.Data[1] != 0.25 {
		t.Fatalf("BN stats lost: mean=%g var=%g", bn2.Mean.Data[0], bn2.Var.Data[1])
	}
}

func BenchmarkInterpreterDispatch(b *testing.B) {
	m := smallModel(b, 13)
	it, _ := NewInterpreter(ModelFileFromFloat(m))
	rng := rand.New(rand.NewSource(14))
	in := randIn(rng, 6, 6, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.Invoke(in)
	}
}
