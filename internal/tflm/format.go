// Package tflm reimplements the interpreter-style inference engine that
// the paper's EON Compiler is compared against (Sec. 4.5, Table 4): a
// serialized flat model format, an op registry, and an interpreter that
// resolves and dispatches kernels at runtime.
//
// The on-disk format ("EPTM") plays the role of the TFLite flatbuffer: a
// self-contained binary holding the graph topology, attributes and
// weights for either a float32 or an int8 model.
package tflm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/tensor"
)

// Precision of a serialized model.
type Precision uint8

// Model precisions.
const (
	Float32 Precision = 0
	Int8    Precision = 1
)

// ModelFile is the in-memory form of a serialized model: exactly one of
// Float or Quant is set.
type ModelFile struct {
	Precision  Precision
	NumClasses int
	Float      *nn.Model
	Quant      *quant.QModel
}

// InputShape returns the model's input tensor shape.
func (mf *ModelFile) InputShape() tensor.Shape {
	if mf.Precision == Int8 {
		return mf.Quant.InputShape
	}
	return mf.Float.InputShape
}

const magic = "EPTM"
const version = 1

type writer struct {
	buf bytes.Buffer
	err error
}

func (w *writer) u32(v uint32)  { w.bin(v) }
func (w *writer) i64(v int64)   { w.bin(v) }
func (w *writer) f32(v float32) { w.bin(math.Float32bits(v)) }
func (w *writer) u8(v uint8)    { w.bin(v) }

func (w *writer) bin(v any) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(&w.buf, binary.LittleEndian, v)
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err == nil {
		w.buf.WriteString(s)
	}
}

func (w *writer) shape(s tensor.Shape) {
	w.u32(uint32(len(s)))
	for _, d := range s {
		w.u32(uint32(d))
	}
}

func (w *writer) f32s(v []float32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f32(x)
	}
}

func (w *writer) i8s(v []int8) {
	w.u32(uint32(len(v)))
	if w.err == nil {
		b := make([]byte, len(v))
		for i, x := range v {
			b[i] = byte(x)
		}
		w.buf.Write(b)
	}
}

func (w *writer) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.bin(x)
	}
}

func (w *writer) attrs(a map[string]float64) {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.bin(a[k])
	}
}

type reader struct {
	r   *bytes.Reader
	err error
}

func (r *reader) bin(v any) {
	if r.err != nil {
		return
	}
	r.err = binary.Read(r.r, binary.LittleEndian, v)
}

func (r *reader) u32() uint32 {
	var v uint32
	r.bin(&v)
	return v
}

func (r *reader) i64() int64 {
	var v int64
	r.bin(&v)
	return v
}

func (r *reader) u8() uint8 {
	var v uint8
	r.bin(&v)
	return v
}

func (r *reader) f32() float32 {
	var v uint32
	r.bin(&v)
	return math.Float32frombits(v)
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || n > uint32(r.r.Len()) {
		if r.err == nil {
			r.err = fmt.Errorf("tflm: corrupt string length %d", n)
		}
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

func (r *reader) count(elemSize int) int {
	n := r.u32()
	if r.err == nil && int(n)*elemSize > r.r.Len() {
		r.err = fmt.Errorf("tflm: corrupt count %d", n)
		return 0
	}
	return int(n)
}

func (r *reader) shape() tensor.Shape {
	n := r.count(4)
	s := make(tensor.Shape, n)
	for i := range s {
		s[i] = int(r.u32())
	}
	return s
}

func (r *reader) f32s() []float32 {
	n := r.count(4)
	v := make([]float32, n)
	for i := range v {
		v[i] = r.f32()
	}
	return v
}

func (r *reader) i8s() []int8 {
	n := r.count(1)
	b := make([]byte, n)
	if r.err == nil {
		if _, err := io.ReadFull(r.r, b); err != nil {
			r.err = err
		}
	}
	v := make([]int8, n)
	for i := range v {
		v[i] = int8(b[i])
	}
	return v
}

func (r *reader) i32s() []int32 {
	n := r.count(4)
	v := make([]int32, n)
	for i := range v {
		r.bin(&v[i])
	}
	return v
}

func (r *reader) attrs() map[string]float64 {
	n := r.count(8)
	a := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		var v float64
		r.bin(&v)
		a[k] = v
	}
	return a
}

// Marshal serializes a model file to the EPTM binary format.
func Marshal(mf *ModelFile) ([]byte, error) {
	w := &writer{}
	w.buf.WriteString(magic)
	w.u32(version)
	w.u8(uint8(mf.Precision))
	w.u32(uint32(mf.NumClasses))
	switch mf.Precision {
	case Float32:
		if mf.Float == nil {
			return nil, fmt.Errorf("tflm: float model missing")
		}
		specs, err := mf.Float.Spec()
		if err != nil {
			return nil, err
		}
		w.shape(mf.Float.InputShape)
		w.u32(uint32(len(specs)))
		tensors := nn.SerializableTensors(mf.Float)
		ti := 0
		for i, s := range specs {
			w.str(s.Kind)
			w.attrs(s.Attrs)
			w.shape(s.InShape)
			w.shape(s.OutShape)
			w.i64(s.MACs)
			nT := tensorCount(mf.Float.Layers[i])
			w.u32(uint32(nT))
			for j := 0; j < nT; j++ {
				w.f32s(tensors[ti].Data)
				w.shape(tensors[ti].Shape)
				ti++
			}
		}
	case Int8:
		if mf.Quant == nil {
			return nil, fmt.Errorf("tflm: quant model missing")
		}
		w.shape(mf.Quant.InputShape)
		w.f32(mf.Quant.InQ.Scale)
		w.bin(mf.Quant.InQ.ZeroPoint)
		w.u32(uint32(len(mf.Quant.Ops)))
		for _, op := range mf.Quant.Ops {
			w.str(op.Kind)
			w.attrs(op.Attrs)
			w.shape(op.InShape)
			w.shape(op.OutShape)
			w.i64(op.MACs)
			w.i8s(op.W)
			w.f32(op.WScale)
			w.i32s(op.Bias)
			w.f32(op.InQ.Scale)
			w.bin(op.InQ.ZeroPoint)
			w.f32(op.OutQ.Scale)
			w.bin(op.OutQ.ZeroPoint)
			w.bin(op.ActMin)
			w.bin(op.ActMax)
		}
	default:
		return nil, fmt.Errorf("tflm: unknown precision %d", mf.Precision)
	}
	if w.err != nil {
		return nil, w.err
	}
	return w.buf.Bytes(), nil
}

// tensorCount returns how many serializable tensors a layer owns.
func tensorCount(l nn.Layer) int {
	n := len(l.Params())
	if _, ok := l.(*nn.BatchNorm); ok {
		n += 2 // moving mean and variance
	}
	return n
}

// Unmarshal parses an EPTM binary back into a model file.
func Unmarshal(data []byte) (*ModelFile, error) {
	if len(data) < 4 || string(data[:4]) != magic {
		return nil, fmt.Errorf("tflm: bad magic")
	}
	r := &reader{r: bytes.NewReader(data[4:])}
	if v := r.u32(); v != version {
		return nil, fmt.Errorf("tflm: unsupported version %d", v)
	}
	mf := &ModelFile{Precision: Precision(r.u8())}
	mf.NumClasses = int(r.u32())
	switch mf.Precision {
	case Float32:
		inShape := r.shape()
		nOps := r.count(1)
		specs := make([]nn.OpSpec, 0, nOps)
		var weights [][]float32
		var wShapes []tensor.Shape
		var counts []int
		for i := 0; i < nOps && r.err == nil; i++ {
			s := nn.OpSpec{Kind: r.str(), Attrs: r.attrs(), InShape: r.shape(), OutShape: r.shape(), MACs: r.i64()}
			nT := r.count(1)
			counts = append(counts, nT)
			for j := 0; j < nT; j++ {
				weights = append(weights, r.f32s())
				wShapes = append(wShapes, r.shape())
			}
			specs = append(specs, s)
		}
		if r.err != nil {
			return nil, r.err
		}
		m, err := nn.ModelFromSpecs(inShape, specs, mf.NumClasses)
		if err != nil {
			return nil, err
		}
		tensors := nn.SerializableTensors(m)
		if len(tensors) != len(weights) {
			return nil, fmt.Errorf("tflm: weight tensor count %d != model %d", len(weights), len(tensors))
		}
		for i, t := range tensors {
			if len(t.Data) != len(weights[i]) {
				return nil, fmt.Errorf("tflm: weight tensor %d size %d != model %d", i, len(weights[i]), len(t.Data))
			}
			copy(t.Data, weights[i])
		}
		mf.Float = m
	case Int8:
		qm := &quant.QModel{NumClasses: mf.NumClasses}
		qm.InputShape = r.shape()
		qm.InQ.Scale = r.f32()
		r.bin(&qm.InQ.ZeroPoint)
		nOps := r.count(1)
		for i := 0; i < nOps && r.err == nil; i++ {
			op := &quant.QOp{Kind: r.str(), Attrs: r.attrs(), InShape: r.shape(), OutShape: r.shape(), MACs: r.i64()}
			op.W = r.i8s()
			op.WScale = r.f32()
			op.Bias = r.i32s()
			op.InQ.Scale = r.f32()
			r.bin(&op.InQ.ZeroPoint)
			op.OutQ.Scale = r.f32()
			r.bin(&op.OutQ.ZeroPoint)
			r.bin(&op.ActMin)
			r.bin(&op.ActMax)
			op.Rebind()
			qm.Ops = append(qm.Ops, op)
		}
		if r.err != nil {
			return nil, r.err
		}
		mf.Quant = qm
	default:
		return nil, fmt.Errorf("tflm: unknown precision %d", mf.Precision)
	}
	return mf, nil
}
