// Package profiler estimates the RAM and flash consumption of a deployed
// model (paper Sec. 4.4, Table 4). RAM is dominated by the activation
// tensor arena, which is planned with a liveness-based allocator like the
// one in TFLM; flash is weights + kernel code + runtime. The TFLM engine
// model pays interpreter overheads (flatbuffer metadata, per-tensor
// bookkeeping, arena padding) that the EON compiler model eliminates,
// reproducing the paper's Table 4 deltas.
package profiler

import (
	"sort"

	"edgepulse/internal/device"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/renode"
)

// Buffer is one allocation interval for the arena planner: a byte size
// live over [Start, End] op indices inclusive.
type Buffer struct {
	Size       int64
	Start, End int
}

// PlanArena assigns non-overlapping offsets to buffers whose lifetimes
// intersect, using the greedy size-ordered first-fit strategy of the TFLM
// memory planner. It returns the arena size and per-buffer offsets.
func PlanArena(bufs []Buffer) (int64, []int64) {
	type placed struct {
		idx    int
		offset int64
	}
	order := make([]int, len(bufs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bufs[order[a]].Size > bufs[order[b]].Size })
	offsets := make([]int64, len(bufs))
	var placedBufs []placed
	var arena int64
	overlaps := func(a, b Buffer) bool { return a.Start <= b.End && b.Start <= a.End }
	for _, i := range order {
		b := bufs[i]
		// Collect forbidden intervals from already placed, time-overlapping buffers.
		type iv struct{ lo, hi int64 }
		var busy []iv
		for _, p := range placedBufs {
			if overlaps(b, bufs[p.idx]) {
				busy = append(busy, iv{p.offset, p.offset + bufs[p.idx].Size})
			}
		}
		sort.Slice(busy, func(x, y int) bool { return busy[x].lo < busy[y].lo })
		var off int64
		for _, s := range busy {
			if off+b.Size <= s.lo {
				break
			}
			if s.hi > off {
				off = s.hi
			}
		}
		offsets[i] = off
		placedBufs = append(placedBufs, placed{i, off})
		if off+b.Size > arena {
			arena = off + b.Size
		}
	}
	return arena, offsets
}

// NaiveArena returns the arena size without buffer reuse (every
// activation gets its own allocation) — the baseline for the arena
// ablation bench.
func NaiveArena(bufs []Buffer) int64 {
	var total int64
	for _, b := range bufs {
		total += b.Size
	}
	return total
}

// aliasing ops reuse their input buffer rather than allocating. The
// predicate is shared with the nn package's arena-backed executors so
// plans and profiles agree on buffer lifetimes.
func aliases(kind string) bool { return nn.Aliases(kind) }

// ActivationBuffers derives arena buffers from a model's op specs for the
// given element size (4 for float32, 1 for int8). Buffer 0 is the input.
func ActivationBuffers(specs []nn.OpSpec, elemSize int64) []Buffer {
	bufs, _ := ActivationAssignments(specs, elemSize)
	return bufs
}

// ActivationAssignments derives arena buffers plus the op-to-buffer map:
// bufOf[i] is the buffer index holding the output of op i-1 (bufOf[0] is
// the input, always buffer 0). Aliasing ops share their input's buffer.
// The EON compiler uses the assignment to bind compiled kernel outputs
// to the planner's offsets.
func ActivationAssignments(specs []nn.OpSpec, elemSize int64) ([]Buffer, []int) {
	if len(specs) == 0 {
		return nil, nil
	}
	bufs := []Buffer{{Size: int64(specs[0].InShape.Elems()) * elemSize, Start: 0, End: 0}}
	bufOf := make([]int, len(specs)+1)
	bufOf[0] = 0
	for i, s := range specs {
		in := bufOf[i]
		if aliases(s.Kind) {
			bufOf[i+1] = in
			if bufs[in].End < i+1 {
				bufs[in].End = i + 1
			}
			continue
		}
		// Input must stay live through this op.
		if bufs[in].End < i {
			bufs[in].End = i
		}
		out := Buffer{Size: int64(s.OutShape.Elems()) * elemSize, Start: i, End: i}
		bufs = append(bufs, out)
		bufOf[i+1] = len(bufs) - 1
	}
	// The final output is read by the application after the last op.
	last := bufOf[len(specs)]
	bufs[last].End = len(specs) + 1
	return bufs, bufOf
}

// Memory is a RAM/flash estimate for one (engine, precision) deployment.
type Memory struct {
	Engine    renode.Engine
	Precision renode.Precision

	// RAM components (bytes).
	ArenaBytes int64
	TensorRAM  int64 // per-tensor bookkeeping structures
	RuntimeRAM int64 // interpreter / generated-code state
	RAMBytes   int64 // total
	// Flash components (bytes).
	WeightBytes   int64
	KernelBytes   int64 // kernel code for the ops actually used
	RuntimeFlash  int64 // interpreter + schema parser, or EON glue
	MetadataBytes int64 // flatbuffer model metadata (TFLM only)
	FlashBytes    int64 // total
}

// Engine cost constants, calibrated against the paper's Table 4 deltas.
const (
	tflmRuntimeFlash = 36 << 10 // interpreter + flatbuffer parser + allocator
	eonRuntimeFlash  = 4 << 10  // generated dispatch code
	tflmTensorRAM    = 64       // TfLiteTensor-style struct per tensor
	eonTensorRAM     = 16       // static descriptor per tensor
	tflmRuntimeRAM   = 2 << 10  // interpreter state
	eonRuntimeRAM    = 256      // none to speak of
	tflmOpMetadata   = 96       // flatbuffer op entry
	// tflmArenaPad models the interpreter's alignment and scratch
	// padding as a fraction of the arena.
	tflmArenaPad = 0.17
)

// kernelCode returns the code size of one kernel implementation.
func kernelCode(kind string, p renode.Precision) int64 {
	var f32, i8 int64
	switch kind {
	case "conv2d":
		f32, i8 = 2800, 4600
	case "depthwise_conv2d":
		f32, i8 = 2400, 4100
	case "conv1d":
		f32, i8 = 2200, 3400
	case "dense":
		f32, i8 = 1200, 2100
	case "maxpool2d", "maxpool1d":
		f32, i8 = 900, 1100
	case "avgpool2d", "gap2d":
		f32, i8 = 800, 1000
	case "softmax":
		f32, i8 = 1400, 2200
	case "batchnorm":
		f32, i8 = 900, 1200
	default:
		f32, i8 = 200, 200
	}
	if p == renode.Int8 {
		return i8
	}
	return f32
}

// estimate assembles a Memory from component measurements.
func estimate(specs []nn.OpSpec, weightBytes int64, engine renode.Engine, p renode.Precision) Memory {
	elem := int64(4)
	if p == renode.Int8 {
		elem = 1
	}
	bufs := ActivationBuffers(specs, elem)
	arena, _ := PlanArena(bufs)

	m := Memory{Engine: engine, Precision: p, WeightBytes: weightBytes}
	// Dead kernel elimination: both engines link only used kernels, but
	// TFLM's op resolver carries registration glue per op.
	seen := map[string]bool{}
	for _, s := range specs {
		if aliases(s.Kind) {
			continue
		}
		if !seen[s.Kind] {
			seen[s.Kind] = true
			m.KernelBytes += kernelCode(s.Kind, p)
		}
	}
	nTensors := int64(len(specs) + 1)
	switch engine {
	case renode.TFLM:
		m.ArenaBytes = int64(float64(arena) * (1 + tflmArenaPad))
		m.TensorRAM = nTensors * tflmTensorRAM
		m.RuntimeRAM = tflmRuntimeRAM
		m.RuntimeFlash = tflmRuntimeFlash
		m.MetadataBytes = int64(len(specs)) * tflmOpMetadata
		m.KernelBytes += int64(len(seen)) * 300 // op resolver entries
	case renode.EON:
		m.ArenaBytes = arena
		m.TensorRAM = nTensors * eonTensorRAM
		m.RuntimeRAM = eonRuntimeRAM
		m.RuntimeFlash = eonRuntimeFlash
	}
	m.RAMBytes = m.ArenaBytes + m.TensorRAM + m.RuntimeRAM
	m.FlashBytes = m.WeightBytes + m.KernelBytes + m.RuntimeFlash + m.MetadataBytes
	return m
}

// EstimateFloat profiles a float32 deployment of the model.
func EstimateFloat(m *nn.Model, engine renode.Engine) (Memory, error) {
	specs, err := m.Spec()
	if err != nil {
		return Memory{}, err
	}
	var weightBytes int64
	for _, s := range specs {
		weightBytes += int64(s.WeightElems) * 4
	}
	return estimate(specs, weightBytes, engine, renode.Float32), nil
}

// EstimateInt8 profiles an int8 deployment of a quantized model.
func EstimateInt8(qm *quant.QModel, engine renode.Engine) Memory {
	specs := make([]nn.OpSpec, len(qm.Ops))
	for i, op := range qm.Ops {
		specs[i] = nn.OpSpec{
			Kind:     op.Kind,
			InShape:  op.InShape,
			OutShape: op.OutShape,
			MACs:     op.MACs,
			Attrs:    op.Attrs,
		}
	}
	return estimate(specs, qm.WeightBytes(), renode.Engine(engine), renode.Int8)
}

// Fits reports whether a deployment (model memory plus DSP working RAM)
// fits the target's capacities, leaving headroom for the application
// stack and globals.
func Fits(m Memory, dspRAM int64, t device.Target) bool {
	const appHeadroomRAM = 20 << 10   // stack + firmware globals
	const appHeadroomFlash = 48 << 10 // firmware, HAL, drivers
	return m.RAMBytes+dspRAM+appHeadroomRAM <= t.RAMBytes &&
		m.FlashBytes+appHeadroomFlash <= t.FlashBytes
}
