package profiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edgepulse/internal/device"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/quant"
	"edgepulse/internal/renode"
	"edgepulse/internal/tensor"
)

func TestPlanArenaNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		bufs := make([]Buffer, n)
		for i := range bufs {
			start := rng.Intn(16)
			bufs[i] = Buffer{
				Size:  int64(1 + rng.Intn(1000)),
				Start: start,
				End:   start + rng.Intn(8),
			}
		}
		arena, offsets := PlanArena(bufs)
		// Arena must hold the largest buffer and not exceed the naive sum.
		for _, b := range bufs {
			if arena < b.Size {
				return false
			}
		}
		if arena > NaiveArena(bufs) {
			return false
		}
		// No two time-overlapping buffers may overlap in space.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				timeOverlap := bufs[i].Start <= bufs[j].End && bufs[j].Start <= bufs[i].End
				if !timeOverlap {
					continue
				}
				a0, a1 := offsets[i], offsets[i]+bufs[i].Size
				b0, b1 := offsets[j], offsets[j]+bufs[j].Size
				if a0 < b1 && b0 < a1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlanArenaReusesMemory(t *testing.T) {
	// Disjoint lifetimes must share space.
	bufs := []Buffer{
		{Size: 1000, Start: 0, End: 1},
		{Size: 1000, Start: 2, End: 3},
		{Size: 1000, Start: 4, End: 5},
	}
	arena, _ := PlanArena(bufs)
	if arena != 1000 {
		t.Fatalf("arena = %d, want 1000 (full reuse)", arena)
	}
	if NaiveArena(bufs) != 3000 {
		t.Fatal("naive should be 3000")
	}
}

func TestActivationBuffersAliasing(t *testing.T) {
	m := nn.NewModel(4, 4, 1)
	m.NumClasses = 2
	m.Add(nn.NewFlatten()).Add(nn.NewDense(2, nn.None)).Add(nn.NewSoftmax())
	specs, err := m.Spec()
	if err != nil {
		t.Fatal(err)
	}
	bufs := ActivationBuffers(specs, 4)
	// flatten aliases: buffers = input, dense out, softmax out.
	if len(bufs) != 3 {
		t.Fatalf("%d buffers, want 3", len(bufs))
	}
	if bufs[0].Size != 16*4 {
		t.Errorf("input buffer %d bytes", bufs[0].Size)
	}
}

func kwsModels(t testing.TB) (*nn.Model, *quant.QModel) {
	t.Helper()
	m := models.KWSDSCNN(49, 10, 12)
	if err := nn.InitWeights(m, 1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	calib := make([]*tensor.F32, 4)
	for i := range calib {
		c := tensor.NewF32(49, 10)
		for j := range c.Data {
			c.Data[j] = float32(rng.NormFloat64())
		}
		calib[i] = c
	}
	qm, err := quant.Quantize(m, calib)
	if err != nil {
		t.Fatal(err)
	}
	return m, qm
}

func TestEONBeatsTFLMOnMemory(t *testing.T) {
	// Table 4's central claim: EON reduces both RAM and flash, for both
	// precisions.
	m, qm := kwsModels(t)
	fpTFLM, err := EstimateFloat(m, renode.TFLM)
	if err != nil {
		t.Fatal(err)
	}
	fpEON, err := EstimateFloat(m, renode.EON)
	if err != nil {
		t.Fatal(err)
	}
	i8TFLM := EstimateInt8(qm, renode.TFLM)
	i8EON := EstimateInt8(qm, renode.EON)
	check := func(name string, tflm, eon Memory) {
		if eon.RAMBytes >= tflm.RAMBytes {
			t.Errorf("%s: EON RAM %d >= TFLM %d", name, eon.RAMBytes, tflm.RAMBytes)
		}
		if eon.FlashBytes >= tflm.FlashBytes {
			t.Errorf("%s: EON flash %d >= TFLM %d", name, eon.FlashBytes, tflm.FlashBytes)
		}
	}
	check("float", fpTFLM, fpEON)
	check("int8", i8TFLM, i8EON)

	// Quantization shrinks both RAM (1-byte activations) and flash.
	if i8TFLM.RAMBytes >= fpTFLM.RAMBytes {
		t.Error("int8 RAM not smaller than float")
	}
	if i8TFLM.FlashBytes >= fpTFLM.FlashBytes {
		t.Error("int8 flash not smaller than float")
	}
}

func TestKWSMemoryBallpark(t *testing.T) {
	// Paper Table 4 KWS column: FP TFLM 115.8/148.0 kB, Int8 EON 36.4/65.3 kB.
	// Our estimates should land within ~2x of those magnitudes.
	m, qm := kwsModels(t)
	fp, err := EstimateFloat(m, renode.TFLM)
	if err != nil {
		t.Fatal(err)
	}
	if kb := fp.RAMBytes >> 10; kb < 30 || kb > 300 {
		t.Errorf("KWS FP TFLM RAM = %d kB, paper 115.8", kb)
	}
	if kb := fp.FlashBytes >> 10; kb < 60 || kb > 350 {
		t.Errorf("KWS FP TFLM flash = %d kB, paper 148", kb)
	}
	i8 := EstimateInt8(qm, renode.EON)
	if kb := i8.RAMBytes >> 10; kb < 5 || kb > 100 {
		t.Errorf("KWS Int8 EON RAM = %d kB, paper 36.4", kb)
	}
	if kb := i8.FlashBytes >> 10; kb < 15 || kb > 150 {
		t.Errorf("KWS Int8 EON flash = %d kB, paper 65.3", kb)
	}
}

func TestVWWFloatDoesNotFitNano(t *testing.T) {
	// Paper Table 2: the float VWW model shows '-' on the Nano 33 and
	// Pico (flash/RAM constrained) but runs on the ESP-EYE.
	m := models.VWWMobileNetV1(96, 3, 0.25, 2)
	if err := nn.InitWeights(m, 3); err != nil {
		t.Fatal(err)
	}
	fp, err := EstimateFloat(m, renode.TFLM)
	if err != nil {
		t.Fatal(err)
	}
	const dspRAM = 36 << 10 // image block working RAM
	if Fits(fp, dspRAM, device.MustGet("nano-33-ble-sense")) {
		t.Errorf("VWW float (%d kB flash, %d kB RAM) should not fit the Nano",
			fp.FlashBytes>>10, fp.RAMBytes>>10)
	}
	if !Fits(fp, dspRAM, device.MustGet("esp-eye")) {
		t.Errorf("VWW float should fit the ESP-EYE (8MB RAM)")
	}
}

func TestKWSFitsEverywhere(t *testing.T) {
	m, qm := kwsModels(t)
	fp, err := EstimateFloat(m, renode.TFLM)
	if err != nil {
		t.Fatal(err)
	}
	i8 := EstimateInt8(qm, renode.TFLM)
	for _, tgt := range device.EvaluationBoards() {
		if !Fits(fp, 14<<10, tgt) {
			t.Errorf("KWS float does not fit %s", tgt.ID)
		}
		if !Fits(i8, 14<<10, tgt) {
			t.Errorf("KWS int8 does not fit %s", tgt.ID)
		}
	}
}

func TestMemoryComponentsAddUp(t *testing.T) {
	m, _ := kwsModels(t)
	est, err := EstimateFloat(m, renode.TFLM)
	if err != nil {
		t.Fatal(err)
	}
	if est.RAMBytes != est.ArenaBytes+est.TensorRAM+est.RuntimeRAM {
		t.Error("RAM components do not sum")
	}
	if est.FlashBytes != est.WeightBytes+est.KernelBytes+est.RuntimeFlash+est.MetadataBytes {
		t.Error("flash components do not sum")
	}
}

func TestKernelCodeDedup(t *testing.T) {
	// Two conv2d layers must share one kernel implementation.
	one := nn.NewModel(8, 8, 1)
	one.Add(nn.NewConv2D(2, 3, 1, nn.Same, nn.ReLU))
	two := nn.NewModel(8, 8, 1)
	two.Add(nn.NewConv2D(2, 3, 1, nn.Same, nn.ReLU)).Add(nn.NewConv2D(2, 3, 1, nn.Same, nn.ReLU))
	e1, err := EstimateFloat(one, renode.EON)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EstimateFloat(two, renode.EON)
	if err != nil {
		t.Fatal(err)
	}
	if e2.KernelBytes != e1.KernelBytes {
		t.Errorf("kernel code grew with duplicate ops: %d vs %d", e1.KernelBytes, e2.KernelBytes)
	}
}

func BenchmarkPlanArenaKWS(b *testing.B) {
	m := models.KWSDSCNN(49, 10, 12)
	nn.InitWeights(m, 1)
	specs, _ := m.Spec()
	bufs := ActivationBuffers(specs, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlanArena(bufs)
	}
}
