package stream

import (
	"testing"
)

// BenchmarkStreamWindow measures one steady-state rolling-window step of
// a live session — ring copy + DSP + forward + debounce + event emission
// — on the real impulse hot path. Tracked in BENCH_*.json via
// scripts/bench.sh; the paired allocation gate is
// TestStreamWindowAllocBudget.
func BenchmarkStreamWindow(b *testing.B) {
	imp := toneImpulse(b)
	cls, err := NewImpulseClassifier(imp, false)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		WindowFrames: imp.Input.WindowSamples(),
		StrideFrames: imp.Input.StrideSamples(),
		Axes:         imp.Input.Axes,
		Rate:         imp.Input.FrequencyHz,
	}
	if err := cfg.normalize(); err != nil {
		b.Fatal(err)
	}
	s := newSession("bench", cfg, cls, nil)
	batch := toneSignal(0.5, cfg.Rate).Data[:cfg.StrideFrames]
	// Warm past the event-log cap so steady state is measured.
	for i := 0; i < maxEventsPerSession+8; i++ {
		if err := s.ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
}
