package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Manager errors.
var (
	// ErrCapacity reports that every session slot is taken; the API maps
	// it to 429 with Retry-After.
	ErrCapacity = errors.New("stream: session capacity reached")
	// ErrDraining reports that the server is shutting down and refuses
	// new sessions.
	ErrDraining = errors.New("stream: server draining")
)

// DefaultMaxSessions is the global session cap when none is configured.
const DefaultMaxSessions = 64

// Metrics is the streaming plane's aggregate accounting: live gauges
// plus totals accumulated across closed sessions.
type Metrics struct {
	// ActiveSessions is the current live session count.
	ActiveSessions int `json:"active_sessions"`
	// PeakSessions is the highest concurrent session count observed.
	PeakSessions int `json:"peak_sessions"`
	// Opened counts sessions ever opened; Shed counts opens refused for
	// capacity.
	Opened int64 `json:"opened"`
	Shed   int64 `json:"shed"`
	// Stats aggregates frame/window/detection/drop counters over live
	// and closed sessions.
	Stats Stats `json:"stats"`
}

// Manager owns every live session: slot accounting against a global cap,
// lookup, and graceful drain on shutdown.
type Manager struct {
	mu       sync.Mutex
	max      int
	sessions map[string]*Session
	draining bool
	nextID   int64
	opened   int64
	shed     int64
	peak     int
	// closed accumulates the stats of sessions that have exited.
	closed Stats
	// recent retains terminated sessions (oldest first) so consumers can
	// still replay their event logs shortly after close, mirroring how
	// terminal jobs stay queryable. Retained sessions hold no slot.
	recent []*Session
}

// retainClosed bounds the recently-closed replay window.
const retainClosed = 32

// NewManager builds a manager capped at max concurrent sessions
// (<= 0 selects DefaultMaxSessions).
func NewManager(max int) *Manager {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &Manager{max: max, sessions: map[string]*Session{}}
}

// Open validates cfg, claims a slot and starts a session. It returns
// ErrCapacity when the cap is reached and ErrDraining during shutdown.
func (m *Manager) Open(cfg Config, cls Classifier) (*Session, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if len(cls.Classes()) == 0 {
		return nil, fmt.Errorf("stream: classifier has no classes")
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if len(m.sessions) >= m.max {
		m.shed++
		m.mu.Unlock()
		return nil, ErrCapacity
	}
	m.nextID++
	id := fmt.Sprintf("stream-%d", m.nextID)
	s := newSession(id, cfg, cls, m.remove)
	m.sessions[id] = s
	m.opened++
	if n := len(m.sessions); n > m.peak {
		m.peak = n
	}
	m.mu.Unlock()
	go s.run()
	return s, nil
}

// remove releases a session's slot once its run loop exits, folding its
// counters into the closed totals.
func (m *Manager) remove(s *Session) {
	st := s.Stats()
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sessions, s.ID)
	m.closed.FramesIn += st.FramesIn
	m.closed.Windows += st.Windows
	m.closed.Detections += st.Detections
	m.closed.DroppedFrames += st.DroppedFrames
	m.recent = append(m.recent, s)
	if len(m.recent) > retainClosed {
		m.recent = m.recent[1:]
	}
}

// Get returns the session with the given id: live, or recently closed
// (terminal but still replayable).
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.sessions[id]; ok {
		return s, ok
	}
	for i := len(m.recent) - 1; i >= 0; i-- {
		if m.recent[i].ID == id {
			return m.recent[i], true
		}
	}
	return nil, false
}

// Active returns the live session count.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Max returns the configured session capacity — the denominator of the
// admission gate's streaming-pressure dimension.
func (m *Manager) Max() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.max
}

// Close ends the identified session and reports whether it existed.
func (m *Manager) Close(id, reason string) bool {
	s, ok := m.Get(id)
	if !ok {
		return false
	}
	s.Close(reason)
	return true
}

// Drain refuses new sessions, closes every live one with a "server
// draining" terminal event, and waits (bounded by ctx) for their run
// loops to finish — the graceful-shutdown path.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()
	for _, s := range live {
		s.Close("server draining")
	}
	for _, s := range live {
		select {
		case <-s.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Snapshot returns the streaming plane's aggregate metrics.
func (m *Manager) Snapshot() Metrics {
	m.mu.Lock()
	out := Metrics{
		ActiveSessions: len(m.sessions),
		PeakSessions:   m.peak,
		Opened:         m.opened,
		Shed:           m.shed,
		Stats:          m.closed,
	}
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()
	for _, s := range live {
		st := s.Stats()
		out.Stats.FramesIn += st.FramesIn
		out.Stats.Windows += st.Windows
		out.Stats.Detections += st.Detections
		out.Stats.DroppedFrames += st.DroppedFrames
	}
	return out
}
