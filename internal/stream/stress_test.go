package stream

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgepulse/internal/dsp"
)

// TestSessionsUnderLoadStress hammers the manager with concurrent
// sessions, producers fast enough to trigger backpressure, subscribers
// slow enough to be dropped and resume, and a drain racing it all.
// Run with -race (CI does): this is the concurrency gate for the
// streaming plane.
func TestSessionsUnderLoadStress(t *testing.T) {
	const (
		nSessions   = 6
		nBatches    = 200
		batchFrames = 16
	)
	m := NewManager(nSessions)
	cls := func() Classifier {
		return &fakeClassifier{
			classes: []string{"a", "b"},
			fn: func(win dsp.Signal, scores []float32) error {
				var sum float32
				for _, v := range win.Data {
					sum += v
				}
				scores[0] = sum / float32(len(win.Data))
				scores[1] = 1 - scores[0]
				return nil
			},
		}
	}

	var wg sync.WaitGroup
	var shed, pushed atomic.Int64
	// Signaled once per producer after its first push attempt settles,
	// so the drain below starts mid-flight deterministically instead of
	// after a wall-clock guess.
	started := make(chan struct{}, nSessions)
	for i := 0; i < nSessions; i++ {
		cfg := Config{
			WindowFrames: 32, StrideFrames: 8, Axes: 1, Rate: 1000,
			QueueDepth: 4, RingFrames: 64, IdleTimeout: time.Minute,
			Debounce: DebounceConfig{Threshold: 0.7, Smooth: 2},
		}
		s, err := m.Open(cfg, cls())
		if err != nil {
			t.Fatal(err)
		}
		// Producer: pushes as fast as possible, counting sheds.
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var once sync.Once
			markStarted := func() { once.Do(func() { started <- struct{}{} }) }
			defer markStarted()
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < nBatches; b++ {
				batch := make([]float32, batchFrames)
				for j := range batch {
					batch[j] = rng.Float32()
				}
				switch err := s.Push(batch); {
				case err == nil:
					pushed.Add(1)
				case errors.Is(err, ErrBackpressure):
					shed.Add(1)
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Error(err)
					return
				}
				markStarted()
			}
		}(int64(i))
		// Tailing subscriber that keeps resuming after being dropped.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				replay, ch, cancel := s.Subscribe(last)
				for _, e := range replay {
					if e.Seq <= last {
						t.Errorf("replay went backwards: %d after %d", e.Seq, last)
					}
					last = e.Seq
					if e.Terminal() {
						cancel()
						return
					}
				}
				for e := range ch {
					last = e.Seq
					if e.Terminal() {
						cancel()
						return
					}
					// Simulate a consumer that occasionally stalls long
					// enough to be dropped.
					if e.Seq%97 == 0 {
						time.Sleep(2 * time.Millisecond)
					}
				}
				cancel()
				select {
				case <-s.Done():
					// Terminal may have been emitted while we were
					// resubscribing; one final replay pass sees it.
					replay, _, c2 := s.Subscribe(last)
					c2()
					for _, e := range replay {
						last = e.Seq
					}
					return
				default:
				}
			}
		}()
		// Concurrent metric readers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = s.Stats()
				_ = m.Snapshot()
			}
		}()
	}

	// Every producer has landed at least one batch; drain mid-flight.
	for i := 0; i < nSessions; i++ {
		<-started
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	snap := m.Snapshot()
	if snap.ActiveSessions != 0 {
		t.Fatalf("active sessions after drain: %d", snap.ActiveSessions)
	}
	if snap.Opened != nSessions {
		t.Fatalf("opened = %d, want %d", snap.Opened, nSessions)
	}
	if snap.Stats.FramesIn != pushed.Load()*batchFrames {
		t.Fatalf("frames in = %d, want %d pushed batches * %d",
			snap.Stats.FramesIn, pushed.Load(), batchFrames)
	}
	if snap.Stats.Windows == 0 {
		t.Fatal("no windows classified under load")
	}
	t.Logf("stress: %d batches pushed, %d shed, %d windows, %d dropped frames",
		pushed.Load(), shed.Load(), snap.Stats.Windows, snap.Stats.DroppedFrames)
}
