// Package stream is the live streaming inference plane (paper Sec. 4.6's
// continuous classification, operationalized server-side): devices hold a
// long-lived session, push interleaved sensor frames into a per-session
// ring buffer sized from the impulse's input window, and receive rolling
// classifications over overlapping windows with debounced event emission.
// The session core is transport-agnostic — the API layer speaks chunked
// NDJSON today, and a WebSocket transport can reuse the same sessions.
package stream

// Ring is a fixed-capacity circular buffer of interleaved multi-axis
// frames addressed by absolute frame index. It is deliberately not
// synchronized: a ring belongs to exactly one session goroutine, which
// makes every operation race-free without atomics or locks (the bounded
// inbound queue in front of the session is the concurrency boundary).
type Ring struct {
	data []float32
	axes int
	capF int   // capacity in frames
	end  int64 // absolute index one past the newest stored frame
}

// NewRing allocates a ring holding `frames` frames of `axes` interleaved
// values each.
func NewRing(frames, axes int) *Ring {
	if frames <= 0 || axes <= 0 {
		panic("stream: ring needs positive frames and axes")
	}
	return &Ring{data: make([]float32, frames*axes), axes: axes, capF: frames}
}

// Axes returns the per-frame value count.
func (r *Ring) Axes() int { return r.axes }

// Cap returns the capacity in frames.
func (r *Ring) Cap() int { return r.capF }

// End returns the absolute index one past the newest stored frame (the
// total number of frames ever appended).
func (r *Ring) End() int64 { return r.end }

// Start returns the absolute index of the oldest frame still stored.
func (r *Ring) Start() int64 {
	if r.end <= int64(r.capF) {
		return 0
	}
	return r.end - int64(r.capF)
}

// Append stores samples (len must be a multiple of axes), overwriting the
// oldest frames when full. A batch larger than the capacity keeps only
// its tail — exactly what a reader that can only ever see the last capF
// frames would observe.
func (r *Ring) Append(samples []float32) {
	if len(samples)%r.axes != 0 {
		panic("stream: append length not a multiple of axes")
	}
	n := len(samples) / r.axes
	if n > r.capF {
		skip := n - r.capF
		r.end += int64(skip)
		samples = samples[skip*r.axes:]
	}
	for len(samples) > 0 {
		pos := int(r.end%int64(r.capF)) * r.axes
		c := len(r.data) - pos
		if c > len(samples) {
			c = len(samples)
		}
		copy(r.data[pos:pos+c], samples[:c])
		r.end += int64(c / r.axes)
		samples = samples[c:]
	}
}

// CopyAt copies len(dst)/axes frames starting at absolute frame index
// `start` into dst. It reports false when any requested frame has been
// overwritten or not yet written.
func (r *Ring) CopyAt(start int64, dst []float32) bool {
	if len(dst)%r.axes != 0 {
		panic("stream: copy length not a multiple of axes")
	}
	n := int64(len(dst) / r.axes)
	if start < r.Start() || start+n > r.end {
		return false
	}
	for len(dst) > 0 {
		pos := int(start%int64(r.capF)) * r.axes
		c := len(r.data) - pos
		if c > len(dst) {
			c = len(dst)
		}
		copy(dst[:c], r.data[pos:pos+c])
		start += int64(c / r.axes)
		dst = dst[c:]
	}
	return true
}
