package stream

import (
	"testing"
)

func ringFrames(start, n, axes int) []float32 {
	out := make([]float32, n*axes)
	for f := 0; f < n; f++ {
		for a := 0; a < axes; a++ {
			out[f*axes+a] = float32((start+f)*10 + a)
		}
	}
	return out
}

func TestRingAppendAndCopy(t *testing.T) {
	r := NewRing(8, 2)
	if r.Start() != 0 || r.End() != 0 {
		t.Fatalf("empty ring range [%d,%d)", r.Start(), r.End())
	}
	r.Append(ringFrames(0, 5, 2))
	if r.End() != 5 || r.Start() != 0 {
		t.Fatalf("after 5 frames range [%d,%d)", r.Start(), r.End())
	}
	dst := make([]float32, 3*2)
	if !r.CopyAt(1, dst) {
		t.Fatal("CopyAt(1) refused in-range read")
	}
	want := ringFrames(1, 3, 2)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(8, 1)
	r.Append(ringFrames(0, 6, 1))
	r.Append(ringFrames(6, 6, 1)) // wraps; frames 0..3 overwritten
	if r.End() != 12 || r.Start() != 4 {
		t.Fatalf("range [%d,%d), want [4,12)", r.Start(), r.End())
	}
	// Oldest retained through newest, across the wrap seam.
	dst := make([]float32, 8)
	if !r.CopyAt(4, dst) {
		t.Fatal("CopyAt(Start) refused")
	}
	for i := range dst {
		if want := float32((4 + i) * 10); dst[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
	// Overwritten and future reads refuse.
	if r.CopyAt(3, make([]float32, 2)) {
		t.Error("CopyAt read an overwritten frame")
	}
	if r.CopyAt(11, make([]float32, 2)) {
		t.Error("CopyAt read past End")
	}
}

func TestRingOversizedBatchKeepsTail(t *testing.T) {
	r := NewRing(4, 1)
	r.Append(ringFrames(0, 11, 1))
	if r.End() != 11 || r.Start() != 7 {
		t.Fatalf("range [%d,%d), want [7,11)", r.Start(), r.End())
	}
	dst := make([]float32, 4)
	if !r.CopyAt(7, dst) {
		t.Fatal("CopyAt refused")
	}
	for i := range dst {
		if want := float32((7 + i) * 10); dst[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
}

func TestRingMisalignedPanics(t *testing.T) {
	r := NewRing(4, 3)
	for name, fn := range map[string]func(){
		"append": func() { r.Append(make([]float32, 4)) },
		"copy":   func() { r.CopyAt(0, make([]float32, 2)) },
		"new":    func() { NewRing(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on misuse", name)
				}
			}()
			fn()
		}()
	}
}
