//go:build !race

package stream

// raceEnabled reports that the race detector is active; allocation-count
// assertions are unreliable under its instrumentation and are skipped.
const raceEnabled = false
