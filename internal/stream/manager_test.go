package stream

import (
	"context"
	"errors"
	"testing"
	"time"
)

func managerConfig() Config {
	cfg := testConfig()
	cfg.Tag = "project-1"
	return cfg
}

func TestManagerCapacityAndSlots(t *testing.T) {
	m := NewManager(2)
	s1, err := m.Open(managerConfig(), meanClassifier())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Open(managerConfig(), meanClassifier())
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID == s2.ID {
		t.Fatalf("duplicate session id %q", s1.ID)
	}
	if s1.Tag != "project-1" {
		t.Fatalf("tag = %q", s1.Tag)
	}
	if _, err := m.Open(managerConfig(), meanClassifier()); !errors.Is(err, ErrCapacity) {
		t.Fatalf("third open = %v, want ErrCapacity", err)
	}
	if got, ok := m.Get(s1.ID); !ok || got != s1 {
		t.Fatal("Get lost the session")
	}
	if m.Active() != 2 {
		t.Fatalf("active = %d", m.Active())
	}
	// Closing one frees a slot once its run loop exits.
	if !m.Close(s1.ID, "test") {
		t.Fatal("Close missed a live session")
	}
	<-s1.Done()
	waitActive(t, m, 1)
	if _, err := m.Open(managerConfig(), meanClassifier()); err != nil {
		t.Fatalf("open after slot freed: %v", err)
	}
	if m.Close("no-such-id", "x") {
		t.Fatal("Close invented a session")
	}
	snap := m.Snapshot()
	if snap.Opened != 3 || snap.Shed != 1 || snap.PeakSessions != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func waitActive(t *testing.T, m *Manager, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for m.Active() != want {
		if time.Now().After(deadline) {
			t.Fatalf("active = %d, want %d", m.Active(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestManagerRejectsBadConfig(t *testing.T) {
	m := NewManager(0)
	bad := []Config{
		{WindowFrames: 0, Axes: 1},
		{WindowFrames: 8, Axes: 0},
		{WindowFrames: 8, StrideFrames: 9, Axes: 1},
	}
	for i, cfg := range bad {
		if _, err := m.Open(cfg, meanClassifier()); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := m.Open(testConfig(), &fakeClassifier{}); err == nil {
		t.Error("accepted classifier with no classes")
	}
}

func TestManagerDrain(t *testing.T) {
	m := NewManager(8)
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := m.Open(managerConfig(), meanClassifier())
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		events, done := s.Events(0)
		if !done {
			t.Fatal("session alive after drain")
		}
		last := events[len(events)-1]
		if !last.Terminal() || last.Reason != "server draining" {
			t.Fatalf("terminal event %+v", last)
		}
	}
	if _, err := m.Open(managerConfig(), meanClassifier()); !errors.Is(err, ErrDraining) {
		t.Fatalf("open while draining = %v, want ErrDraining", err)
	}
	if m.Active() != 0 {
		t.Fatalf("active after drain = %d", m.Active())
	}
}

// TestManagerSnapshotAggregates: counters from closed sessions fold into
// the totals alongside live ones.
func TestManagerSnapshotAggregates(t *testing.T) {
	m := NewManager(4)
	s1, err := m.Open(managerConfig(), meanClassifier())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.PushWait(context.Background(), make([]float32, 16)); err != nil {
		t.Fatal(err)
	}
	s1.Close("done")
	<-s1.Done()
	waitActive(t, m, 0)
	s2, err := m.Open(managerConfig(), meanClassifier())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.PushWait(context.Background(), make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := m.Snapshot()
		// 16 frames closed + 8 live; 3 + 1 windows.
		if snap.Stats.FramesIn == 24 && snap.Stats.Windows == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never converged: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	s2.Close("done")
}

// TestManagerRetainsClosedSessions: a terminated session stays
// addressable for event replay (bounded by retainClosed) without
// holding a capacity slot.
func TestManagerRetainsClosedSessions(t *testing.T) {
	m := NewManager(1)
	s, err := m.Open(managerConfig(), meanClassifier())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PushWait(context.Background(), make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	s.Close("done")
	<-s.Done()
	waitActive(t, m, 0)
	got, ok := m.Get(s.ID)
	if !ok || got != s {
		t.Fatal("closed session not retained for replay")
	}
	events, done := got.Events(0)
	if !done || len(events) < 2 || !events[len(events)-1].Terminal() {
		t.Fatalf("replay after close: done=%v events=%+v", done, events)
	}
	// The slot is free despite retention.
	s2, err := m.Open(managerConfig(), meanClassifier())
	if err != nil {
		t.Fatalf("open after retention: %v", err)
	}
	s2.Close("done")
	<-s2.Done()
	waitActive(t, m, 0)
	// Retention is bounded: churn enough sessions to evict the first.
	for i := 0; i < retainClosed+1; i++ {
		si, err := m.Open(managerConfig(), meanClassifier())
		if err != nil {
			t.Fatal(err)
		}
		si.Close("churn")
		<-si.Done()
	}
	waitActive(t, m, 0)
	if _, ok := m.Get(s.ID); ok {
		t.Fatal("evicted session still addressable")
	}
}
