package stream

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
)

// fakeClassifier scores windows with a pure function — the unit-test
// stand-in for the impulse hot path.
type fakeClassifier struct {
	classes []string
	fn      func(win dsp.Signal, scores []float32) error
}

func (f *fakeClassifier) Classes() []string { return f.classes }
func (f *fakeClassifier) Classify(win dsp.Signal, scores []float32) error {
	return f.fn(win, scores)
}

// meanClassifier maps a window's mean sample to class 0's score.
func meanClassifier() *fakeClassifier {
	return &fakeClassifier{
		classes: []string{"kw", "rest"},
		fn: func(win dsp.Signal, scores []float32) error {
			var sum float32
			for _, v := range win.Data {
				sum += v
			}
			m := sum / float32(len(win.Data))
			scores[0] = m
			scores[1] = 1 - m
			return nil
		},
	}
}

func testConfig() Config {
	return Config{
		WindowFrames: 8, StrideFrames: 4, Axes: 1, Rate: 100,
		IdleTimeout: time.Minute,
		Debounce: DebounceConfig{
			Threshold: 0.6, Release: 0.3, Smooth: 1,
			// "rest" is the background class: it scores high on silence
			// and would otherwise fire at stream start.
			Ignore: []string{"rest"},
		},
	}
}

// collect tails a session until the terminal event, returning the full
// ordered log.
func collect(t *testing.T, s *Session) []Event {
	t.Helper()
	replay, ch, cancel := s.Subscribe(0)
	defer cancel()
	events := append([]Event(nil), replay...)
	if len(events) > 0 && events[len(events)-1].Terminal() {
		return events
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return events
			}
			events = append(events, e)
			if e.Terminal() {
				return events
			}
		case <-deadline:
			t.Fatal("timed out waiting for terminal event")
		}
	}
}

func openTestSession(t *testing.T, cfg Config, cls Classifier) (*Manager, *Session) {
	t.Helper()
	m := NewManager(4)
	s, err := m.Open(cfg, cls)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

// TestSessionRollingWindows: pushed frames produce one result event per
// stride-aligned window, with correct window starts and debounced
// detections.
func TestSessionRollingWindows(t *testing.T) {
	_, s := openTestSession(t, testConfig(), meanClassifier())
	// 24 frames: a burst of ones in [8,16) over zeros.
	frames := make([]float32, 24)
	for i := 8; i < 16; i++ {
		frames[i] = 1
	}
	// Push in uneven chunks to prove chunking is invisible.
	for _, chunk := range [][]float32{frames[:5], frames[5:6], frames[6:19], frames[19:]} {
		if err := s.Push(append([]float32(nil), chunk...)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	s.Close("test done")
	events := collect(t, s)

	var results, detections []Event
	for _, e := range events {
		switch e.Type {
		case EventResult:
			results = append(results, e)
		case EventDetection:
			detections = append(detections, e)
		}
	}
	// Windows at 0, 4, 8, 16: window 12..20 not complete? 24 frames →
	// starts 0,4,8,12,16 (16+8=24).
	wantStarts := []int64{0, 4, 8, 12, 16}
	if len(results) != len(wantStarts) {
		t.Fatalf("got %d results, want %d (%+v)", len(results), len(wantStarts), results)
	}
	for i, e := range results {
		if e.WindowStart != wantStarts[i] {
			t.Fatalf("result %d at window %d, want %d", i, e.WindowStart, wantStarts[i])
		}
	}
	// Window starting at 8 is all ones (mean 1.0): exactly one detection
	// despite windows 4 and 12 also crossing with mean 0.5 < threshold.
	if len(detections) != 1 || detections[0].WindowStart != 8 || detections[0].Class != 0 {
		t.Fatalf("detections = %+v, want one at window 8 for class 0", detections)
	}
	if detections[0].Scores == nil {
		t.Fatal("detection event missing smoothed scores")
	}
	// Log shape: open first, terminal last with the Close reason.
	if events[0].Type != EventState || events[0].Status != StatusOpen {
		t.Fatalf("first event %+v, want open state", events[0])
	}
	last := events[len(events)-1]
	if !last.Terminal() || last.Reason != "test done" {
		t.Fatalf("last event %+v, want closed(test done)", last)
	}
	st := s.Stats()
	if st.FramesIn != 24 || st.Windows != 5 || st.Detections != 1 || st.DroppedFrames != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionCloseDrainsQueue: batches pushed before Close are still
// classified.
func TestSessionCloseDrainsQueue(t *testing.T) {
	gate := make(chan struct{})
	cls := meanClassifier()
	inner := cls.fn
	first := true
	cls.fn = func(win dsp.Signal, scores []float32) error {
		if first {
			first = false
			<-gate
		}
		return inner(win, scores)
	}
	_, s := openTestSession(t, testConfig(), cls)
	for i := 0; i < 4; i++ {
		if err := s.Push(make([]float32, 8)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close("bye")
	close(gate)
	<-s.Done()
	if st := s.Stats(); st.Windows != 7 { // 32 frames, stride 4: starts 0..24
		t.Fatalf("windows = %d, want 7 (queue not drained)", st.Windows)
	}
}

func TestSessionBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	gate := make(chan struct{})
	cls := meanClassifier()
	inner := cls.fn
	cls.fn = func(win dsp.Signal, scores []float32) error {
		<-gate
		return inner(win, scores)
	}
	_, s := openTestSession(t, cfg, cls)
	// The run loop consumes at most one batch (then blocks in Classify);
	// depth 2 + 1 in-flight = 3 accepted, 4th must shed.
	var got error
	for i := 0; i < 4; i++ {
		if err := s.Push(make([]float32, 8)); err != nil {
			got = err
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !errors.Is(got, ErrBackpressure) {
		t.Fatalf("push error = %v, want ErrBackpressure", got)
	}
	// PushWait blocks until the consumer frees the queue.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.PushWait(ctx, make([]float32, 8)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PushWait on full queue = %v, want deadline exceeded", err)
	}
	close(gate)
	done := make(chan error, 1)
	go func() { done <- s.PushWait(context.Background(), make([]float32, 8)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("PushWait after unblock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PushWait never completed")
	}
	s.Close("done")
	<-s.Done()
	if err := s.Push(make([]float32, 8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
}

func TestSessionRejectsBadBatch(t *testing.T) {
	cfg := testConfig()
	cfg.Axes = 3
	_, s := openTestSession(t, cfg, &fakeClassifier{
		classes: []string{"a"},
		fn:      func(dsp.Signal, []float32) error { return nil },
	})
	defer func() { s.Close(""); <-s.Done() }()
	if err := s.Push(make([]float32, 4)); err == nil {
		t.Fatal("accepted batch not a multiple of axes")
	}
	if err := s.Push(nil); err == nil {
		t.Fatal("accepted empty batch")
	}
}

// TestSessionOverrunSkipsAndCounts: a batch far larger than the ring
// drops the overwritten span, skips forward stride-aligned, and keeps
// classifying.
func TestSessionOverrunSkipsAndCounts(t *testing.T) {
	cfg := testConfig()
	cfg.RingFrames = 12 // window 8 + stride 4
	_, s := openTestSession(t, cfg, meanClassifier())
	if err := s.Push(make([]float32, 40)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	s.Close("done")
	events := collect(t, s)
	var starts []int64
	for _, e := range events {
		if e.Type == EventResult {
			starts = append(starts, e.WindowStart)
		}
	}
	// Ring keeps [28,40); next skips 0 → 28; windows at 28 and 32.
	if len(starts) != 2 || starts[0] != 28 || starts[1] != 32 {
		t.Fatalf("window starts = %v, want [28 32]", starts)
	}
	if st := s.Stats(); st.DroppedFrames != 28 {
		t.Fatalf("dropped = %d, want 28", st.DroppedFrames)
	}
}

func TestSessionIdleTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.IdleTimeout = 30 * time.Millisecond
	_, s := openTestSession(t, cfg, meanClassifier())
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("idle session never closed")
	}
	events, done := s.Events(0)
	if !done {
		t.Fatal("Events reports not done after idle close")
	}
	last := events[len(events)-1]
	if !last.Terminal() || last.Reason != "idle timeout" {
		t.Fatalf("terminal event %+v, want idle timeout", last)
	}
}

func TestSessionClassifierErrorCloses(t *testing.T) {
	cls := &fakeClassifier{
		classes: []string{"a"},
		fn:      func(dsp.Signal, []float32) error { return errors.New("boom") },
	}
	_, s := openTestSession(t, testConfig(), cls)
	if err := s.Push(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	events, _ := s.Events(0)
	last := events[len(events)-1]
	if !last.Terminal() || !strings.Contains(last.Reason, "boom") {
		t.Fatalf("terminal event %+v, want classifier error", last)
	}
}

// TestSessionSubscribeResume: a canceled subscriber resuming from its
// last Seq sees every event exactly once.
func TestSessionSubscribeResume(t *testing.T) {
	_, s := openTestSession(t, testConfig(), meanClassifier())
	if err := s.Push(make([]float32, 16)); err != nil { // windows 0,4,8? 16 frames → starts 0,4,8
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	replay, _, cancel := s.Subscribe(0)
	cancel()
	if len(replay) == 0 {
		t.Fatal("no replayed events")
	}
	mid := replay[len(replay)/2].Seq
	rest, _, cancel2 := s.Subscribe(mid)
	cancel2()
	if len(rest) != len(replay)-int(mid-replay[0].Seq+1) {
		t.Fatalf("resume from %d returned %d events, replay had %d from %d",
			mid, len(rest), len(replay), replay[0].Seq)
	}
	if len(rest) > 0 && rest[0].Seq != mid+1 {
		t.Fatalf("resume starts at seq %d, want %d", rest[0].Seq, mid+1)
	}
	s.Close("done")
	<-s.Done()
	// Subscribing after termination replays and returns a closed channel.
	all, ch, cancel3 := s.Subscribe(0)
	defer cancel3()
	if _, open := <-ch; open {
		t.Fatal("post-terminal subscription channel not closed")
	}
	if !all[len(all)-1].Terminal() {
		t.Fatal("post-terminal replay missing terminal event")
	}
	// Seqs are contiguous from 1.
	for i, e := range all {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

// TestSessionEventLogCapped: the retained log stays bounded and keeps
// contiguous seqs at the tail.
func TestSessionEventLogCapped(t *testing.T) {
	cfg := testConfig()
	cfg.RingFrames = 4096
	_, s := openTestSession(t, cfg, meanClassifier())
	// 600 windows: 600*4+4 frames.
	for i := 0; i < 100; i++ {
		if err := s.PushWait(context.Background(), make([]float32, 6*4)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close("done")
	<-s.Done()
	events, _ := s.Events(0)
	if len(events) > maxEventsPerSession {
		t.Fatalf("retained %d events, cap %d", len(events), maxEventsPerSession)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("gap between seq %d and %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

// toneImpulse builds a small real impulse (MFE + conv classifier,
// deterministic random weights) for equivalence, allocation and
// benchmark tests.
func toneImpulse(t testing.TB) *core.Impulse {
	t.Helper()
	imp := core.New("stream-test")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 250, StrideMS: 125, FrequencyHz: 4000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = []string{"high", "low"}
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 3); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	return imp
}

func toneSignal(seconds float64, rate int) dsp.Signal {
	n := int(seconds * float64(rate))
	data := make([]float32, n)
	for i := range data {
		data[i] = 0.5 * float32(math.Sin(2*math.Pi*700*float64(i)/float64(rate)))
	}
	return dsp.Signal{Data: data, Rate: rate, Axes: 1}
}

// TestSessionMatchesOneShotClassify: rolling session results must equal
// the one-shot Windows+Classify path bitwise, chunking notwithstanding.
func TestSessionMatchesOneShotClassify(t *testing.T) {
	imp := toneImpulse(t)
	cls, err := NewImpulseClassifier(imp, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		WindowFrames: imp.Input.WindowSamples(),
		StrideFrames: imp.Input.StrideSamples(),
		Axes:         imp.Input.Axes,
		Rate:         imp.Input.FrequencyHz,
		IdleTimeout:  time.Minute,
	}
	_, s := openTestSession(t, cfg, cls)
	sig := toneSignal(1.5, imp.Input.FrequencyHz)
	// Push in awkward chunk sizes.
	for off, step := 0, 333; off < len(sig.Data); off += step {
		end := off + step
		if end > len(sig.Data) {
			end = len(sig.Data)
		}
		if err := s.PushWait(context.Background(), append([]float32(nil), sig.Data[off:end]...)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	s.Close("done")
	events := collect(t, s)

	wins := imp.Windows(sig)
	var results []Event
	for _, e := range events {
		if e.Type == EventResult {
			results = append(results, e)
		}
	}
	if len(results) != len(wins) {
		t.Fatalf("session classified %d windows, one-shot slices %d", len(results), len(wins))
	}
	for i, w := range wins {
		want, err := imp.Classify(w)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if wantStart := int64(i * cfg.StrideFrames); got.WindowStart != wantStart {
			t.Fatalf("window %d starts at %d, want %d", i, got.WindowStart, wantStart)
		}
		if label := imp.Classes[got.Class]; label != want.Label {
			t.Fatalf("window %d: session label %q, one-shot %q", i, label, want.Label)
		}
		if got.Score != want.Scores[want.Label] {
			t.Fatalf("window %d: session score %v, one-shot %v", i, got.Score, want.Scores[want.Label])
		}
	}
}

// TestStreamWindowAllocBudget is the acceptance gate: steady-state
// per-window classification inside a session must allocate no more than
// the one-shot Impulse.Classify path (whose Forward budget
// perf_regression_test.go pins at <= 4).
func TestStreamWindowAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by race-detector instrumentation")
	}
	imp := toneImpulse(t)
	cls, err := NewImpulseClassifier(imp, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		WindowFrames: imp.Input.WindowSamples(),
		StrideFrames: imp.Input.StrideSamples(),
		Axes:         imp.Input.Axes,
		Rate:         imp.Input.FrequencyHz,
	}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	s := newSession("alloc-test", cfg, cls, nil)
	// Drive ingest directly (single goroutine, like the run loop) with
	// one stride per call = one window per call. Warm past the event-log
	// cap so the log append stops growing.
	batch := toneSignal(0.5, cfg.Rate).Data[:cfg.StrideFrames]
	for i := 0; i < maxEventsPerSession+8; i++ {
		if err := s.ingest(batch); err != nil {
			t.Fatal(err)
		}
	}
	streamAllocs := testing.AllocsPerRun(10, func() {
		if err := s.ingest(batch); err != nil {
			t.Fatal(err)
		}
	})

	win := imp.Windows(toneSignal(0.5, cfg.Rate))[0]
	if _, err := imp.Classify(win); err != nil {
		t.Fatal(err)
	}
	oneShotAllocs := testing.AllocsPerRun(10, func() {
		if _, err := imp.Classify(win); err != nil {
			t.Fatal(err)
		}
	})
	if streamAllocs > oneShotAllocs {
		t.Errorf("session window allocates %v per classification, one-shot Classify %v: streaming must not exceed the one-shot budget",
			streamAllocs, oneShotAllocs)
	}
}
