package stream

import "testing"

// TestDebounceFiresOncePerOccurrence is the core contract: a keyword
// spanning many overlapping windows yields exactly one detection, and a
// second occurrence after the score falls away fires again.
func TestDebounceFiresOncePerOccurrence(t *testing.T) {
	d := NewDebouncer([]string{"kw", "noise"}, DebounceConfig{
		Threshold: 0.6, Release: 0.4, Smooth: 1, Ignore: []string{"noise"},
	})
	seq := []float32{0.1, 0.2, 0.9, 0.95, 0.9, 0.8, 0.7, 0.3, 0.1, 0.85, 0.9, 0.2}
	var fires []int
	for i, kw := range seq {
		if class, fired := d.Observe([]float32{kw, 1 - kw}); fired {
			if class != 0 {
				t.Fatalf("window %d: fired class %d, want 0", i, class)
			}
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 2 || fires[1] != 9 {
		t.Fatalf("fired at windows %v, want [2 9]", fires)
	}
}

// TestDebounceHysteresisBlocksRefire: staying above Release (but dipping
// below Threshold) must not re-arm.
func TestDebounceHysteresisBlocksRefire(t *testing.T) {
	d := NewDebouncer([]string{"kw"}, DebounceConfig{Threshold: 0.6, Release: 0.4, Smooth: 1})
	fires := 0
	for _, s := range []float32{0.9, 0.5, 0.7, 0.5, 0.9, 0.45} {
		if _, fired := d.Observe([]float32{s}); fired {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("fired %d times without dropping below release, want 1", fires)
	}
}

// TestDebounceSmoothingDelaysFire: with Smooth=3, one spike among low
// scores never lifts the mean over the threshold, while a sustained
// score fires as soon as the mean crosses it.
func TestDebounceSmoothingDelaysFire(t *testing.T) {
	d := NewDebouncer([]string{"kw"}, DebounceConfig{Threshold: 0.6, Release: 0.2, Smooth: 3})
	for i, s := range []float32{0.1, 0.9, 0.1} { // spike: mean peaks at 0.55
		if _, fired := d.Observe([]float32{s}); fired {
			t.Fatalf("window %d: single spike fired through Smooth=3", i)
		}
	}
	fires := 0
	for _, s := range []float32{0.9, 0.9, 0.9} { // sustained: mean crosses 0.6
		if _, fired := d.Observe([]float32{s}); fired {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("sustained score fired %d times, want 1", fires)
	}
}

// TestDebounceMovingAverage pins the partial-history average: with
// Smooth=2 the first window averages only itself.
func TestDebounceMovingAverage(t *testing.T) {
	d := NewDebouncer([]string{"a", "b"}, DebounceConfig{Threshold: 0.99, Smooth: 2})
	d.Observe([]float32{0.4, 0.8})
	if got := d.Smoothed()[0]; got != 0.4 {
		t.Fatalf("smoothed[0] = %v after one window, want 0.4", got)
	}
	d.Observe([]float32{0.6, 0.2})
	if got := d.Smoothed()[0]; got != 0.5 {
		t.Fatalf("smoothed[0] = %v, want 0.5", got)
	}
	if got := d.Smoothed()[1]; got != 0.5 {
		t.Fatalf("smoothed[1] = %v, want 0.5", got)
	}
}

func TestDebounceSuppressionWindow(t *testing.T) {
	d := NewDebouncer([]string{"a", "b"}, DebounceConfig{
		Threshold: 0.6, Release: 0.5, Smooth: 1, Suppress: 2,
	})
	if _, fired := d.Observe([]float32{0.9, 0.1}); !fired {
		t.Fatal("first window should fire")
	}
	// Class b crosses while suppressed: no fire, even though it is armed.
	if _, fired := d.Observe([]float32{0.1, 0.9}); fired {
		t.Fatal("fired during suppression window 1")
	}
	if _, fired := d.Observe([]float32{0.1, 0.9}); fired {
		t.Fatal("fired during suppression window 2")
	}
	if class, fired := d.Observe([]float32{0.1, 0.9}); !fired || class != 1 {
		t.Fatalf("after suppression: fired=%v class=%d, want fire on class 1", fired, class)
	}
}

func TestDebounceIgnoredClassNeverFires(t *testing.T) {
	d := NewDebouncer([]string{"noise", "kw"}, DebounceConfig{
		Threshold: 0.5, Smooth: 1, Ignore: []string{"noise"},
	})
	for i := 0; i < 5; i++ {
		if _, fired := d.Observe([]float32{0.99, 0.01}); fired {
			t.Fatal("ignored class fired")
		}
	}
	if class, fired := d.Observe([]float32{0.2, 0.8}); !fired || class != 1 {
		t.Fatalf("fired=%v class=%d, want fire on class 1", fired, class)
	}
}

func TestDebounceHighestArmedWins(t *testing.T) {
	d := NewDebouncer([]string{"a", "b"}, DebounceConfig{Threshold: 0.3, Release: 0.1, Smooth: 1})
	if class, fired := d.Observe([]float32{0.4, 0.5}); !fired || class != 1 {
		t.Fatalf("fired=%v class=%d, want the higher-scoring class 1", fired, class)
	}
}

func TestDebounceDefaults(t *testing.T) {
	cfg := DebounceConfig{}
	cfg.normalize()
	if cfg.Threshold != 0.6 || cfg.Smooth != 3 || cfg.Suppress != 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Release <= 0 || cfg.Release > cfg.Threshold {
		t.Fatalf("release default %v outside (0, threshold]", cfg.Release)
	}
	// Release above threshold is clamped back to the default ratio.
	bad := DebounceConfig{Threshold: 0.5, Release: 0.9}
	bad.normalize()
	if bad.Release > bad.Threshold {
		t.Fatalf("release %v > threshold %v after normalize", bad.Release, bad.Threshold)
	}
}

func TestDebounceObservePanicsOnBadLength(t *testing.T) {
	d := NewDebouncer([]string{"a", "b"}, DebounceConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong score length")
		}
	}()
	d.Observe([]float32{0.1})
}

func TestDebounceObserveDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed by race-detector instrumentation")
	}
	d := NewDebouncer([]string{"a", "b", "c"}, DebounceConfig{Smooth: 4, Suppress: 2})
	scores := []float32{0.7, 0.2, 0.1}
	d.Observe(scores)
	allocs := testing.AllocsPerRun(100, func() { d.Observe(scores) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}
