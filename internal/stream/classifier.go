package stream

import (
	"fmt"

	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/tensor"
)

// impulseClassifier adapts a trained impulse to the session hot path. It
// bypasses Impulse.Classify's per-call map/ClassResult construction and
// goes straight through the pooled composite-extraction + forward path,
// so steady-state streaming stays within the one-shot allocation budget.
type impulseClassifier struct {
	imp       *core.Impulse
	quantized bool
}

// NewImpulseClassifier wraps a trained impulse for streaming. quantized
// selects the int8 model when available (falling back to float if not).
func NewImpulseClassifier(imp *core.Impulse, quantized bool) (Classifier, error) {
	if imp == nil {
		return nil, fmt.Errorf("stream: nil impulse")
	}
	if imp.Input.Kind != core.TimeSeries {
		return nil, fmt.Errorf("stream: streaming needs a time-series input block, have %q", imp.Input.Kind)
	}
	if imp.Model == nil {
		return nil, fmt.Errorf("stream: impulse has no trained classifier")
	}
	if quantized && imp.QModel == nil {
		return nil, fmt.Errorf("stream: impulse has no quantized model")
	}
	if len(imp.Classes) == 0 {
		return nil, fmt.Errorf("stream: impulse has no classes")
	}
	return &impulseClassifier{imp: imp, quantized: quantized}, nil
}

func (c *impulseClassifier) Classes() []string { return c.imp.Classes }

func (c *impulseClassifier) Classify(win dsp.Signal, scores []float32) error {
	composite, layout, err := c.imp.ExtractComposite(win)
	if err != nil {
		return err
	}
	x, err := c.imp.ClassifierFeaturesFrom(composite, layout)
	if err != nil {
		return err
	}
	var probs *tensor.F32
	if c.quantized {
		probs = c.imp.QModel.Forward(x)
	} else {
		probs = c.imp.Model.Forward(x)
	}
	if len(probs.Data) != len(scores) {
		return fmt.Errorf("stream: model emitted %d scores, want %d", len(probs.Data), len(scores))
	}
	copy(scores, probs.Data)
	return nil
}
