package stream

import (
	"errors"
	"strings"
	"testing"

	"edgepulse/internal/faults"
)

// TestIngestFaultTerminatesSessionCleanly arms the stream.ingest fault
// point and checks an injected I/O error tears the session down through
// the normal terminal-event path instead of wedging the run loop.
func TestIngestFaultTerminatesSessionCleanly(t *testing.T) {
	t.Cleanup(faults.Reset)
	m := NewManager(1)
	s, err := m.Open(testConfig(), meanClassifier())
	if err != nil {
		t.Fatal(err)
	}

	disarm := faults.Arm(FaultIngest, errors.New("injected ingest failure"))
	defer disarm()
	if err := s.Push(make([]float32, 8)); err != nil {
		t.Fatal(err)
	}

	events := collect(t, s)
	last := events[len(events)-1]
	if !last.Terminal() || !strings.Contains(last.Reason, "injected ingest failure") {
		t.Fatalf("terminal event %+v, want injected failure reason", last)
	}
	// The dead session left the manager, freeing its slot.
	if m.Active() != 0 {
		t.Fatalf("faulted session still registered: %d active", m.Active())
	}
}
