package stream

// DebounceConfig tunes how rolling per-window scores become discrete
// detection events. The semantics mirror the calibration package's
// PostProcessing (moving average → threshold → refractory suppression)
// with one addition: hysteresis. After a class fires it must fall below
// Release before it can fire again, so one long utterance spanning many
// overlapping windows produces exactly one event.
type DebounceConfig struct {
	// Threshold is the smoothed score at or above which an armed class
	// fires. Default 0.6.
	Threshold float32
	// Release re-arms a fired class once its smoothed score drops below
	// it. Default 0.75 * Threshold.
	Release float32
	// Smooth is the moving-average length in windows. Default 3.
	Smooth int
	// Suppress is the refractory period in windows after any fire during
	// which no class fires. Default 0 (hysteresis alone debounces).
	Suppress int
	// Ignore lists class labels that never fire (background classes such
	// as "noise" — they still participate in smoothing).
	Ignore []string
}

// normalize fills defaults in place.
func (c *DebounceConfig) normalize() {
	if c.Threshold <= 0 {
		c.Threshold = 0.6
	}
	if c.Release <= 0 || c.Release > c.Threshold {
		c.Release = 0.75 * c.Threshold
	}
	if c.Smooth < 1 {
		c.Smooth = 3
	}
	if c.Suppress < 0 {
		c.Suppress = 0
	}
}

// Debouncer turns a sequence of per-window score vectors into discrete
// detections. All state is preallocated; Observe performs no allocation.
type Debouncer struct {
	cfg      DebounceConfig
	nClasses int
	// hist is a per-class ring of the last Smooth raw scores, interleaved
	// [pos*nClasses + class].
	hist     []float32
	histLen  int // filled entries, <= Smooth
	histPos  int
	smoothed []float32
	armed    []bool
	ignore   []bool
	suppress int
}

// NewDebouncer builds a debouncer for the given class list.
func NewDebouncer(classes []string, cfg DebounceConfig) *Debouncer {
	cfg.normalize()
	d := &Debouncer{
		cfg:      cfg,
		nClasses: len(classes),
		hist:     make([]float32, cfg.Smooth*len(classes)),
		smoothed: make([]float32, len(classes)),
		armed:    make([]bool, len(classes)),
		ignore:   make([]bool, len(classes)),
	}
	for i := range d.armed {
		d.armed[i] = true
	}
	for i, cl := range classes {
		for _, ig := range cfg.Ignore {
			if cl == ig {
				d.ignore[i] = true
			}
		}
	}
	return d
}

// Observe feeds one window's raw scores (len == class count) and reports
// whether a detection fired and for which class index. At most one class
// fires per window — the highest-scoring armed candidate.
func (d *Debouncer) Observe(scores []float32) (class int, fired bool) {
	if len(scores) != d.nClasses {
		panic("stream: score vector length != class count")
	}
	// Push into the smoothing ring and recompute the moving average.
	copy(d.hist[d.histPos*d.nClasses:(d.histPos+1)*d.nClasses], scores)
	d.histPos = (d.histPos + 1) % d.cfg.Smooth
	if d.histLen < d.cfg.Smooth {
		d.histLen++
	}
	for c := 0; c < d.nClasses; c++ {
		var sum float32
		for p := 0; p < d.histLen; p++ {
			sum += d.hist[p*d.nClasses+c]
		}
		d.smoothed[c] = sum / float32(d.histLen)
	}
	// Hysteresis re-arm happens even while suppressed, so the refractory
	// period never extends a class's armed latency.
	best := -1
	for c := 0; c < d.nClasses; c++ {
		if !d.armed[c] && d.smoothed[c] < d.cfg.Release {
			d.armed[c] = true
		}
		if d.ignore[c] || !d.armed[c] || d.smoothed[c] < d.cfg.Threshold {
			continue
		}
		if best < 0 || d.smoothed[c] > d.smoothed[best] {
			best = c
		}
	}
	if d.suppress > 0 {
		d.suppress--
		return -1, false
	}
	if best < 0 {
		return -1, false
	}
	d.armed[best] = false
	d.suppress = d.cfg.Suppress
	return best, true
}

// Smoothed exposes the current moving-average scores (aliased, valid
// until the next Observe).
func (d *Debouncer) Smoothed() []float32 { return d.smoothed }
