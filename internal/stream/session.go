package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"edgepulse/internal/dsp"
	"edgepulse/internal/faults"
)

// FaultIngest is the registered fault point fired at the top of each
// ingest pass; chaos tests arm it to fail classification mid-session and
// prove sessions terminate with a reasoned event instead of wedging.
const FaultIngest = "stream.ingest"

// Classifier scores one canonical window of raw signal. Implementations
// must be cheap to call repeatedly from a single goroutine; the impulse
// adapter (NewImpulseClassifier) reuses the pooled DSP + forward path so
// steady-state calls stay allocation-free.
type Classifier interface {
	// Classes returns the output labels in score-index order.
	Classes() []string
	// Classify extracts features from win and writes per-class scores
	// into scores (len == len(Classes())).
	Classify(win dsp.Signal, scores []float32) error
}

// Push/session errors.
var (
	// ErrBackpressure reports a full inbound queue: the caller should
	// retry after a short delay (the API maps it to 429).
	ErrBackpressure = errors.New("stream: inbound queue full")
	// ErrClosed reports a push to a session whose run loop has exited.
	ErrClosed = errors.New("stream: session closed")
)

// EventType discriminates entries of a session's event log.
type EventType string

// Event types.
const (
	// EventState records a lifecycle transition: Status "open" when the
	// session starts, "closed" (with Reason) when it ends.
	EventState EventType = "state"
	// EventResult records one rolling window classification: the argmax
	// Class and its Score.
	EventResult EventType = "result"
	// EventDetection records a debounced detection: Class, Score and the
	// full smoothed Scores vector.
	EventDetection EventType = "detection"
)

// Session states carried by EventState.
const (
	StatusOpen   = "open"
	StatusClosed = "closed"
)

// Event is one entry of a session's ordered event log. Seq is strictly
// increasing and contiguous, so a consumer that remembers the last Seq
// it saw can resume without gaps or duplicates (same contract as job
// events).
type Event struct {
	Seq  int64
	Time time.Time
	Type EventType
	// Status and Reason are set for EventState.
	Status string
	Reason string
	// Class is the class index for EventResult/EventDetection.
	Class int
	// Score is the (raw for results, smoothed for detections) score of
	// Class.
	Score float32
	// Scores is the full smoothed score vector, set only on detections —
	// results stay allocation-free by carrying just the argmax.
	Scores []float32
	// WindowStart is the absolute frame index the classified window
	// begins at.
	WindowStart int64
	// Dropped is the cumulative count of frames lost to ring overwrite
	// at emit time.
	Dropped int64
}

// Terminal reports whether e ends the stream.
func (e Event) Terminal() bool { return e.Type == EventState && e.Status == StatusClosed }

// Event-log bounds, mirroring the job event stream.
const (
	maxEventsPerSession = 512
	subBuffer           = 64
)

// Config describes one streaming session's geometry and behavior.
type Config struct {
	// WindowFrames is the classification window length in frames (from
	// the impulse's input block).
	WindowFrames int
	// StrideFrames is the hop between consecutive windows. Default:
	// WindowFrames (non-overlapping).
	StrideFrames int
	// Axes is the interleaved value count per frame.
	Axes int
	// Rate is the sample rate in Hz (informational, carried into window
	// signals for DSP blocks that need it).
	Rate int
	// RingFrames is the buffer capacity. Default: 4 * WindowFrames,
	// floored at WindowFrames + StrideFrames.
	RingFrames int
	// QueueDepth bounds the inbound batch queue; a full queue sheds
	// pushes with ErrBackpressure. Default 64.
	QueueDepth int
	// IdleTimeout closes the session when no frames arrive for this
	// long. Default 60s.
	IdleTimeout time.Duration
	// Debounce tunes detection emission.
	Debounce DebounceConfig
	// Tag scopes the session to its owner (the API stores the project ID
	// and refuses cross-project access).
	Tag string
}

// normalize validates and fills defaults in place.
func (c *Config) normalize() error {
	if c.WindowFrames <= 0 {
		return fmt.Errorf("stream: window must be positive, have %d", c.WindowFrames)
	}
	if c.Axes <= 0 {
		return fmt.Errorf("stream: axes must be positive, have %d", c.Axes)
	}
	if c.StrideFrames <= 0 {
		c.StrideFrames = c.WindowFrames
	}
	if c.StrideFrames > c.WindowFrames {
		return fmt.Errorf("stream: stride %d exceeds window %d", c.StrideFrames, c.WindowFrames)
	}
	if c.RingFrames <= 0 {
		c.RingFrames = 4 * c.WindowFrames
	}
	if min := c.WindowFrames + c.StrideFrames; c.RingFrames < min {
		c.RingFrames = min
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	c.Debounce.normalize()
	return nil
}

// Stats is a session's cumulative accounting.
type Stats struct {
	// FramesIn counts frames accepted by Push.
	FramesIn int64 `json:"frames_in"`
	// Windows counts classified windows.
	Windows int64 `json:"windows"`
	// Detections counts debounced detection events.
	Detections int64 `json:"detections"`
	// DroppedFrames counts frames overwritten before classification
	// (producer outran the classifier past the ring capacity).
	DroppedFrames int64 `json:"dropped_frames"`
}

// Session is one live streaming inference context. Frames enter through
// Push/PushWait onto a bounded queue; a dedicated goroutine owns the
// ring, the classifier and the debouncer, and appends results to a
// seq-numbered event log that any number of subscribers can tail.
type Session struct {
	// ID is the manager-assigned session identifier.
	ID string
	// Tag is Config.Tag (owner scope).
	Tag string

	cfg     Config
	cls     Classifier
	classes []string

	in   chan []float32
	quit chan struct{}
	done chan struct{}

	// Run-goroutine-owned classification state.
	ring *Ring
	win  dsp.Signal
	raw  []float32
	deb  *Debouncer
	next int64

	framesIn   atomic.Int64
	windows    atomic.Int64
	detections atomic.Int64
	dropped    atomic.Int64

	mu          sync.Mutex
	closing     bool
	closeReason string
	seq         int64
	events      []Event
	subs        []*subscriber
	onExit      func(*Session)
}

type subscriber struct {
	ch chan Event
}

// newSession builds a session; the caller starts run().
func newSession(id string, cfg Config, cls Classifier, onExit func(*Session)) *Session {
	classes := cls.Classes()
	s := &Session{
		ID:      id,
		Tag:     cfg.Tag,
		cfg:     cfg,
		cls:     cls,
		classes: classes,
		in:      make(chan []float32, cfg.QueueDepth),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		ring:    NewRing(cfg.RingFrames, cfg.Axes),
		raw:     make([]float32, len(classes)),
		deb:     NewDebouncer(classes, cfg.Debounce),
		onExit:  onExit,
	}
	s.win = dsp.Signal{
		Data: make([]float32, cfg.WindowFrames*cfg.Axes),
		Rate: cfg.Rate,
		Axes: cfg.Axes,
	}
	return s
}

// Classes returns the classifier's labels in score order.
func (s *Session) Classes() []string { return s.classes }

// Config returns the normalized session configuration.
func (s *Session) Config() Config { return s.cfg }

// Stats returns the session's cumulative counters.
func (s *Session) Stats() Stats {
	return Stats{
		FramesIn:      s.framesIn.Load(),
		Windows:       s.windows.Load(),
		Detections:    s.detections.Load(),
		DroppedFrames: s.dropped.Load(),
	}
}

// Done is closed once the run loop has exited and the terminal event was
// emitted.
func (s *Session) Done() <-chan struct{} { return s.done }

// Push enqueues one batch of interleaved samples without blocking. The
// session takes ownership of the slice. A full queue returns
// ErrBackpressure — the transport decides whether to shed (HTTP 429) or
// slow the producer. A closed session returns ErrClosed.
func (s *Session) Push(samples []float32) error {
	if err := s.checkBatch(samples); err != nil {
		return err
	}
	select {
	case s.in <- samples:
		s.framesIn.Add(int64(len(samples) / s.cfg.Axes))
		return nil
	case <-s.done:
		return ErrClosed
	default:
		return ErrBackpressure
	}
}

// PushWait enqueues one batch, blocking while the queue is full — the
// flow-control mode for transports with their own backpressure (the
// NDJSON duplex handler simply stops reading the request body).
func (s *Session) PushWait(ctx context.Context, samples []float32) error {
	if err := s.checkBatch(samples); err != nil {
		return err
	}
	select {
	case s.in <- samples:
		s.framesIn.Add(int64(len(samples) / s.cfg.Axes))
		return nil
	case <-s.done:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) checkBatch(samples []float32) error {
	if len(samples) == 0 || len(samples)%s.cfg.Axes != 0 {
		return fmt.Errorf("stream: batch of %d samples is not a positive multiple of %d axes", len(samples), s.cfg.Axes)
	}
	select {
	case <-s.done:
		return ErrClosed
	default:
		return nil
	}
}

// Close asks the run loop to stop after draining already-queued batches.
// The first call's reason wins; later calls are no-ops. Close returns
// immediately; wait on Done for the terminal event.
func (s *Session) Close(reason string) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.closing = true
	s.closeReason = reason
	s.mu.Unlock()
	close(s.quit)
}

// run is the session goroutine: the sole owner of the ring, classifier
// and debouncer.
func (s *Session) run() {
	defer close(s.done)
	if s.onExit != nil {
		defer s.onExit(s)
	}
	idle := time.NewTimer(s.cfg.IdleTimeout)
	defer idle.Stop()
	s.emitState(StatusOpen, "")
	for {
		select {
		case batch := <-s.in:
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(s.cfg.IdleTimeout)
			if err := s.ingest(batch); err != nil {
				s.finish("classifier error: " + err.Error())
				return
			}
		case <-idle.C:
			s.finish("idle timeout")
			return
		case <-s.quit:
			// Drain batches that were queued before the close request so
			// a fast producer + immediate Close still classifies
			// everything it pushed.
			for {
				select {
				case batch := <-s.in:
					if err := s.ingest(batch); err != nil {
						s.finish("classifier error: " + err.Error())
						return
					}
				default:
					s.mu.Lock()
					reason := s.closeReason
					s.mu.Unlock()
					s.finish(reason)
					return
				}
			}
		}
	}
}

// ingest appends one batch to the ring and classifies every complete
// window the new data enables, advancing by the stride.
func (s *Session) ingest(batch []float32) error {
	if err := faults.Inject(FaultIngest); err != nil {
		return err
	}
	s.ring.Append(batch)
	// If the producer outran classification past the ring capacity, the
	// oldest pending windows were overwritten: skip forward in whole
	// strides and account the lost frames.
	if start := s.ring.Start(); s.next < start {
		lost := start - s.next
		stride := int64(s.cfg.StrideFrames)
		s.next += (lost + stride - 1) / stride * stride
		s.dropped.Add(lost)
	}
	for s.next+int64(s.cfg.WindowFrames) <= s.ring.End() {
		if !s.ring.CopyAt(s.next, s.win.Data) {
			// Unreachable by construction (next >= Start, window fits
			// before End); guard anyway so a bug degrades, not corrupts.
			s.next += int64(s.cfg.StrideFrames)
			continue
		}
		if err := s.cls.Classify(s.win, s.raw); err != nil {
			return err
		}
		s.windows.Add(1)
		best := 0
		for i := range s.raw {
			if s.raw[i] > s.raw[best] {
				best = i
			}
		}
		class, fired := s.deb.Observe(s.raw)
		s.emitResult(best, s.raw[best], s.next)
		if fired {
			s.detections.Add(1)
			s.emitDetection(class, s.next)
		}
		s.next += int64(s.cfg.StrideFrames)
	}
	return nil
}

// finish emits the terminal state event and ends every subscription.
func (s *Session) finish(reason string) {
	s.mu.Lock()
	s.closing = true
	s.closeReason = reason
	s.emitLocked(Event{Type: EventState, Status: StatusClosed, Reason: reason})
	for _, sub := range s.subs {
		close(sub.ch)
	}
	s.subs = nil
	s.mu.Unlock()
}

func (s *Session) emitState(status, reason string) {
	s.mu.Lock()
	s.emitLocked(Event{Type: EventState, Status: status, Reason: reason})
	s.mu.Unlock()
}

func (s *Session) emitResult(class int, score float32, windowStart int64) {
	s.mu.Lock()
	s.emitLocked(Event{
		Type: EventResult, Class: class, Score: score,
		WindowStart: windowStart, Dropped: s.dropped.Load(),
	})
	s.mu.Unlock()
}

func (s *Session) emitDetection(class int, windowStart int64) {
	smoothed := s.deb.Smoothed()
	s.mu.Lock()
	s.emitLocked(Event{
		Type: EventDetection, Class: class, Score: smoothed[class],
		Scores:      append([]float32(nil), smoothed...),
		WindowStart: windowStart, Dropped: s.dropped.Load(),
	})
	s.mu.Unlock()
}

// emitLocked appends an event and fans it out; slow subscribers are
// dropped rather than ever blocking classification (they resume by their
// last Seq). Caller holds s.mu.
func (s *Session) emitLocked(e Event) {
	s.seq++
	e.Seq = s.seq
	e.Time = time.Now()
	s.events = append(s.events, e)
	if drop := len(s.events) - maxEventsPerSession; drop > 0 {
		copy(s.events, s.events[drop:])
		s.events = s.events[:maxEventsPerSession]
	}
	for i := 0; i < len(s.subs); {
		sub := s.subs[i]
		select {
		case sub.ch <- e:
			i++
		default:
			close(sub.ch)
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
		}
	}
}

// eventsSinceLocked returns a copy of retained events with Seq > afterSeq.
func (s *Session) eventsSinceLocked(afterSeq int64) []Event {
	if len(s.events) == 0 {
		return nil
	}
	idx := int(afterSeq - s.events[0].Seq + 1)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.events) {
		return nil
	}
	return append([]Event(nil), s.events[idx:]...)
}

// Events returns the retained events with Seq > afterSeq and whether the
// session has ended.
func (s *Session) Events(afterSeq int64) (events []Event, done bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return s.eventsSinceLocked(afterSeq), true
	default:
		return s.eventsSinceLocked(afterSeq), false
	}
}

// Subscribe returns the retained events with Seq > afterSeq plus a
// channel delivering every subsequent event in order. The channel closes
// after the terminal state event, or early if the subscriber falls too
// far behind (resume from the last Seq received). cancel releases the
// subscription.
func (s *Session) Subscribe(afterSeq int64) (replay []Event, ch <-chan Event, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	replay = s.eventsSinceLocked(afterSeq)
	if s.terminalLocked() {
		closed := make(chan Event)
		close(closed)
		return replay, closed, func() {}
	}
	sub := &subscriber{ch: make(chan Event, subBuffer)}
	s.subs = append(s.subs, sub)
	cancel = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, x := range s.subs {
			if x == sub {
				s.subs = append(s.subs[:i], s.subs[i+1:]...)
				close(sub.ch)
				return
			}
		}
	}
	return replay, sub.ch, cancel
}

// terminalLocked reports whether the terminal event has been emitted.
func (s *Session) terminalLocked() bool {
	return len(s.events) > 0 && s.events[len(s.events)-1].Terminal()
}
