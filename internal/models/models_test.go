package models

import (
	"strings"
	"testing"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
)

func TestKWSDSCNNShapeAndBudget(t *testing.T) {
	m := KWSDSCNN(49, 10, 12)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	macs := m.MACs()
	// The paper's DS-CNN is ~2.7M MACs; ours must land in the same band.
	if macs < 1_500_000 || macs > 4_000_000 {
		t.Errorf("KWS DS-CNN MACs = %d, want ~2.6M", macs)
	}
	params := m.ParamCount()
	if params < 15_000 || params > 60_000 {
		t.Errorf("KWS DS-CNN params = %d, want ~24k", params)
	}
}

func TestVWWMobileNetV1Budget(t *testing.T) {
	m := VWWMobileNetV1(96, 3, 0.25, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	macs := m.MACs()
	if macs < 5_000_000 || macs > 12_000_000 {
		t.Errorf("VWW MACs = %d, want ~7.5M", macs)
	}
	params := m.ParamCount()
	if params < 150_000 || params > 350_000 {
		t.Errorf("VWW params = %d, want ~220k", params)
	}
}

func TestCIFARCNNBudget(t *testing.T) {
	m := CIFARCNN(32, 3, 10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	macs := m.MACs()
	if macs < 700_000 || macs > 2_500_000 {
		t.Errorf("IC MACs = %d, want ~1.3M", macs)
	}
	params := m.ParamCount()
	if params < 10_000 || params > 40_000 {
		t.Errorf("IC params = %d, want ~20k", params)
	}
}

func TestConv1DStackVariants(t *testing.T) {
	// The Table 3 configurations must all build and validate.
	cases := []struct{ depth, start, end int }{
		{4, 32, 256}, {4, 16, 128}, {3, 32, 128}, {2, 32, 64}, {3, 16, 64}, {2, 16, 32},
	}
	var prevParams int
	for _, c := range cases {
		m, err := Conv1DStack(99, 40, c.depth, c.start, c.end, 4)
		if err != nil {
			t.Fatalf("depth %d: %v", c.depth, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("depth %d: %v", c.depth, err)
		}
		_ = prevParams
		prevParams = m.ParamCount()
	}
	if _, err := Conv1DStack(99, 40, 0, 16, 32, 4); err == nil {
		t.Error("accepted zero depth")
	}
}

func TestConv1DStackMonotoneCost(t *testing.T) {
	big, _ := Conv1DStack(99, 40, 4, 32, 256, 4)
	small, _ := Conv1DStack(99, 32, 2, 16, 32, 4)
	if big.MACs() <= small.MACs() {
		t.Errorf("bigger stack (%d MACs) not > smaller (%d MACs)", big.MACs(), small.MACs())
	}
	if big.ParamCount() <= small.ParamCount() {
		t.Error("bigger stack should have more params")
	}
}

func TestMobileNetV2Audio(t *testing.T) {
	m := MobileNetV2Audio(99, 40, 0.35, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// V2 0.35 should be substantially bigger than the conv1d stacks.
	c1d, _ := Conv1DStack(99, 40, 4, 32, 256, 4)
	if m.MACs() <= c1d.MACs() {
		t.Errorf("MobileNetV2 (%d MACs) should exceed conv1d stack (%d)", m.MACs(), c1d.MACs())
	}
}

func TestTinyMLP(t *testing.T) {
	m := TinyMLP(33, 20, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(m, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	m := CIFARCNN(32, 3, 10)
	s := Describe(m)
	if !strings.Contains(s, "layers") || !strings.Contains(s, "MACs") {
		t.Errorf("Describe = %q", s)
	}
	if humanCount(500) != "500" || humanCount(1500) != "1.5k" || humanCount(2_600_000) != "2.6M" {
		t.Error("humanCount formatting")
	}
}

func TestAllModelsForward(t *testing.T) {
	// Spot check that each zoo model actually runs forward.
	zoo := []*nn.Model{
		KWSDSCNN(49, 10, 4),
		CIFARCNN(32, 3, 10),
		TinyMLP(10, 8, 2),
	}
	c1d, _ := Conv1DStack(49, 13, 2, 16, 32, 3)
	zoo = append(zoo, c1d)
	for i, m := range zoo {
		if err := nn.InitWeights(m, int64(i)); err != nil {
			t.Fatalf("model %d init: %v", i, err)
		}
		in := tensor.NewF32(m.InputShape...)
		out := m.Forward(in)
		if len(out.Data) != m.NumClasses {
			t.Errorf("model %d: out %d classes, want %d", i, len(out.Data), m.NumClasses)
		}
	}
}
