// Package models is the model zoo: the architectures used by the paper's
// evaluation (Sec. 5.1). KWSDSCNN, VWWMobileNetV1 and CIFARCNN correspond
// to the three MLPerf-Tiny-derived workloads of Tables 2 and 4; Conv1DStack
// and MobileNetV2Audio are the families the EON Tuner explores in Table 3.
package models

import (
	"fmt"

	"edgepulse/internal/nn"
	"edgepulse/internal/tensor"
)

// KWSDSCNN builds the depthwise-separable CNN used for keyword spotting
// (a DS-CNN in the spirit of Sørensen et al.): an initial strided
// convolution followed by depthwise-separable blocks and global pooling.
// Input is an MFCC/MFE feature matrix [frames, coeffs]; classes is the
// number of keywords. ~2.6M MACs at the paper's 49×10 input.
func KWSDSCNN(frames, coeffs, classes int) *nn.Model {
	m := nn.NewModel(frames, coeffs)
	m.NumClasses = classes
	m.Add(nn.NewReshape(frames, coeffs, 1)).
		Add(nn.NewConv2D(64, 4, 2, nn.Same, nn.ReLU))
	for i := 0; i < 4; i++ {
		m.Add(nn.NewDepthwiseConv2D(3, 1, nn.Same, nn.ReLU)).
			Add(nn.NewConv2D(64, 1, 1, nn.Same, nn.ReLU))
	}
	m.Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDropout(0.2)).
		Add(nn.NewDense(classes, nn.None)).
		Add(nn.NewSoftmax())
	return m
}

// dsBlock appends a MobileNetV1 depthwise-separable block.
func dsBlock(m *nn.Model, pointwiseFilters, stride int) {
	m.Add(nn.NewDepthwiseConv2D(3, stride, nn.Same, nn.ReLU6)).
		Add(nn.NewConv2D(pointwiseFilters, 1, 1, nn.Same, nn.ReLU6))
}

// VWWMobileNetV1 builds a MobileNetV1 with the given width multiplier for
// the visual wake words task ([size, size, channels] input, binary
// person/no-person head by default). alpha=0.25 at 96×96×3 gives the
// paper's ~7.5M MAC / ~220k parameter configuration.
func VWWMobileNetV1(size, channels int, alpha float64, classes int) *nn.Model {
	scale := func(c int) int {
		n := int(float64(c) * alpha)
		if n < 4 {
			n = 4
		}
		return n
	}
	m := nn.NewModel(size, size, channels)
	m.NumClasses = classes
	m.Add(nn.NewConv2D(scale(32), 3, 2, nn.Same, nn.ReLU6))
	type blk struct{ filters, stride int }
	blocks := []blk{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for _, b := range blocks {
		dsBlock(m, scale(b.filters), b.stride)
	}
	m.Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDropout(0.1)).
		Add(nn.NewDense(classes, nn.None)).
		Add(nn.NewSoftmax())
	return m
}

// CIFARCNN builds the "simple convolutional neural network" the paper
// trains on CIFAR-10: two conv/pool stages and a dense classifier head
// (~1.3M MACs, ~20k parameters at 32×32×3).
func CIFARCNN(size, channels, classes int) *nn.Model {
	m := nn.NewModel(size, size, channels)
	m.NumClasses = classes
	m.Add(nn.NewConv2D(16, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewMaxPool2D(2, 2)).
		Add(nn.NewConv2D(24, 3, 1, nn.Same, nn.ReLU)).
		Add(nn.NewMaxPool2D(2, 2)).
		Add(nn.NewFlatten()).
		Add(nn.NewDropout(0.2)).
		Add(nn.NewDense(classes, nn.None)).
		Add(nn.NewSoftmax())
	return m
}

// Conv1DStack builds the 1-D convolutional family the EON Tuner sweeps in
// Table 3 ("4x conv1d (32 to 256)"): depth conv1d layers whose filter
// counts double from startFilters up to endFilters, each followed by max
// pooling, with a global flatten + dense head. Input is [frames, coeffs].
func Conv1DStack(frames, coeffs, depth, startFilters, endFilters, classes int) (*nn.Model, error) {
	if depth < 1 {
		return nil, fmt.Errorf("models: conv1d stack depth must be >= 1")
	}
	m := nn.NewModel(frames, coeffs)
	m.NumClasses = classes
	filters := startFilters
	for i := 0; i < depth; i++ {
		stride := 1
		if i == 0 {
			stride = 2 // cheap first layer, as in the platform's presets
		}
		m.Add(nn.NewConv1D(filters, 3, stride, nn.Same, nn.ReLU)).
			Add(nn.NewMaxPool1D(2, 2))
		if filters*2 <= endFilters {
			filters *= 2
		}
	}
	m.Add(nn.NewFlatten()).
		Add(nn.NewDropout(0.25)).
		Add(nn.NewDense(classes, nn.None)).
		Add(nn.NewSoftmax())
	if _, err := m.OutputShape(); err != nil {
		return nil, err
	}
	return m, nil
}

// MobileNetV2Audio builds the MobileNetV2-width model appearing at the
// top of the paper's Table 3 ("MobileNetV2 0.35"), adapted to a
// [frames, mels] audio spectrogram input. Inverted-bottleneck blocks are
// approximated without residual shortcuts (our graph is sequential); the
// expansion → depthwise → projection structure and cost profile are
// preserved.
func MobileNetV2Audio(frames, mels int, alpha float64, classes int) *nn.Model {
	scale := func(c int) int {
		n := int(float64(c) * alpha)
		if n < 4 {
			n = 4
		}
		return n
	}
	m := nn.NewModel(frames, mels)
	m.NumClasses = classes
	m.Add(nn.NewReshape(frames, mels, 1)).
		Add(nn.NewConv2D(scale(32), 3, 2, nn.Same, nn.ReLU6))
	type blk struct{ expand, out, stride int }
	blocks := []blk{
		{1, 16, 1}, {6, 24, 2}, {6, 24, 1}, {6, 32, 2}, {6, 32, 1}, {6, 32, 1},
		{6, 64, 2}, {6, 64, 1}, {6, 64, 1}, {6, 64, 1}, {6, 96, 1}, {6, 96, 1},
		{6, 96, 1}, {6, 160, 1}, {6, 160, 1}, {6, 320, 1},
	}
	for _, b := range blocks {
		in := scale(b.out) // approximation: expansion relative to output width
		if b.expand > 1 {
			m.Add(nn.NewConv2D(in*b.expand, 1, 1, nn.Same, nn.ReLU6))
		}
		m.Add(nn.NewDepthwiseConv2D(3, b.stride, nn.Same, nn.ReLU6)).
			Add(nn.NewConv2D(scale(b.out), 1, 1, nn.Same, nn.None))
	}
	m.Add(nn.NewConv2D(scale(1280), 1, 1, nn.Same, nn.ReLU6)).
		Add(nn.NewGlobalAvgPool2D()).
		Add(nn.NewDense(classes, nn.None)).
		Add(nn.NewSoftmax())
	return m
}

// TinyMLP is a small dense network for low-dimensional feature vectors
// (spectral features, flatten block outputs).
func TinyMLP(inputs, hidden, classes int) *nn.Model {
	m := nn.NewModel(inputs)
	m.NumClasses = classes
	m.Add(nn.NewDense(hidden, nn.ReLU)).
		Add(nn.NewDense(hidden/2, nn.ReLU)).
		Add(nn.NewDense(classes, nn.None)).
		Add(nn.NewSoftmax())
	return m
}

// Describe returns a short human-readable architecture string, e.g.
// "conv2d(64)->dw->... (123k params, 2.6M MACs)".
func Describe(m *nn.Model) string {
	params := m.ParamCount()
	macs := m.MACs()
	return fmt.Sprintf("%d layers, %s params, %s MACs",
		len(m.Layers), humanCount(int64(params)), humanCount(macs))
}

func humanCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

// InputShapeFor returns the model input shape as a tensor.Shape (helper
// for harnesses that construct feature tensors).
func InputShapeFor(m *nn.Model) tensor.Shape { return m.InputShape.Clone() }
