package e2e

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/faults"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/resilience"
	"edgepulse/internal/store"
	"edgepulse/internal/synth"
)

// chaosEnv is a deliberately small platform instance: a durable
// registry (so store fault points sit on the real write path), a tiny
// job queue, and a tight admission gate, so synthetic load pushes it
// into overload quickly.
type chaosEnv struct {
	server  *httptest.Server
	c       *client.Client // no internal retries: raw shed responses
	sched   *jobs.Scheduler
	proj    *v1.CreateProjectResponse
	hmacKey string
}

func newChaosEnv(t *testing.T) *chaosEnv {
	t.Helper()
	t.Cleanup(faults.Reset)
	registry, err := project.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { registry.Close() })
	sched := jobs.NewScheduler(jobs.Config{
		MinWorkers: 2, MaxWorkers: 2,
		QueueSize: 8, MaxQueuedPerTag: 8,
		ScaleInterval: 5 * time.Millisecond,
	})
	t.Cleanup(sched.Shutdown)
	server := httptest.NewServer(api.NewServer(registry, sched,
		api.WithRateLimit(0, 0), // isolate the admission gate from the token bucket
		api.WithGate(resilience.GateConfig{MaxInflight: 8, SamplePeriod: time.Millisecond}),
	).Handler())
	t.Cleanup(server.Close)

	ctx := context.Background()
	c := client.New(server.URL, client.WithRetries(0))
	user, err := c.CreateUser(ctx, "chaos-bot")
	if err != nil {
		t.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	e := &chaosEnv{server: server, c: c, sched: sched, proj: proj, hmacKey: proj.HMACKey}

	// A small signed dataset and a quickly trained impulse, so the
	// interactive classify path exercises a real model during the storm.
	ds, err := synth.KWSDataset(2, 6, 8000, 0.5, 0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		if _, err := c.UploadSample(ctx, proj.ID, client.UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, e.sign(t, values, 1670000000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Rebalance(ctx, proj.ID, 0.25); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "chaos",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Name: "audio", Type: "mfe",
			Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification, Inputs: []string{"audio"}}},
		Classes: []string{"noise", "yes"},
	}
	if _, err := c.SetImpulse(ctx, proj.ID, cfg); err != nil {
		t.Fatal(err)
	}
	accepted, err := c.Train(ctx, proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 1, StartFilters: 4, EndFilters: 4},
		Epochs:       2,
		LearningRate: 0.005,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Job.Status != v1.JobFinished {
		t.Fatalf("training: %+v", done.Job)
	}
	return e
}

// sign produces a signed acquisition document for values.
func (e *chaosEnv) sign(t *testing.T, values [][]float64, stamp int64) []byte {
	t.Helper()
	doc, err := ingest.SignJSON(ingest.Payload{
		DeviceName: "device-01", DeviceType: "NANO33BLE",
		IntervalMS: 1000.0 / 8000.0,
		Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
		Values:     values,
	}, e.hmacKey, stamp)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func (e *chaosEnv) readyzStatus(t *testing.T) int {
	t.Helper()
	resp, err := http.Get(e.server.URL + "/api/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestChaosInjectedFaultsAndOverload is the resilience plane's e2e
// proof. Under injected store I/O faults the platform degrades to clean
// 5xx envelopes while liveness stays green; under a 4x-capacity mixed
// load storm the interactive class is never shed, every shed response
// is retryable (stable code + Retry-After), readiness flips to 503 and
// recovers within 5s of the load stopping, and the storm leaks no
// goroutines.
func TestChaosInjectedFaultsAndOverload(t *testing.T) {
	e := newChaosEnv(t)
	ctx := context.Background()

	// --- Phase 1: store write faults ---
	tiny := [][]float64{{0.1}, {0.2}, {0.3}}
	disarmStore := faults.Arm(store.FaultAppend, errors.New("injected disk failure"), faults.Times(2))
	_, err := e.c.UploadSample(ctx, e.proj.ID, client.UploadParams{
		Label: "yes", Name: "faulted", Format: "acquisition",
	}, e.sign(t, tiny, 1680000001))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status < 500 {
		t.Fatalf("upload under store fault: want 5xx API error, got %v", err)
	}
	// A failing dependency must not look like a dead process.
	if resp, err := http.Get(e.server.URL + "/api/v1/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during store faults: %v %v", resp, err)
	}
	disarmStore()
	if _, err := e.c.UploadSample(ctx, e.proj.ID, client.UploadParams{
		Label: "yes", Name: "recovered", Format: "acquisition",
	}, e.sign(t, tiny, 1680000002)); err != nil {
		t.Fatalf("upload after disarm: %v", err)
	}

	// --- Phase 2: overload storm at ~4x the gate's capacity ---
	// Slow every job down so the batch queue stays saturated while the
	// storm runs.
	disarmExec := faults.Arm(jobs.FaultExec, nil, faults.Delay(200*time.Millisecond))
	baselineGoroutines := runtime.NumGoroutine()

	type outcome struct {
		class      string
		status     int // 0 = success
		code       string
		retryAfter time.Duration
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
	)
	record := func(class string, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			outcomes = append(outcomes, outcome{class: class})
			return
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			outcomes = append(outcomes, outcome{
				class: class, status: apiErr.Status,
				code: apiErr.Code, retryAfter: apiErr.RetryAfter,
			})
		}
	}

	features := make([]float32, 4000) // 500ms window at 8000 Hz
	stormCtx, stopStorm := context.WithCancel(ctx)
	var wg sync.WaitGroup
	worker := func(class string, call func() error) {
		defer wg.Done()
		for stormCtx.Err() == nil {
			record(class, call())
		}
	}
	// 32 concurrent workers against MaxInflight 8: interactive
	// classifies, default-class dataset lists, batch tuner submissions.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go worker("interactive", func() error {
			_, err := e.c.Classify(stormCtx, e.proj.ID, features, false)
			return err
		})
	}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go worker("default", func() error {
			_, err := e.c.Samples(stormCtx, e.proj.ID, "", client.Page{Limit: 5})
			return err
		})
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go worker("batch", func() error {
			_, err := e.c.Tuner(stormCtx, e.proj.ID, v1.TunerRequest{MaxTrials: 1, Epochs: 1, Seed: 1})
			return err
		})
	}

	// Watch readiness while the storm runs: overload must surface as 503.
	sawNotReady := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.readyzStatus(t) == http.StatusServiceUnavailable {
			sawNotReady = true
		}
		time.Sleep(25 * time.Millisecond)
	}
	stopStorm()
	wg.Wait()
	disarmExec()
	// Load removal includes abandoning the batch backlog the storm
	// enqueued; callers walking away from queued work is exactly what a
	// shed-and-retry client population does.
	for _, j := range e.sched.List() {
		if !j.Status().Terminal() {
			e.sched.Cancel(j.ID)
		}
	}
	stormEnd := time.Now()

	// --- Assertions over the storm's outcomes ---
	classStats := map[string]map[int]int{}
	for _, o := range outcomes {
		if classStats[o.class] == nil {
			classStats[o.class] = map[int]int{}
		}
		classStats[o.class][o.status]++
		switch o.status {
		case 0:
			// success
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Every shed response must be retryable: a stable code the
			// client can branch on plus a Retry-After hint.
			if o.retryAfter <= 0 {
				t.Fatalf("shed %s response without Retry-After: %+v", o.class, o)
			}
			switch o.code {
			case v1.CodeOverloaded, v1.CodeRateLimited, v1.CodeUnavailable:
			default:
				t.Fatalf("shed response with non-retryable code: %+v", o)
			}
		default:
			t.Fatalf("unexpected status during storm: %+v", o)
		}
	}
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		if n := classStats["interactive"][status]; n != 0 {
			t.Fatalf("%d interactive-class requests shed with %d; interactive must never shed (stats: %v)",
				n, status, classStats)
		}
	}
	if classStats["interactive"][0] == 0 {
		t.Fatal("no interactive request succeeded during the storm")
	}
	shedTotal := 0
	for _, cls := range []string{"default", "batch"} {
		shedTotal += classStats[cls][http.StatusTooManyRequests] + classStats[cls][http.StatusServiceUnavailable]
	}
	if shedTotal == 0 {
		t.Fatalf("storm never pushed the gate into shedding (stats: %v) — not a 4x overload", classStats)
	}
	if !sawNotReady {
		t.Fatalf("readyz never reported 503 during the storm (stats: %v)", classStats)
	}

	// --- Phase 3: recovery ---
	// Readiness returns within 5s of the load stopping.
	recovered := false
	for time.Since(stormEnd) < 5*time.Second {
		if e.readyzStatus(t) == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("readyz still 503 5s after load removal")
	}
	// The storm's goroutines drained — no leaks from shed or timed-out
	// requests.
	goroutinesOK := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baselineGoroutines+5 {
			goroutinesOK = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !goroutinesOK {
		t.Fatalf("goroutines %d, baseline %d — leak after the storm", runtime.NumGoroutine(), baselineGoroutines)
	}
	// And the platform still works end to end.
	out, err := e.c.Classify(ctx, e.proj.ID, features, false)
	if err != nil || !out.Success {
		t.Fatalf("classify after recovery: %v %+v", err, out)
	}
	// The metrics DTO reports what happened.
	m, err := e.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Resilience == nil || m.Resilience.Shed == 0 {
		t.Fatalf("resilience metrics after storm: %+v", m.Resilience)
	}
	if m.Resilience.ShedByClass["interactive"] != 0 {
		t.Fatalf("gate counted interactive sheds: %+v", m.Resilience.ShedByClass)
	}
	fmt.Printf("chaos storm: %v, gate sheds by class: %v\n", classStats, m.Resilience.ShedByClass)
}
