// Streaming inference end to end: train a keyword model over the API,
// open a live session through the typed client, feed a synthetic stream
// with known utterance positions chunk by chunk, and check that the
// debounced detector fires exactly once per embedded keyword — the
// performance-calibration contract (paper Sec. 4.4) proven over the
// wire instead of in-process.
package e2e

import (
	"context"
	"sync"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/synth"
)

// trainStreamModel configures a 1 s window / 250 ms stride impulse and
// trains it to completion through the job API.
func trainStreamModel(t *testing.T, e *env) {
	t.Helper()
	ctx := context.Background()
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "live-kws",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 1000, StrideMS: 250, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Name: "audio", Type: "mfe",
			Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification, Inputs: []string{"audio"}}},
		Classes: []string{"noise", "yes"},
	}
	if _, err := e.c.SetImpulse(ctx, e.proj.ID, cfg); err != nil {
		t.Fatal(err)
	}
	accepted, err := e.c.Train(ctx, e.proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       8,
		LearningRate: 0.005,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := e.c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != v1.JobFinished {
		t.Fatalf("training ended as %s: %s", done.Status, done.Job.Error)
	}
}

// TestStreamingKeywordDetections is the streaming acceptance contract:
// a 12 s live feed with 3 embedded "yes" utterances, pushed in stride
// sized chunks through the typed client, yields one rolling result per
// window and exactly 3 debounced detections, each inside a distinct
// ground-truth utterance.
func TestStreamingKeywordDetections(t *testing.T) {
	e := newEnvClips(t, 1.0)
	trainStreamModel(t, e)
	ctx := context.Background()

	const rate = 8000
	src, truth, err := synth.NewStreamSource("yes", rate, 12, 3, 0.02, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 3 {
		t.Fatalf("ground truth: %d events", len(truth))
	}

	// Release sits just under Threshold: this small model's class scores
	// cluster around 0.5, so the default hysteresis level (0.45) would
	// never re-arm between utterances only a few strides apart.
	sess, err := e.c.OpenStream(ctx, e.proj.ID, v1.StreamOpenRequest{
		Threshold:    0.6,
		Release:      0.55,
		Smooth:       2,
		Suppress:     4,
		IgnoreLabels: []string{"noise"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Info.WindowSamples != rate || sess.Info.StrideSamples != rate/4 {
		t.Fatalf("session geometry %+v", sess.Info)
	}

	// Tail the event feed concurrently with the pushes, like a device UI.
	var mu sync.Mutex
	var detections []v1.StreamEvent
	var results, lastSeq int
	tailCtx, cancelTail := context.WithTimeout(ctx, 120*time.Second)
	defer cancelTail()
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- sess.Events(tailCtx, 0, func(ev v1.StreamEvent) error {
			mu.Lock()
			defer mu.Unlock()
			if ev.Seq != int64(lastSeq+1) {
				t.Errorf("event seq %d after %d — gap or duplicate", ev.Seq, lastSeq)
			}
			lastSeq = int(ev.Seq)
			switch ev.Type {
			case "result":
				results++
			case "detection":
				detections = append(detections, ev)
			}
			return nil
		})
	}()

	// Push the feed in stride-sized chunks until the source runs dry.
	pushed := 0
	for {
		chunk := src.Next(sess.Info.StrideSamples)
		if chunk == nil {
			break
		}
		if _, err := sess.Push(ctx, chunk); err != nil {
			t.Fatal(err)
		}
		pushed += len(chunk)
	}
	closed, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-tailDone; err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	wantWindows := (pushed-sess.Info.WindowSamples)/sess.Info.StrideSamples + 1
	if closed.Stats.FramesIn != int64(pushed) || closed.Stats.Windows != int64(wantWindows) {
		t.Fatalf("close stats %+v (pushed %d, want %d windows)", closed.Stats, pushed, wantWindows)
	}
	if results != wantWindows {
		t.Fatalf("streamed %d rolling results, want one per window (%d)", results, wantWindows)
	}
	if closed.Stats.Detections != int64(len(detections)) {
		t.Fatalf("stats report %d detections, feed delivered %d", closed.Stats.Detections, len(detections))
	}

	// Exactly one debounced detection per embedded utterance.
	if len(detections) != len(truth) {
		t.Fatalf("%d detections for %d utterances: %+v", len(detections), len(truth), detections)
	}
	hits := make([]int, len(truth))
	for _, d := range detections {
		if d.Label != "yes" {
			t.Fatalf("detection fired for %q: %+v", d.Label, d)
		}
		winEnd := d.WindowStart + int64(sess.Info.WindowSamples)
		matched := false
		for i, ev := range truth {
			if d.WindowStart < int64(ev.EndSample) && winEnd > int64(ev.StartSample) {
				hits[i]++
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("detection at window %d overlaps no utterance (truth %+v)", d.WindowStart, truth)
		}
	}
	for i, n := range hits {
		if n != 1 {
			t.Fatalf("utterance %d (%d..%d) matched %d detections", i, truth[i].StartSample, truth[i].EndSample, n)
		}
	}
}
