// Package e2e is the repository's end-to-end smoke suite: it boots the
// full platform (registry + orchestrating scheduler + REST API) over
// httptest and drives the whole MLOps loop — signed upload, v2 impulse
// graph, async training watched through the live event stream, int8
// quantization, EON-compiled deployment and classification — through
// the typed client only, exactly as an external automation would. This
// is the tier-1 proof that the layers actually compose; every future PR
// runs it.
package e2e

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

// env is one booted platform instance plus an authenticated client and
// a project loaded with a small synthetic keyword dataset.
type env struct {
	server *httptest.Server
	c      *client.Client
	proj   *v1.CreateProjectResponse
}

func newEnv(t *testing.T) *env { return newEnvClips(t, 0.5) }

// newEnvClips boots the platform with keyword clips of the given length
// — streaming tests train on full-second utterances to match the
// geometry synth.Stream embeds in a live feed.
func newEnvClips(t *testing.T, clipSeconds float64) *env {
	t.Helper()
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 2, ScaleInterval: 5 * time.Millisecond})
	t.Cleanup(sched.Shutdown)
	server := httptest.NewServer(api.NewServer(registry, sched).Handler())
	t.Cleanup(server.Close)

	ctx := context.Background()
	c := client.New(server.URL)
	user, err := c.CreateUser(ctx, "e2e-bot")
	if err != nil {
		t.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "wake-word")
	if err != nil {
		t.Fatal(err)
	}

	// Signed acquisition upload of a synthetic 2-class keyword dataset,
	// through the same ingestion endpoint a device daemon uses.
	ds, err := synth.KWSDataset(2, 10, 8000, clipSeconds, 0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "device-01", DeviceType: "NANO33BLE",
			IntervalMS: 1000.0 / 8000.0,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, proj.HMACKey, 1670000000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.UploadSample(ctx, proj.ID, client.UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Rebalance(ctx, proj.ID, 0.25); err != nil {
		t.Fatal(err)
	}
	return &env{server: server, c: c, proj: proj}
}

// setImpulse uploads the v2 block-graph design.
func (e *env) setImpulse(t *testing.T) {
	t.Helper()
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "wake-word",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Name: "audio", Type: "mfe",
			Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification, Inputs: []string{"audio"}}},
		Classes: []string{"noise", "yes"},
	}
	resp, err := e.c.SetImpulse(context.Background(), e.proj.ID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Blocks) != 1 || resp.Blocks[0].Name != "audio" {
		t.Fatalf("impulse blocks: %+v", resp.Blocks)
	}
}

// TestFullPipelineWithStreamedProgress is the tier-1 smoke: the entire
// upload → impulse → train → quantize → EON deploy → classify flow,
// with the training job watched live through the streaming events API.
func TestFullPipelineWithStreamedProgress(t *testing.T) {
	e := newEnv(t)
	e.setImpulse(t)
	ctx := context.Background()

	const epochs = 8
	accepted, err := e.c.Train(ctx, e.proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       epochs,
		LearningRate: 0.005,
		Quantize:     true,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Watch the whole run through the live stream while it executes.
	var events []v1.JobEvent
	streamCtx, cancelStream := context.WithTimeout(ctx, 120*time.Second)
	defer cancelStream()
	if err := e.c.StreamJobEvents(streamCtx, accepted.JobID, 0, func(ev v1.JobEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The stream is ordered, contiguous and ends with the terminal
	// finished event.
	if len(events) < 5 {
		t.Fatalf("only %d events streamed", len(events))
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d — gap or duplicate in stream", i, ev.Seq)
		}
	}
	first, last := events[0], events[len(events)-1]
	if first.Type != v1.JobEventState || first.Status != v1.JobQueued {
		t.Fatalf("first event %+v", first)
	}
	if !last.Terminal() || last.Status != v1.JobFinished {
		t.Fatalf("last event %+v", last)
	}
	// Real epoch progress: the "train" stage reported monotonically
	// non-decreasing percentages and reached 100.
	var trainPcts []float64
	stages := map[string]bool{}
	for _, ev := range events {
		if ev.Type == v1.JobEventProgress {
			stages[ev.Stage] = true
			if ev.Stage == "train" {
				trainPcts = append(trainPcts, ev.Progress)
			}
		}
	}
	if len(trainPcts) < epochs {
		t.Fatalf("train progress events %d, want >= %d (one per epoch)", len(trainPcts), epochs)
	}
	for i := 1; i < len(trainPcts); i++ {
		if trainPcts[i] < trainPcts[i-1] {
			t.Fatalf("train progress regressed: %v", trainPcts)
		}
	}
	if trainPcts[len(trainPcts)-1] != 100 {
		t.Fatalf("train never reached 100%%: %v", trainPcts)
	}
	for _, stage := range []string{"build", "train", "evaluate", "quantize"} {
		if !stages[stage] {
			t.Fatalf("missing %q stage in progress events (saw %v)", stage, stages)
		}
	}

	// Last-Event-Id resume: replaying from a mid-stream cursor yields
	// exactly the tail — no gaps, no duplicates.
	mid := events[len(events)/2].Seq
	var resumed []v1.JobEvent
	if err := e.c.StreamJobEvents(ctx, accepted.JobID, mid, func(ev v1.JobEvent) error {
		resumed = append(resumed, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tail := events[len(events)/2+1:] // resume is exclusive of the cursor
	if len(resumed) != len(tail) {
		t.Fatalf("resume from %d delivered %d events, want %d", mid, len(resumed), len(tail))
	}
	for i := range tail {
		if resumed[i].Seq != tail[i].Seq || resumed[i].Type != tail[i].Type {
			t.Fatalf("resume mismatch at %d: %+v vs %+v", i, resumed[i], tail[i])
		}
	}
	// The long-poll fallback agrees with the stream.
	poll, err := e.c.JobEvents(ctx, accepted.JobID, mid, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !poll.Done || len(poll.Events) != len(tail) {
		t.Fatalf("poll after %d: done=%v %d events, want %d", mid, poll.Done, len(poll.Events), len(tail))
	}

	// The trained model is real: accuracy holds on the test split.
	res, err := e.c.JobResult(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	trained, err := res.TrainResult()
	if err != nil {
		t.Fatal(err)
	}
	if trained.Accuracy < 0.6 {
		t.Fatalf("accuracy %.3f", trained.Accuracy)
	}
	if !trained.Quantized {
		t.Fatal("quantization skipped")
	}

	// Classify a fresh synthetic window, float and int8.
	sig, err := synth.Keyword("yes", 8000, 0.5, 0.02, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for _, quantized := range []bool{false, true} {
		out, err := e.c.Classify(ctx, e.proj.ID, sig.Data, quantized)
		if err != nil {
			t.Fatal(err)
		}
		if out.Label == "" || len(out.Classification) != 2 {
			t.Fatalf("classify(quantized=%v): %+v", quantized, out)
		}
	}

	// EON-compiled deployment artifacts (quantized C++ library + EIM).
	dep, err := e.c.Deployment(ctx, e.proj.ID, "cpp", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Files) < 4 {
		t.Fatalf("deployment files: %d", len(dep.Files))
	}
	blob, err := e.c.DeploymentEIM(ctx, e.proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 100 || string(blob[:4]) != "EPIM" {
		t.Fatalf("EIM blob: %d bytes", len(blob))
	}

	// The scheduler surfaced the run in its per-kind metrics.
	metrics, err := e.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	foundKind := false
	for _, k := range metrics.Scheduler.Kinds {
		if k.Kind == "training" && k.Count >= 1 {
			foundKind = true
		}
	}
	if !foundKind || metrics.Scheduler.Completed < 1 {
		t.Fatalf("scheduler metrics: %+v", metrics.Scheduler)
	}
}

// TestCancellationStopsTraining proves the cancellation contract end to
// end: a long training job is cancelled mid-epochs over the API, the
// trainer observes its context (partial epochs stop), and the event
// stream delivers the terminal cancelled event.
func TestCancellationStopsTraining(t *testing.T) {
	e := newEnv(t)
	e.setImpulse(t)
	ctx := context.Background()

	// Far more epochs than the fast path needs, so cancellation lands
	// mid-training.
	accepted, err := e.c.Train(ctx, e.proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       100000,
		LearningRate: 0.005,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stream until real training progress appears, then cancel.
	var mu sync.Mutex
	var events []v1.JobEvent
	trainProgress := make(chan struct{})
	var progressOnce sync.Once
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- e.c.StreamJobEvents(ctx, accepted.JobID, 0, func(ev v1.JobEvent) error {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
			if ev.Type == v1.JobEventProgress && ev.Stage == "train" && ev.Progress > 0 {
				progressOnce.Do(func() { close(trainProgress) })
			}
			return nil
		})
	}()
	select {
	case <-trainProgress:
	case <-time.After(60 * time.Second):
		t.Fatal("training never reported progress")
	}
	cancelled, err := e.c.CancelJob(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !cancelled.Cancelled {
		t.Fatalf("cancel response: %+v", cancelled)
	}

	// The job reaches the cancelled terminal state promptly — the
	// trainer stops mid-epoch instead of finishing 100k epochs.
	waited, err := e.c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if waited.Status != v1.JobCancelled {
		t.Fatalf("status after cancel: %s (%s)", waited.Status, waited.Job.Error)
	}
	// The stream terminates with the cancelled event.
	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not terminate after cancellation")
	}
	mu.Lock()
	defer mu.Unlock()
	lastEvent := events[len(events)-1]
	if !lastEvent.Terminal() || lastEvent.Status != v1.JobCancelled {
		t.Fatalf("stream end after cancel: %+v", lastEvent)
	}
	// Partial epochs: progress never reached 100.
	for _, ev := range events {
		if ev.Type == v1.JobEventProgress && ev.Stage == "train" && ev.Progress >= 100 {
			t.Fatalf("training completed despite cancellation: %+v", ev)
		}
	}
	// The cancelled job left no result behind.
	if _, err := e.c.JobResult(ctx, accepted.JobID); err == nil {
		t.Fatal("cancelled job produced a result")
	}
	fmt.Println("cancelled after", len(events), "events")
}
