package e2e

// Cluster e2e: the full MLOps loop driven through the gateway only,
// against a 2-worker fleet with a replicating follower — the fleet
// topology the paper's multi-tenant platform implies (Sec. 3), built
// from cmd/ei-gateway + ei-daemon -worker/-follow parts in-process.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/cluster"
	"edgepulse/internal/core"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

const clusterToken = "e2e-cluster-token"

// chaosProbe is a flip-switch readiness failure.
type chaosProbe struct {
	mu  sync.Mutex
	err error
}

func (c *chaosProbe) set(err error) { c.mu.Lock(); c.err = err; c.mu.Unlock() }
func (c *chaosProbe) probe() error  { c.mu.Lock(); defer c.mu.Unlock(); return c.err }

// clusterNode is one fleet member with direct registry access for
// store-level assertions.
type clusterNode struct {
	name  string
	reg   *project.Registry
	srv   *httptest.Server
	chaos *chaosProbe
}

// clusterEnv is a booted 2-shard fleet: two workers, a follower for
// shard 0, and the gateway. The client talks to the gateway only.
type clusterEnv struct {
	w0, w1, f0 *clusterNode
	follower   *cluster.Follower
	gw         *cluster.Gateway
	gwSrv      *httptest.Server
	c          *client.Client
	user       *v1.CreateUserResponse
	p0, p1     *v1.CreateProjectResponse // p0 on shard 0, p1 on shard 1
}

func bootNode(t *testing.T, reg *project.Registry, name, role string, shard, shards int) *clusterNode {
	t.Helper()
	ch := &chaosProbe{}
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 2, ScaleInterval: 5 * time.Millisecond})
	t.Cleanup(sched.Shutdown)
	server := api.NewServer(reg, sched,
		api.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))),
		api.WithClusterNode(name, role, shard, shards),
		api.WithClusterToken(clusterToken),
		api.WithReadinessProbe("chaos", ch.probe),
	)
	t.Cleanup(server.Close)
	srv := httptest.NewServer(server.Handler())
	t.Cleanup(srv.Close)
	return &clusterNode{name: name, reg: reg, srv: srv, chaos: ch}
}

func newClusterEnv(t *testing.T) *clusterEnv {
	t.Helper()
	e := &clusterEnv{}
	for shard, dst := range []**clusterNode{&e.w0, &e.w1} {
		reg, err := project.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { reg.Close() })
		reg.SetProjectIDStride(shard, 2)
		*dst = bootNode(t, reg, fmt.Sprintf("worker-%d", shard), cluster.RoleWorker, shard, 2)
	}
	freg, err := project.OpenReplica(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { freg.Close() })
	e.f0 = bootNode(t, freg, "follower-0", cluster.RoleFollower, 0, 2)
	e.follower, err = cluster.NewFollower(freg, cluster.FollowerConfig{
		PrimaryURL: e.w0.srv.URL,
		Token:      clusterToken,
		Interval:   25 * time.Millisecond,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.follower.Start()
	t.Cleanup(e.follower.Stop)

	m := &cluster.Map{Shards: 2, Nodes: []cluster.Node{
		{Name: e.w0.name, URL: e.w0.srv.URL, Role: cluster.RoleWorker, Shard: 0},
		{Name: e.w1.name, URL: e.w1.srv.URL, Role: cluster.RoleWorker, Shard: 1},
		{Name: e.f0.name, URL: e.f0.srv.URL, Role: cluster.RoleFollower, Shard: 0},
	}}
	e.gw = cluster.NewGateway(m, cluster.GatewayConfig{
		Token:        clusterToken,
		PollInterval: 25 * time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	e.gw.Start()
	t.Cleanup(e.gw.Stop)
	e.gwSrv = httptest.NewServer(e.gw)
	t.Cleanup(e.gwSrv.Close)

	ctx := context.Background()
	c := client.New(e.gwSrv.URL)
	e.user, err = c.CreateUser(ctx, "fleet-bot")
	if err != nil {
		t.Fatal(err)
	}
	e.c = c.WithAPIKey(e.user.APIKey)

	// Round-robin placement + per-worker ID striding puts consecutive
	// creations on different shards.
	pa, err := e.c.CreateProject(ctx, "fleet-a")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := e.c.CreateProject(ctx, "fleet-b")
	if err != nil {
		t.Fatal(err)
	}
	if pa.ID%2 == pb.ID%2 {
		t.Fatalf("projects landed on one shard: %d, %d", pa.ID, pb.ID)
	}
	e.p0, e.p1 = pa, pb
	if pa.ID%2 != 0 {
		e.p0, e.p1 = pb, pa
	}
	return e
}

// tinyDoc signs a minimal unique acquisition document.
func tinyDoc(t *testing.T, hmacKey string, seq int) []byte {
	t.Helper()
	values := make([][]float64, 8)
	for i := range values {
		values[i] = []float64{float64(seq*8 + i)}
	}
	doc, err := ingest.SignJSON(ingest.Payload{
		DeviceName: "fleet-dev", DeviceType: "NANO33BLE",
		IntervalMS: 1000.0 / 100.0,
		Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
		Values:     values,
	}, hmacKey, 1680000000+int64(seq))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func (e *clusterEnv) datasetVersion(n *clusterNode, id int) string {
	p, err := n.reg.GetProject(id)
	if err != nil {
		return "err"
	}
	return p.Dataset().Version()
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterPipelineThroughGateway drives upload → impulse → train →
// classify exclusively through the gateway, with the job located by
// the cross-shard probe.
func TestClusterPipelineThroughGateway(t *testing.T) {
	e := newClusterEnv(t)
	ctx := context.Background()

	ds, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "device-01", DeviceType: "NANO33BLE",
			IntervalMS: 1000.0 / 8000.0,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, e.p0.HMACKey, 1670000000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.c.UploadSample(ctx, e.p0.ID, client.UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.c.Rebalance(ctx, e.p0.ID, 0.25); err != nil {
		t.Fatal(err)
	}
	if _, err := e.c.SetImpulse(ctx, e.p0.ID, core.Config{
		Version: core.ConfigVersion,
		Name:    "fleet-kws",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Name: "audio", Type: "mfe",
			Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification, Inputs: []string{"audio"}}},
		Classes: []string{"noise", "yes"},
	}); err != nil {
		t.Fatal(err)
	}

	accepted, err := e.c.Train(ctx, e.p0.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       6,
		LearningRate: 0.005,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := e.c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Job.Status != v1.JobFinished {
		t.Fatalf("training ended %s: %s", done.Job.Status, done.Job.Error)
	}

	sig, err := synth.Keyword("yes", 8000, 0.5, 0.02, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.c.Classify(ctx, e.p0.ID, sig.Data, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Label == "" || len(out.Classification) != 2 {
		t.Fatalf("classify through gateway: %+v", out)
	}

	// Everything above landed only on worker-0's store.
	if _, err := e.w1.reg.GetProject(e.p0.ID); err == nil {
		t.Fatalf("shard-0 project %d present on worker-1", e.p0.ID)
	}
}

// TestClusterReplication1kSamples proves the follower converges to the
// primary's exact dataset content hash after a 1000-sample ingest
// through the gateway.
func TestClusterReplication1kSamples(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-sample ingest")
	}
	e := newClusterEnv(t)
	ctx := context.Background()
	for i := 0; i < 1000; i++ {
		if _, err := e.c.UploadSample(ctx, e.p0.ID, client.UploadParams{
			Label: "yes", Name: fmt.Sprintf("bulk-%d", i), Format: "acquisition",
		}, tinyDoc(t, e.p0.HMACKey, i)); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	p, err := e.w0.reg.GetProject(e.p0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dataset().Len() != 1000 {
		t.Fatalf("primary holds %d samples", p.Dataset().Len())
	}
	// One explicit sync round replaces interval polling: after it the
	// follower must hold the primary's exact content hash.
	if err := e.follower.SyncOnce(ctx); err != nil {
		t.Fatalf("follower sync: %v", err)
	}
	if got, want := e.datasetVersion(e.f0, e.p0.ID), e.datasetVersion(e.w0, e.p0.ID); got != want {
		t.Fatalf("follower converged to %s, primary at %s", got, want)
	}
	fp, err := e.f0.reg.GetProject(e.p0.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Dataset().Len() != 1000 {
		t.Fatalf("follower holds %d samples", fp.Dataset().Len())
	}
}

// TestClusterOutageIsolation kills one worker's readiness: its shard
// degrades (reads via follower, writes shed with 503 + Retry-After +
// no_shard) while the other shard keeps serving; recovery is ≤5s.
func TestClusterOutageIsolation(t *testing.T) {
	e := newClusterEnv(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := e.c.UploadSample(ctx, e.p0.ID, client.UploadParams{
			Label: "yes", Name: fmt.Sprintf("pre-%d", i), Format: "acquisition",
		}, tinyDoc(t, e.p0.HMACKey, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.follower.SyncOnce(ctx); err != nil {
		t.Fatalf("initial replication sync: %v", err)
	}
	if got, want := e.datasetVersion(e.f0, e.p0.ID), e.datasetVersion(e.w0, e.p0.ID); got != want {
		t.Fatalf("follower at %s, primary at %s", got, want)
	}

	e.w0.chaos.set(errors.New("injected crash"))
	waitUntil(t, 2*time.Second, "outage detection", func() bool {
		return !e.gw.Health().State(e.w0.name).Ready
	})

	// Reads on the degraded shard come from the follower's replica.
	samples, err := e.c.Samples(ctx, e.p0.ID, "", client.Page{})
	if err != nil {
		t.Fatalf("read during outage: %v", err)
	}
	if samples.Total != 5 {
		t.Fatalf("follower served %d samples, want 5", samples.Total)
	}
	// Writes on the degraded shard shed with the stable contract.
	_, err = e.c.UploadSample(ctx, e.p0.ID, client.UploadParams{
		Label: "yes", Name: "shed", Format: "acquisition",
	}, tinyDoc(t, e.p0.HMACKey, 500))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable ||
		apiErr.Code != v1.CodeNoShard || apiErr.RetryAfter <= 0 {
		t.Fatalf("write during outage: %v", err)
	}
	// The healthy shard is untouched.
	if _, err := e.c.UploadSample(ctx, e.p1.ID, client.UploadParams{
		Label: "yes", Name: "other-shard", Format: "acquisition",
	}, tinyDoc(t, e.p1.HMACKey, 600)); err != nil {
		t.Fatalf("healthy shard during outage: %v", err)
	}

	// Recovery: the primary comes back and writes resume within 5s.
	e.w0.chaos.set(nil)
	waitUntil(t, 5*time.Second, "write recovery", func() bool {
		_, err := e.c.UploadSample(ctx, e.p0.ID, client.UploadParams{
			Label: "yes", Name: "post-recovery", Format: "acquisition",
		}, tinyDoc(t, e.p0.HMACKey, 700))
		return err == nil
	})
}
