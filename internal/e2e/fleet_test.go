package e2e

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"edgepulse/internal/api"
	"edgepulse/internal/fleet"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/resilience"
)

// TestFleetMacroStorm is the macro end-to-end: a mixed-scenario device
// fleet storms one in-process daemon wired with a real admission gate
// and a deliberately small job queue, and the platform SLO must hold —
// interactive traffic is never shed with "overloaded", every refusal
// carries Retry-After, streamed ground truth is recovered exactly, and
// the daemon's goroutines return to baseline once the storm drains.
func TestFleetMacroStorm(t *testing.T) {
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{
		MinWorkers: 2, MaxWorkers: 2,
		QueueSize: 4, MaxQueuedPerTag: 4,
		ScaleInterval: 5 * time.Millisecond,
	})
	t.Cleanup(sched.Shutdown)
	server := httptest.NewServer(api.NewServer(registry, sched,
		api.WithRateLimit(0, 0), // the gate does the shedding, not the token bucket
		api.WithGate(resilience.GateConfig{MaxInflight: 16, SamplePeriod: time.Millisecond}),
	).Handler())
	t.Cleanup(server.Close)

	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := fleet.Run(ctx, server.URL, fleet.Config{
		Devices:       12, // one full default-mix pattern plus change
		OpsPerDevice:  2,
		Seed:          42,
		StreamSeconds: 6,
		StreamEvents:  1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The platform contract, as one gate: no interactive "overloaded"
	// sheds, Retry-After on every refusal, exact recall, zero hard
	// errors.
	if v := res.Violations(fleet.DefaultSLO()); len(v) != 0 {
		t.Fatalf("SLO violations:\n%v\nresult: %+v", v, res.Ops)
	}

	// Every scenario actually ran — a storm that silently skipped ops
	// would pass the SLO vacuously.
	for _, op := range []string{
		fleet.OpUpload, fleet.OpClassify, fleet.OpClassifyBatch,
		fleet.OpStreamOpen, fleet.OpStreamPush, fleet.OpStreamClose,
		fleet.OpTrain, fleet.OpTune,
	} {
		if st := res.Op(op); st == nil || st.Count == 0 {
			t.Fatalf("op %s never ran: %+v", op, res.Ops)
		}
	}
	if res.Recall.Sessions == 0 || res.Recall.Events == 0 {
		t.Fatalf("no streaming ground truth scored: %+v", res.Recall)
	}

	// The daemon sheds load, it doesn't leak it: goroutines return to
	// the pre-storm baseline (modulo scheduler worker slack) once
	// sessions close and jobs drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !res.TargetDelta.Available {
		t.Fatalf("runtime metrics missing from target: %+v", res.TargetDelta)
	}
}

// TestFleetGatewayStorm aims a smaller fleet — including a streaming
// device — at the sharded gateway from the cluster harness: the same
// SLO must hold when every request hops through shard routing and the
// session lives on a worker behind the proxy.
func TestFleetGatewayStorm(t *testing.T) {
	e := newClusterEnv(t)

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := fleet.Run(ctx, e.gwSrv.URL, fleet.Config{
		Devices:       4, // upload, classify, classify, stream
		OpsPerDevice:  1,
		Seed:          42,
		Mix:           fleet.Mix{Upload: 1, Classify: 2, Stream: 1},
		StreamSeconds: 6,
		StreamEvents:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(fleet.DefaultSLO()); len(v) != 0 {
		t.Fatalf("SLO violations through gateway:\n%v\nresult: %+v", v, res.Ops)
	}
	for _, op := range []string{fleet.OpUpload, fleet.OpClassify, fleet.OpStreamOpen, fleet.OpStreamPush, fleet.OpStreamClose} {
		if st := res.Op(op); st == nil || st.Count == 0 {
			t.Fatalf("op %s never ran through the gateway: %+v", op, res.Ops)
		}
	}
	if res.Recall.Sessions != 1 || res.Recall.Missed != 0 || res.Recall.False != 0 {
		t.Fatalf("gateway stream recall: %+v", res.Recall)
	}
}
