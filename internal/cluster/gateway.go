package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
)

// NodeHeader names the response header carrying the node that actually
// served a proxied request.
const NodeHeader = "X-Cluster-Node"

// retryAfterSeconds is the Retry-After hint on 503 no_shard responses.
const retryAfterSeconds = 2

// GatewayConfig configures the cluster gateway.
type GatewayConfig struct {
	// Token is forwarded as X-Cluster-Token on intra-cluster calls
	// (admit broadcasts, node identity probes).
	Token string
	// PollInterval is the health poll cadence; default 1s.
	PollInterval time.Duration
	// Logger receives access and routing logs; default slog.Default().
	Logger *slog.Logger
	// Client overrides the proxy HTTP client (no timeout: streaming
	// responses stay open for the life of the client connection).
	Client *http.Client
}

// Gateway reverse-proxies the full /api/v1 surface onto a worker
// fleet: project-scoped paths go to the owning shard, collection paths
// fan out and merge, and everything streams through without buffering.
type Gateway struct {
	m      *Map
	health *Health
	hc     *http.Client
	token  string
	log    *slog.Logger
	start  time.Time

	rrMu sync.Mutex
	rr   int

	statMu sync.Mutex
	stats  map[string]*routeStat
}

type routeStat struct {
	count, err4xx, err5xx int64
	totalMS               float64
}

// NewGateway builds a gateway over a validated shard map.
func NewGateway(m *Map, cfg GatewayConfig) *Gateway {
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Gateway{
		m: m,
		health: NewHealth(m, HealthConfig{
			Interval: cfg.PollInterval,
			Token:    cfg.Token,
			Client:   &http.Client{Timeout: 3 * time.Second},
		}),
		hc:    hc,
		token: cfg.Token,
		log:   logger,
		start: time.Now(),
	}
}

// Start begins health polling (one synchronous round first, so the
// gateway routes correctly from its first request).
func (g *Gateway) Start() { g.health.Start() }

// Stop halts health polling.
func (g *Gateway) Stop() { g.health.Stop() }

// Health exposes the tracker (status endpoint, tests).
func (g *Gateway) Health() *Health { return g.health }

// ServeHTTP implements the routing table. Every response carries
// X-Request-Id (minted here if absent, preserved end-to-end otherwise).
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get(api.RequestIDHeader)
	if reqID == "" || len(reqID) > 64 {
		reqID = newRequestID()
		r.Header.Set(api.RequestIDHeader, reqID)
	}
	w.Header().Set(api.RequestIDHeader, reqID)

	rest, ok := stripAPIPrefix(r.URL.Path)
	if !ok {
		g.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "unknown path")
		return
	}

	sw := &gwWriter{ResponseWriter: w, started: time.Now()}
	route := g.dispatch(sw, r, rest)
	g.record(route, sw.status, time.Since(sw.started))
	g.log.Info("gateway",
		"method", r.Method, "path", r.URL.Path, "status", sw.status,
		"route", route, "request_id", reqID)
}

// dispatch routes one request and returns the metrics route label.
func (g *Gateway) dispatch(w http.ResponseWriter, r *http.Request, rest string) string {
	switch {
	case rest == "/healthz":
		writeJSON(w, http.StatusOK, v1.HealthResponse{
			Success: true, Status: "ok", UptimeSeconds: time.Since(g.start).Seconds(),
		})
		return "GET /healthz"
	case rest == "/readyz":
		g.handleReadyz(w, r)
		return "GET /readyz"
	case rest == "/metrics" && r.Method == http.MethodGet:
		g.handleMetrics(w, r)
		return "GET /metrics"
	case rest == "/cluster/status" && r.Method == http.MethodGet:
		g.handleStatus(w, r)
		return "GET /cluster/status"
	case rest == "/users" && r.Method == http.MethodPost:
		g.handleCreateUser(w, r)
		return "POST /users"
	case rest == "/devices" || rest == "/blocks":
		g.proxyAny(w, r)
		return r.Method + " " + rest
	case rest == "/projects/public" && r.Method == http.MethodGet:
		g.handleProjectList(w, r, rest)
		return "GET /projects/public"
	case rest == "/projects" && r.Method == http.MethodGet:
		g.handleProjectList(w, r, rest)
		return "GET /projects"
	case rest == "/projects" && r.Method == http.MethodPost:
		g.handleCreateProject(w, r)
		return "POST /projects"
	case strings.HasPrefix(rest, "/projects/"):
		g.handleProjectPath(w, r, rest)
		return r.Method + " /projects/{id}"
	case strings.HasPrefix(rest, "/jobs/"):
		g.handleJobPath(w, r, rest)
		return r.Method + " /jobs/{job}"
	}
	g.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "unknown path")
	return "unmatched"
}

// handleReadyz reports gateway readiness: ready when every shard has at
// least one live node to answer reads. Probes detail each shard.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	probes := make(map[string]string, g.m.Shards)
	ready := true
	for s := 0; s < g.m.Shards; s++ {
		key := fmt.Sprintf("shard-%d", s)
		switch {
		case g.health.ReadyPrimary(s) != nil:
			probes[key] = "ok"
		case g.health.ServeRead(s) != nil:
			probes[key] = "degraded: primary down, reads via " + g.health.ServeRead(s).Name
		default:
			probes[key] = "down: no live node"
			ready = false
		}
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, v1.ReadyResponse{Success: true, Ready: ready, Probes: probes})
}

// handleMetrics renders the gateway's own counters, reusing the worker
// MetricsResponse shape and Prometheus renderer.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := v1.MetricsResponse{
		Success:       true,
		UptimeSeconds: time.Since(g.start).Seconds(),
	}
	g.statMu.Lock()
	names := make([]string, 0, len(g.stats))
	for name := range g.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := g.stats[name]
		rm := v1.RouteMetrics{Route: name, Count: st.count, Err4xx: st.err4xx, Err5xx: st.err5xx}
		if st.count > 0 {
			rm.AvgMS = st.totalMS / float64(st.count)
		}
		out.Requests += st.count
		out.Routes = append(out.Routes, rm)
	}
	g.statMu.Unlock()
	out.Runtime = api.RuntimeSnapshot()

	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", api.PrometheusContentType)
		api.RenderPrometheus(w, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus reports the shard map with per-node health and follower
// replication lag (max per-project version deficit vs the primary).
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	out := v1.ClusterStatusResponse{Success: true}
	for s := 0; s < g.m.Shards; s++ {
		shard := v1.ClusterShardStatus{Shard: s}
		var primaryProjects map[int]uint64
		if p := g.m.Primary(s); p != nil {
			st := g.health.State(p.Name)
			primaryProjects = st.Projects
			shard.Primary = nodeStatus(p, st, 0)
		} else {
			shard.Primary = v1.ClusterNodeStatus{Error: "no primary in shard map"}
		}
		for _, f := range g.m.Followers(s) {
			st := g.health.State(f.Name)
			var lag uint64
			for id, pv := range primaryProjects {
				fv := st.Projects[id]
				if pv > fv && pv-fv > lag {
					lag = pv - fv
				}
			}
			shard.Followers = append(shard.Followers, nodeStatus(f, st, lag))
		}
		out.Shards = append(out.Shards, shard)
	}
	writeJSON(w, http.StatusOK, out)
}

func nodeStatus(n *Node, st NodeState, lag uint64) v1.ClusterNodeStatus {
	return v1.ClusterNodeStatus{
		Name: n.Name, URL: n.URL, Role: n.Role,
		Ready: st.Ready, Draining: st.Draining, Probes: st.Probes,
		LagOps: lag, Error: st.Err,
	}
}

// handleCreateUser creates the account on one live primary, then
// broadcasts the minted credentials to every other live primary so the
// same API key authenticates on any shard.
func (g *Gateway) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	primaries := g.health.ReadyPrimaries()
	if len(primaries) == 0 {
		g.shed(w, r, "no live primary to create users on")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		g.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "reading body: "+err.Error())
		return
	}
	target := primaries[g.nextRR(len(primaries))]
	resp, respBody, err := g.subRequest(r, target, http.MethodPost, v1.Prefix+"/users", body)
	if err != nil {
		g.writeError(w, r, http.StatusBadGateway, v1.CodeUnavailable, err.Error())
		return
	}
	if resp.StatusCode < 300 {
		var created v1.CreateUserResponse
		if err := json.Unmarshal(respBody, &created); err == nil {
			g.broadcastAdmit(r, primaries, target, created)
		}
	}
	w.Header().Set(NodeHeader, target.Name)
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
}

// broadcastAdmit replays minted credentials onto the other primaries.
// Failures are logged, not fatal: the unreachable worker admits the
// user on its next restart-free path (operator re-runs bootstrap) and
// meanwhile every other shard works.
func (g *Gateway) broadcastAdmit(r *http.Request, primaries []*Node, origin *Node, u v1.CreateUserResponse) {
	admit, _ := json.Marshal(v1.AdmitUserRequest{ID: u.ID, Name: u.Name, APIKey: u.APIKey})
	for _, n := range primaries {
		if n.Name == origin.Name {
			continue
		}
		resp, _, err := g.subRequest(r, n, http.MethodPost, v1.Prefix+"/cluster/users", admit)
		if err != nil {
			g.log.Warn("admit broadcast failed", "node", n.Name, "err", err)
			continue
		}
		if resp.StatusCode >= 300 {
			g.log.Warn("admit broadcast rejected", "node", n.Name, "status", resp.StatusCode)
		}
	}
}

// handleCreateProject places a new project on a live primary, rotating
// round-robin. ID striding on the workers guarantees the minted ID
// hash-routes back to its creator.
func (g *Gateway) handleCreateProject(w http.ResponseWriter, r *http.Request) {
	primaries := g.health.ReadyPrimaries()
	if len(primaries) == 0 {
		g.shed(w, r, "no live primary to place projects on")
		return
	}
	g.proxy(w, r, primaries[g.nextRR(len(primaries))])
}

// handleProjectList fans a list request out to every shard's serving
// node, merges by project ID, and re-applies pagination at the gateway.
func (g *Gateway) handleProjectList(w http.ResponseWriter, r *http.Request, rest string) {
	var merged []v1.ProjectSummary
	seen := map[int]bool{}
	served := 0
	for s := 0; s < g.m.Shards; s++ {
		n := g.health.ServeRead(s)
		if n == nil {
			continue
		}
		resp, body, err := g.subRequest(r, n, http.MethodGet, v1.Prefix+rest+"?limit=1000", nil)
		if err != nil {
			g.log.Warn("list fan-out failed", "node", n.Name, "err", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// An auth failure is identical on every shard: surface it.
			w.Header().Set(NodeHeader, n.Name)
			copyHeaders(w.Header(), resp.Header)
			w.WriteHeader(resp.StatusCode)
			w.Write(body)
			return
		}
		var page v1.ProjectsResponse
		if err := json.Unmarshal(body, &page); err != nil {
			g.log.Warn("list fan-out bad body", "node", n.Name, "err", err)
			continue
		}
		served++
		for _, p := range page.Projects {
			if !seen[p.ID] {
				seen[p.ID] = true
				merged = append(merged, p)
			}
		}
	}
	if served == 0 {
		g.shed(w, r, "no shard reachable for listing")
		return
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })

	limit, offset := pageParams(r, 100)
	total := len(merged)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	writeJSON(w, http.StatusOK, v1.ProjectsResponse{
		Success:  true,
		Projects: merged[offset:end],
		Page:     v1.Page{Limit: limit, Offset: offset, Total: total},
	})
}

// handleProjectPath routes /projects/{id}/... to the owning shard:
// writes require the live primary (503 no_shard otherwise), reads fail
// over to a live follower.
func (g *Gateway) handleProjectPath(w http.ResponseWriter, r *http.Request, rest string) {
	idPart := strings.TrimPrefix(rest, "/projects/")
	if i := strings.IndexByte(idPart, '/'); i >= 0 {
		idPart = idPart[:i]
	}
	id, err := strconv.Atoi(idPart)
	if err != nil {
		g.writeError(w, r, http.StatusBadRequest, v1.CodeBadRequest, "bad project id "+idPart)
		return
	}
	shard := g.m.ShardFor(id)
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		if n := g.health.ServeRead(shard); n != nil {
			g.proxy(w, r, n)
			return
		}
		g.shed(w, r, fmt.Sprintf("shard %d has no live node", shard))
		return
	}
	if n := g.health.ReadyPrimary(shard); n != nil {
		g.proxy(w, r, n)
		return
	}
	g.shed(w, r, fmt.Sprintf("shard %d has no live primary; writes shed", shard))
}

// handleJobPath finds the worker owning a job by probing each live
// primary (job IDs are minted per worker), then proxies to it.
func (g *Gateway) handleJobPath(w http.ResponseWriter, r *http.Request, rest string) {
	jobID := strings.TrimPrefix(rest, "/jobs/")
	if i := strings.IndexByte(jobID, '/'); i >= 0 {
		jobID = jobID[:i]
	}
	primaries := g.health.ReadyPrimaries()
	if len(primaries) == 0 {
		g.shed(w, r, "no live primary to locate jobs on")
		return
	}
	for _, n := range primaries {
		resp, _, err := g.subRequest(r, n, http.MethodGet, v1.Prefix+"/jobs/"+jobID, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusNotFound {
			g.proxy(w, r, n)
			return
		}
	}
	g.writeError(w, r, http.StatusNotFound, v1.CodeNotFound, "job not found on any shard")
}

// proxyAny forwards to any live node (static catalogs: devices,
// blocks), preferring primaries.
func (g *Gateway) proxyAny(w http.ResponseWriter, r *http.Request) {
	if ps := g.health.ReadyPrimaries(); len(ps) > 0 {
		g.proxy(w, r, ps[g.nextRR(len(ps))])
		return
	}
	for s := 0; s < g.m.Shards; s++ {
		if n := g.health.ServeRead(s); n != nil {
			g.proxy(w, r, n)
			return
		}
	}
	g.shed(w, r, "no live node")
}

// proxy streams one request to a node and its response back, flushing
// after every chunk so NDJSON event streams pass through unbuffered.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, n *Node) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, n.URL+r.URL.RequestURI(), r.Body)
	if err != nil {
		g.writeError(w, r, http.StatusBadGateway, v1.CodeUnavailable, err.Error())
		return
	}
	req.ContentLength = r.ContentLength
	copyHeaders(req.Header, r.Header)
	appendForwardedFor(req.Header, r.RemoteAddr)

	resp, err := g.hc.Do(req)
	if err != nil {
		g.writeError(w, r, http.StatusBadGateway, v1.CodeUnavailable,
			fmt.Sprintf("upstream %s: %v", n.Name, err))
		return
	}
	defer resp.Body.Close()

	w.Header().Set(NodeHeader, n.Name)
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)

	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// subRequest issues a bounded intra-cluster request on behalf of the
// client, forwarding its credentials and correlation ID.
func (g *Gateway) subRequest(r *http.Request, n *Node, method, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, n.URL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if v := r.Header.Get("X-Api-Key"); v != "" {
		req.Header.Set("X-Api-Key", v)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(api.RequestIDHeader, r.Header.Get(api.RequestIDHeader))
	if g.token != "" {
		req.Header.Set(api.ClusterTokenHeader, g.token)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

// shed answers 503 with the stable no_shard code and a Retry-After
// hint, the contract for "this shard currently has no node that can
// take this request".
func (g *Gateway) shed(w http.ResponseWriter, r *http.Request, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	g.writeError(w, r, http.StatusServiceUnavailable, v1.CodeNoShard, msg)
}

func (g *Gateway) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	writeJSON(w, status, v1.ErrorResponse{
		Success: false,
		Error: v1.ErrorDetail{
			Code: code, Message: msg,
			RequestID: r.Header.Get(api.RequestIDHeader),
		},
	})
}

func (g *Gateway) nextRR(n int) int {
	g.rrMu.Lock()
	defer g.rrMu.Unlock()
	g.rr++
	return g.rr % n
}

func (g *Gateway) record(route string, status int, d time.Duration) {
	g.statMu.Lock()
	defer g.statMu.Unlock()
	if g.stats == nil {
		g.stats = map[string]*routeStat{}
	}
	st := g.stats[route]
	if st == nil {
		st = &routeStat{}
		g.stats[route] = st
	}
	st.count++
	st.totalMS += float64(d.Microseconds()) / 1000
	switch {
	case status >= 500:
		st.err5xx++
	case status >= 400:
		st.err4xx++
	}
}

// --- plumbing ---

// gwWriter captures the response status for metrics/logging.
type gwWriter struct {
	http.ResponseWriter
	status  int
	started time.Time
}

func (w *gwWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *gwWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *gwWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// stripAPIPrefix maps /api/v1/x and the legacy /api/x alias to /x.
func stripAPIPrefix(path string) (string, bool) {
	if rest, ok := strings.CutPrefix(path, v1.Prefix); ok && (rest == "" || rest[0] == '/') {
		return rest, true
	}
	if rest, ok := strings.CutPrefix(path, v1.LegacyPrefix); ok && len(rest) > 0 && rest[0] == '/' {
		return rest, true
	}
	return "", false
}

// hopHeaders are the RFC 7230 hop-by-hop headers never forwarded.
var hopHeaders = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

// copyHeaders forwards non-hop-by-hop headers, leaving keys the
// destination already carries (X-Request-Id minted at the gateway,
// X-Cluster-Node) untouched to avoid duplicates.
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		ck := http.CanonicalHeaderKey(k)
		if hopHeaders[ck] || dst.Get(ck) != "" {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func appendForwardedFor(h http.Header, remoteAddr string) {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	if prior := h.Get("X-Forwarded-For"); prior != "" {
		host = prior + ", " + host
	}
	h.Set("X-Forwarded-For", host)
}

func pageParams(r *http.Request, defLimit int) (limit, offset int) {
	limit = defLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 1000 {
			limit = n
		}
	}
	if v := r.URL.Query().Get("offset"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			offset = n
		}
	}
	return limit, offset
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unknown"
	}
	return hex.EncodeToString(b[:])
}
