// Package cluster is the distributed control plane: a static shard map
// assigning every project to one worker, a health tracker polling each
// node's readiness, a gateway reverse-proxying the entire /api/v1
// surface to the owning worker (failing reads over to the shard's
// follower and shedding writes with 503 + Retry-After when a shard has
// no live primary), and a follower sync loop pulling segment-shipping
// replication from a primary into a read-only standby (paper Sec. 3:
// one multi-tenant platform serving many projects; ROADMAP item 1's
// control-plane split).
//
// Sharding is hash-mod over the project ID: shard(p) = p mod Shards.
// Workers allocate project IDs in their own residue class
// (project.Registry.SetProjectIDStride), so an ID minted by worker k
// routes back to worker k with no coordination.
package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Node roles.
const (
	RoleWorker   = "worker"
	RoleFollower = "follower"
)

// Node is one cluster member.
type Node struct {
	// Name identifies the node in status output and the X-Cluster-Node
	// response header.
	Name string `json:"name"`
	// URL is the node's base URL ("http://10.0.0.5:4800").
	URL string `json:"url"`
	// Role is RoleWorker (the shard's writable primary) or RoleFollower
	// (its read-only replica).
	Role string `json:"role"`
	// Shard is the shard the node serves, in [0, Map.Shards).
	Shard int `json:"shard"`
}

// Map is the static shard map the gateway routes by.
type Map struct {
	// Shards is the shard count; project p belongs to shard p mod Shards.
	Shards int    `json:"shards"`
	Nodes  []Node `json:"nodes"`
}

// ShardFor returns the shard owning a project ID.
func (m *Map) ShardFor(projectID int) int {
	s := projectID % m.Shards
	if s < 0 {
		s += m.Shards
	}
	return s
}

// Primary returns the shard's worker node, or nil if the map has none.
func (m *Map) Primary(shard int) *Node {
	for i := range m.Nodes {
		if m.Nodes[i].Shard == shard && m.Nodes[i].Role == RoleWorker {
			return &m.Nodes[i]
		}
	}
	return nil
}

// Followers returns the shard's follower nodes.
func (m *Map) Followers(shard int) []*Node {
	var out []*Node
	for i := range m.Nodes {
		if m.Nodes[i].Shard == shard && m.Nodes[i].Role == RoleFollower {
			out = append(out, &m.Nodes[i])
		}
	}
	return out
}

// Validate checks structural invariants: a positive shard count, every
// node in range with a known role and non-empty URL, unique names, and
// at most one primary per shard. A shard with no primary is legal (it
// serves reads through followers until its worker returns).
func (m *Map) Validate() error {
	if m.Shards <= 0 {
		return fmt.Errorf("cluster: shard count must be positive, got %d", m.Shards)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: shard map has no nodes")
	}
	names := map[string]bool{}
	primaries := map[int]string{}
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", i)
		}
		if names[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		if n.URL == "" {
			return fmt.Errorf("cluster: node %s has no URL", n.Name)
		}
		if n.Shard < 0 || n.Shard >= m.Shards {
			return fmt.Errorf("cluster: node %s shard %d outside [0,%d)", n.Name, n.Shard, m.Shards)
		}
		switch n.Role {
		case RoleWorker:
			if prev, dup := primaries[n.Shard]; dup {
				return fmt.Errorf("cluster: shard %d has two primaries (%s, %s)", n.Shard, prev, n.Name)
			}
			primaries[n.Shard] = n.Name
		case RoleFollower:
		default:
			return fmt.Errorf("cluster: node %s has unknown role %q", n.Name, n.Role)
		}
	}
	return nil
}

// ParseMap decodes a JSON shard-map config:
//
//	{"shards": 2, "nodes": [
//	  {"name": "w0", "url": "http://10.0.0.5:4800", "role": "worker", "shard": 0},
//	  ...
//	]}
func ParseMap(blob []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("cluster: bad shard map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ParseNodeSpecs builds a shard map from flag-style node specs of the
// form "role:shard:url" (e.g. "worker:0:http://127.0.0.1:4801"). Names
// are derived as role-shard, with -2, -3... suffixes on repeats.
func ParseNodeSpecs(shards int, specs []string) (*Map, error) {
	m := &Map{Shards: shards}
	seen := map[string]int{}
	for _, spec := range specs {
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("cluster: node spec %q is not role:shard:url", spec)
		}
		var shard int
		if _, err := fmt.Sscanf(parts[1], "%d", &shard); err != nil {
			return nil, fmt.Errorf("cluster: node spec %q: bad shard %q", spec, parts[1])
		}
		name := fmt.Sprintf("%s-%d", parts[0], shard)
		seen[name]++
		if seen[name] > 1 {
			name = fmt.Sprintf("%s-%d", name, seen[name])
		}
		m.Nodes = append(m.Nodes, Node{Name: name, URL: parts[2], Role: parts[0], Shard: shard})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
