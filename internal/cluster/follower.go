package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/project"
	"edgepulse/internal/store"
)

// segmentChunk is the apply granularity for shipped segment bytes.
const segmentChunk = 256 << 10

// Follower replicates a primary worker into a read-only standby
// registry: registry metadata and per-project impulse/model files via
// the meta bundle, dataset stores via segment shipping plus journal
// tailing, with a manifest-copy bootstrap whenever the journal cursor
// has fallen behind the primary's snapshot horizon.
type Follower struct {
	reg      *project.Registry
	primary  string
	token    string
	hc       *http.Client
	interval time.Duration
	log      *slog.Logger

	mu       sync.Mutex
	lastErr  string
	rounds   int64
	applied  uint64
	shipped  int64
	bootstps int64

	stop chan struct{}
	done chan struct{}
}

// FollowerConfig configures the sync loop.
type FollowerConfig struct {
	// PrimaryURL is the worker to replicate from.
	PrimaryURL string
	// Token is sent as X-Cluster-Token on replication calls.
	Token string
	// Interval between sync rounds; default 500ms.
	Interval time.Duration
	// Logger; default slog.Default().
	Logger *slog.Logger
	// Client overrides the HTTP client.
	Client *http.Client
}

// NewFollower builds a sync loop feeding a replica registry (opened
// with project.OpenReplica).
func NewFollower(reg *project.Registry, cfg FollowerConfig) (*Follower, error) {
	if !reg.Replica() {
		return nil, fmt.Errorf("cluster: follower requires a replica registry")
	}
	if cfg.PrimaryURL == "" {
		return nil, fmt.Errorf("cluster: follower requires a primary URL")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Follower{
		reg:      reg,
		primary:  cfg.PrimaryURL,
		token:    cfg.Token,
		hc:       hc,
		interval: cfg.Interval,
		log:      logger,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start runs one synchronous sync round, then keeps syncing in the
// background until Stop.
func (f *Follower) Start() {
	f.SyncOnce(context.Background())
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.interval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.SyncOnce(context.Background())
			}
		}
	}()
}

// Stop halts the loop.
func (f *Follower) Stop() {
	close(f.stop)
	<-f.done
}

// LastError returns the most recent round's failure ("" when clean).
func (f *Follower) LastError() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// SyncOnce performs one full replication round: meta bundle first (so
// new projects exist locally before their datasets ship), then every
// project's segments and journal. Per-project failures are recorded
// and skipped; the round continues.
func (f *Follower) SyncOnce(ctx context.Context) error {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		f.log.Warn("follower sync", "err", err)
	}

	if err := f.syncMeta(ctx); err != nil {
		fail(fmt.Errorf("meta: %w", err))
	} else {
		for _, p := range f.reg.Projects() {
			if err := f.syncProject(ctx, p); err != nil {
				fail(fmt.Errorf("project %d: %w", p.ID, err))
			}
		}
	}

	f.mu.Lock()
	f.rounds++
	if firstErr != nil {
		f.lastErr = firstErr.Error()
	} else {
		f.lastErr = ""
	}
	f.mu.Unlock()
	return firstErr
}

// syncMeta pulls the registry blob and per-project impulse/model files.
func (f *Follower) syncMeta(ctx context.Context) error {
	var meta v1.ClusterMetaResponse
	if err := f.getJSON(ctx, "/cluster/replication/meta", &meta); err != nil {
		return err
	}
	bundle := project.MetaBundle{Registry: meta.Registry}
	for _, pm := range meta.Projects {
		bundle.Projects = append(bundle.Projects, project.ProjectMeta{
			ID: pm.ID, Impulse: pm.Impulse, Model: pm.Model, QModel: pm.QModel,
		})
	}
	return f.reg.ApplyMeta(bundle)
}

// syncProject ships missing committed segment bytes, then tails the
// journal. A 409 from the journal endpoint means the cursor is behind
// the primary's snapshot horizon: bootstrap from the manifest.
func (f *Follower) syncProject(ctx context.Context, p *project.Project) error {
	st := p.Store()
	if st == nil {
		return fmt.Errorf("no store")
	}
	var remote v1.ReplicationStateResponse
	if err := f.getJSON(ctx, f.projPath(p.ID, "state"), &remote); err != nil {
		return err
	}
	cursor := st.Committed()
	if cursor > remote.Version {
		// The primary lost history (wiped and re-created); start over.
		return f.bootstrap(ctx, p.ID)
	}
	if cursor == remote.Version && !f.segmentsBehind(st, remote) {
		return nil
	}

	if err := f.shipSegments(ctx, p.ID, st, remote); err != nil {
		return err
	}

	var journal v1.ReplicationJournalResponse
	err := f.getJSON(ctx, f.projPath(p.ID, "journal")+
		"?since="+strconv.FormatUint(cursor, 10)+
		"&upto="+strconv.FormatUint(remote.Version, 10), &journal)
	if isConflict(err) {
		f.log.Info("follower behind snapshot horizon, bootstrapping", "project", p.ID)
		return f.bootstrap(ctx, p.ID)
	}
	if err != nil {
		return err
	}
	if len(journal.Frames) == 0 {
		return nil
	}
	applied, err := st.ApplyJournalFrames(journal.Frames)
	if err != nil {
		return fmt.Errorf("applying journal: %w", err)
	}
	f.mu.Lock()
	f.applied = applied
	f.mu.Unlock()
	return p.RefreshDataset()
}

func (f *Follower) segmentsBehind(st *store.Store, remote v1.ReplicationStateResponse) bool {
	local, err := st.ReplicationState()
	if err != nil {
		return true
	}
	sizes := make(map[int]int64, len(local.Segments))
	for _, s := range local.Segments {
		sizes[s.Index] = s.Size
	}
	for _, s := range remote.Segments {
		if sizes[s.Index] < s.Size {
			return true
		}
	}
	return false
}

// shipSegments pulls each remote segment's committed bytes past the
// local size and applies them in order.
func (f *Follower) shipSegments(ctx context.Context, id int, st *store.Store, remote v1.ReplicationStateResponse) error {
	local, err := st.ReplicationState()
	if err != nil {
		return err
	}
	sizes := make(map[int]int64, len(local.Segments))
	for _, s := range local.Segments {
		sizes[s.Index] = s.Size
	}
	for _, seg := range remote.Segments {
		from := sizes[seg.Index]
		if from >= seg.Size {
			continue
		}
		body, err := f.getStream(ctx, f.projPath(id, "segments/"+strconv.Itoa(seg.Index))+
			"?from="+strconv.FormatInt(from, 10))
		if err != nil {
			return err
		}
		err = applyStream(body, seg.Size-from, func(b []byte) error {
			if aerr := st.ApplySegmentChunk(seg.Index, from, b); aerr != nil {
				return aerr
			}
			from += int64(len(b))
			return nil
		})
		body.Close()
		if err != nil {
			return fmt.Errorf("segment %d: %w", seg.Index, err)
		}
		f.mu.Lock()
		f.shipped += seg.Size - sizes[seg.Index]
		f.mu.Unlock()
	}
	return nil
}

// bootstrap rebuilds the project's replica store from scratch: fetch
// the primary's manifest, reset the local dataset directory, lay the
// manifest down, copy every segment in full, and reopen. The next sync
// round tails the journal from the manifest's version.
func (f *Follower) bootstrap(ctx context.Context, id int) error {
	var manifest v1.ReplicationManifestResponse
	if err := f.getJSON(ctx, f.projPath(id, "manifest"), &manifest); err != nil {
		return err
	}
	// State fetched after the manifest, so its segment list covers every
	// byte the manifest references (segments only grow).
	var remote v1.ReplicationStateResponse
	if err := f.getJSON(ctx, f.projPath(id, "state"), &remote); err != nil {
		return err
	}
	if err := f.reg.ResetReplicaDataset(id); err != nil {
		return err
	}
	dir := f.reg.ReplicaDatasetDir(id)
	if err := store.PrepareBootstrap(dir, manifest.Manifest); err != nil {
		return err
	}
	for _, seg := range remote.Segments {
		body, err := f.getStream(ctx, f.projPath(id, "segments/"+strconv.Itoa(seg.Index))+"?from=0")
		if err != nil {
			return err
		}
		err = copyToFile(store.SegmentPath(dir, seg.Index), body)
		body.Close()
		if err != nil {
			return fmt.Errorf("bootstrap segment %d: %w", seg.Index, err)
		}
	}
	f.mu.Lock()
	f.bootstps++
	f.mu.Unlock()
	return f.reg.ReopenReplicaDataset(id)
}

// --- transport helpers ---

func (f *Follower) projPath(id int, leaf string) string {
	return "/cluster/replication/projects/" + strconv.Itoa(id) + "/" + leaf
}

// apiError carries a non-2xx replication response.
type apiError struct {
	status int
	code   string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("replication endpoint: status %d (%s)", e.status, e.code)
}

func isConflict(err error) bool {
	ae, ok := err.(*apiError)
	return ok && ae.status == http.StatusConflict
}

func (f *Follower) getJSON(ctx context.Context, path string, out any) error {
	body, err := f.getStream(ctx, path)
	if err != nil {
		return err
	}
	defer body.Close()
	blob, err := io.ReadAll(io.LimitReader(body, 64<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, out)
}

func (f *Follower) getStream(ctx context.Context, path string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+v1.Prefix+path, nil)
	if err != nil {
		return nil, err
	}
	if f.token != "" {
		req.Header.Set(api.ClusterTokenHeader, f.token)
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var envelope v1.ErrorResponse
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		json.Unmarshal(blob, &envelope)
		return nil, &apiError{status: resp.StatusCode, code: envelope.Error.Code}
	}
	return resp.Body, nil
}

// applyStream feeds up to want bytes from r to apply in bounded chunks.
func applyStream(r io.Reader, want int64, apply func([]byte) error) error {
	buf := make([]byte, segmentChunk)
	var got int64
	for got < want {
		n := int64(len(buf))
		if want-got < n {
			n = want - got
		}
		nr, err := io.ReadFull(r, buf[:n])
		if nr > 0 {
			if aerr := apply(buf[:nr]); aerr != nil {
				return aerr
			}
			got += int64(nr)
		}
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			// The primary served fewer bytes than the state promised —
			// stale state snapshot; the next round retries.
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func copyToFile(path string, r io.Reader) error {
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(fh, r); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
