package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
)

// Health polls every node's readiness endpoint and cluster identity on
// a fixed interval, so routing decisions read cached state instead of
// probing on the request path.
type Health struct {
	m        *Map
	hc       *http.Client
	token    string
	interval time.Duration

	mu    sync.RWMutex
	nodes map[string]*NodeState

	stop chan struct{}
	done chan struct{}
}

// NodeState is the last observed condition of one node.
type NodeState struct {
	Ready    bool
	Draining bool
	Probes   map[string]string
	// Projects maps project ID to the node's committed store version,
	// from GET /cluster/node; the gateway derives replication lag from
	// the primary/follower difference.
	Projects map[int]uint64
	// Err is the last poll failure, empty when the node answered.
	Err     string
	Checked time.Time
}

// HealthConfig configures the poller.
type HealthConfig struct {
	// Interval between poll rounds; default 1s.
	Interval time.Duration
	// Token is sent as X-Cluster-Token on /cluster/node probes.
	Token string
	// Client overrides the probe HTTP client.
	Client *http.Client
}

// NewHealth builds a tracker for the map's nodes. Call Start to begin
// polling and Stop to halt it.
func NewHealth(m *Map, cfg HealthConfig) *Health {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 3 * time.Second}
	}
	h := &Health{
		m:        m,
		hc:       hc,
		token:    cfg.Token,
		interval: cfg.Interval,
		nodes:    make(map[string]*NodeState, len(m.Nodes)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range m.Nodes {
		h.nodes[m.Nodes[i].Name] = &NodeState{Err: "not yet polled"}
	}
	return h
}

// Start runs one synchronous poll round (so routing works immediately)
// then polls in the background until Stop.
func (h *Health) Start() {
	h.pollAll()
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.pollAll()
			}
		}
	}()
}

// Stop halts background polling.
func (h *Health) Stop() {
	close(h.stop)
	<-h.done
}

func (h *Health) pollAll() {
	var wg sync.WaitGroup
	for i := range h.m.Nodes {
		n := &h.m.Nodes[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := h.poll(n)
			h.mu.Lock()
			h.nodes[n.Name] = st
			h.mu.Unlock()
		}()
	}
	wg.Wait()
}

func (h *Health) poll(n *Node) *NodeState {
	st := &NodeState{Checked: time.Now()}
	ctx, cancel := context.WithTimeout(context.Background(), h.interval*4+time.Second)
	defer cancel()

	var ready v1.ReadyResponse
	if err := h.getJSON(ctx, n.URL+v1.Prefix+"/readyz", &ready, false); err != nil {
		st.Err = err.Error()
		return st
	}
	st.Ready = ready.Ready
	st.Draining = ready.Draining
	st.Probes = ready.Probes

	var id v1.ClusterNodeResponse
	if err := h.getJSON(ctx, n.URL+v1.Prefix+"/cluster/node", &id, true); err != nil {
		st.Err = err.Error()
		st.Ready = false
		return st
	}
	st.Projects = id.Projects
	if id.Shard != n.Shard || id.Role != n.Role {
		st.Err = fmt.Sprintf("identity mismatch: node reports %s/shard %d, map says %s/shard %d",
			id.Role, id.Shard, n.Role, n.Shard)
		st.Ready = false
	}
	return st
}

// getJSON fetches a JSON body, tolerating non-2xx statuses that still
// carry a decodable body (readyz answers 503 while draining).
func (h *Health) getJSON(ctx context.Context, url string, out any, withToken bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if withToken && h.token != "" {
		req.Header.Set(api.ClusterTokenHeader, h.token)
	}
	resp, err := h.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: status %d: %w", url, resp.StatusCode, err)
	}
	return nil
}

// State returns the last observed state of a node by name.
func (h *Health) State(name string) NodeState {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if st, ok := h.nodes[name]; ok {
		return *st
	}
	return NodeState{Err: "unknown node"}
}

// ReadyPrimary returns the shard's primary if it is live, else nil.
func (h *Health) ReadyPrimary(shard int) *Node {
	p := h.m.Primary(shard)
	if p == nil {
		return nil
	}
	if h.State(p.Name).Ready {
		return p
	}
	return nil
}

// ServeRead picks the node to answer a read for a shard: the primary
// when live, else the first live follower, else nil.
func (h *Health) ServeRead(shard int) *Node {
	if p := h.ReadyPrimary(shard); p != nil {
		return p
	}
	for _, f := range h.m.Followers(shard) {
		if h.State(f.Name).Ready {
			return f
		}
	}
	return nil
}

// ReadyPrimaries lists every shard whose primary is live, in shard
// order; used for fan-out and round-robin placement.
func (h *Health) ReadyPrimaries() []*Node {
	var out []*Node
	for s := 0; s < h.m.Shards; s++ {
		if p := h.ReadyPrimary(s); p != nil {
			out = append(out, p)
		}
	}
	return out
}
