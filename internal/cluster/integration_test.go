package cluster

// In-package integration suite: real workers (durable registries +
// full API servers over httptest), a follower replicating shard 0, and
// the gateway in front — the same topology cmd/ei-gateway and
// ei-daemon -worker/-follow assemble in production.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

const testToken = "cluster-secret"

// chaos is a settable readiness-probe failure, the test's stand-in for
// a dying worker.
type chaos struct {
	mu  sync.Mutex
	err error
}

func (c *chaos) set(err error) {
	c.mu.Lock()
	c.err = err
	c.mu.Unlock()
}

func (c *chaos) probe() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// testNode is one booted cluster member.
type testNode struct {
	name  string
	reg   *project.Registry
	srv   *httptest.Server
	chaos *chaos
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startWorker boots a durable shard-owning worker.
func startWorker(t *testing.T, shard, shards int) *testNode {
	t.Helper()
	reg, err := project.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	reg.SetProjectIDStride(shard, shards)
	return startNode(t, reg, fmt.Sprintf("worker-%d", shard), RoleWorker, shard, shards)
}

// startFollower boots a replica node plus its sync loop (not started).
func startFollower(t *testing.T, primary *testNode, shard, shards int) (*testNode, *Follower) {
	t.Helper()
	reg, err := project.OpenReplica(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	n := startNode(t, reg, fmt.Sprintf("follower-%d", shard), RoleFollower, shard, shards)
	f, err := NewFollower(reg, FollowerConfig{
		PrimaryURL: primary.srv.URL,
		Token:      testToken,
		Interval:   25 * time.Millisecond,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, f
}

func startNode(t *testing.T, reg *project.Registry, name, role string, shard, shards int) *testNode {
	t.Helper()
	ch := &chaos{}
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 2, ScaleInterval: 5 * time.Millisecond})
	t.Cleanup(sched.Shutdown)
	server := api.NewServer(reg, sched,
		api.WithLogger(quietLogger()),
		api.WithClusterNode(name, role, shard, shards),
		api.WithClusterToken(testToken),
		api.WithReadinessProbe("chaos", ch.probe),
	)
	t.Cleanup(server.Close)
	srv := httptest.NewServer(server.Handler())
	t.Cleanup(srv.Close)
	return &testNode{name: name, reg: reg, srv: srv, chaos: ch}
}

// startGateway fronts the nodes with a fast-polling gateway.
func startGateway(t *testing.T, m *Map) (*Gateway, *httptest.Server) {
	t.Helper()
	gw := NewGateway(m, GatewayConfig{
		Token:        testToken,
		PollInterval: 25 * time.Millisecond,
		Logger:       quietLogger(),
	})
	gw.Start()
	t.Cleanup(gw.Stop)
	srv := httptest.NewServer(gw)
	t.Cleanup(srv.Close)
	return gw, srv
}

// signedDoc builds a unique tiny acquisition document.
func signedDoc(t *testing.T, hmacKey string, seq int) []byte {
	t.Helper()
	values := make([][]float64, 8)
	for i := range values {
		values[i] = []float64{float64(seq*8 + i)}
	}
	doc, err := ingest.SignJSON(ingest.Payload{
		DeviceName: "sim-01", DeviceType: "NANO33BLE",
		IntervalMS: 1000.0 / 100.0,
		Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
		Values:     values,
	}, hmacKey, 1670000000+int64(seq))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func uploadN(t *testing.T, c *client.Client, proj *v1.CreateProjectResponse, n, base int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := c.UploadSample(ctx, proj.ID, client.UploadParams{
			Label: "yes", Name: fmt.Sprintf("s-%d", base+i), Format: "acquisition",
		}, signedDoc(t, proj.HMACKey, base+i)); err != nil {
			t.Fatalf("upload %d: %v", base+i, err)
		}
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// datasetVersion reads a project's dataset content hash on a node.
func datasetVersion(n *testNode, id int) string {
	p, err := n.reg.GetProject(id)
	if err != nil {
		return "err:" + err.Error()
	}
	return p.Dataset().Version()
}

// rawGet issues a GET with the API key, returning the response.
func rawGet(t *testing.T, url, apiKey, requestID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("x-api-key", apiKey)
	if requestID != "" {
		req.Header.Set(api.RequestIDHeader, requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClusterLifecycle is the tentpole proof: cross-shard placement,
// replication, request-ID preservation, outage failover with write
// shedding, bounded recovery, and the status/metrics surfaces.
func TestClusterLifecycle(t *testing.T) {
	w0 := startWorker(t, 0, 2)
	w1 := startWorker(t, 1, 2)
	f0, follower := startFollower(t, w0, 0, 2)
	m := &Map{Shards: 2, Nodes: []Node{
		{Name: w0.name, URL: w0.srv.URL, Role: RoleWorker, Shard: 0},
		{Name: w1.name, URL: w1.srv.URL, Role: RoleWorker, Shard: 1},
		{Name: f0.name, URL: f0.srv.URL, Role: RoleFollower, Shard: 0},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	gw, gwSrv := startGateway(t, m)
	follower.Start()
	t.Cleanup(follower.Stop)

	ctx := context.Background()
	c := client.New(gwSrv.URL)
	user, err := c.CreateUser(ctx, "cluster-bot")
	if err != nil {
		t.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)

	// The admit broadcast lands the user on both workers.
	for _, w := range []*testNode{w0, w1} {
		if _, err := w.reg.Authenticate(user.APIKey); err != nil {
			t.Fatalf("user not admitted on %s: %v", w.name, err)
		}
	}

	// Two creations round-robin across the two primaries; ID striding
	// puts them on different shards.
	pa, err := c.CreateProject(ctx, "proj-a")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.CreateProject(ctx, "proj-b")
	if err != nil {
		t.Fatal(err)
	}
	if pa.ID%2 == pb.ID%2 {
		t.Fatalf("projects landed on one shard: ids %d, %d", pa.ID, pb.ID)
	}
	p0, p1 := pa, pb // p0 on shard 0, p1 on shard 1
	if pa.ID%2 != 0 {
		p0, p1 = pb, pa
	}

	// Uploads through the gateway land in the owning worker's store —
	// and only there.
	uploadN(t, c, p0, 6, 0)
	uploadN(t, c, p1, 4, 100)
	if p, err := w0.reg.GetProject(p0.ID); err != nil || p.Dataset().Len() != 6 {
		t.Fatalf("worker-0 store for project %d: %v", p0.ID, err)
	}
	if p, err := w1.reg.GetProject(p1.ID); err != nil || p.Dataset().Len() != 4 {
		t.Fatalf("worker-1 store for project %d: %v", p1.ID, err)
	}
	if _, err := w0.reg.GetProject(p1.ID); err == nil {
		t.Fatalf("project %d leaked onto worker-0", p1.ID)
	}
	if _, err := w1.reg.GetProject(p0.ID); err == nil {
		t.Fatalf("project %d leaked onto worker-1", p0.ID)
	}

	// Fan-out listing merges both shards, re-paginated at the gateway.
	projs, err := c.Projects(ctx, client.Page{})
	if err != nil {
		t.Fatal(err)
	}
	if len(projs.Projects) != 2 || projs.Total != 2 {
		t.Fatalf("merged listing: %+v", projs)
	}
	window, err := c.Projects(ctx, client.Page{Limit: 1, Offset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(window.Projects) != 1 || window.Total != 2 || window.Offset != 1 {
		t.Fatalf("paginated listing: %+v", window)
	}

	// X-Request-Id: minted when absent, preserved verbatim end-to-end.
	resp := rawGet(t, gwSrv.URL+"/api/v1/projects/"+fmt.Sprint(p0.ID), user.APIKey, "")
	if resp.Header.Get(api.RequestIDHeader) == "" {
		t.Fatal("gateway did not mint a request id")
	}
	if got := resp.Header.Get(NodeHeader); got != w0.name {
		t.Fatalf("project %d served by %q, want %q", p0.ID, got, w0.name)
	}
	resp.Body.Close()
	resp = rawGet(t, gwSrv.URL+"/api/v1/projects/"+fmt.Sprint(p1.ID), user.APIKey, "trace-me-42")
	if got := resp.Header.Get(api.RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("request id rewritten to %q", got)
	}
	if got := resp.Header.Get(NodeHeader); got != w1.name {
		t.Fatalf("project %d served by %q, want %q", p1.ID, got, w1.name)
	}
	resp.Body.Close()

	// Replication: one explicit sync round brings the follower's
	// dataset to the primary's exact content hash — deterministic, no
	// interval polling.
	if err := follower.SyncOnce(ctx); err != nil {
		t.Fatalf("follower sync: %v", err)
	}
	if got, want := datasetVersion(f0, p0.ID), datasetVersion(w0, p0.ID); got != want {
		t.Fatalf("follower converged to %s, primary at %s", got, want)
	}

	// Outage: worker-0's readiness probe goes red. The gateway fails
	// reads over to the follower and sheds writes with 503 + no_shard.
	w0.chaos.set(errors.New("injected outage"))
	waitFor(t, 2*time.Second, "gateway to mark worker-0 unready", func() bool {
		return !gw.Health().State(w0.name).Ready
	})
	resp = rawGet(t, gwSrv.URL+"/api/v1/projects/"+fmt.Sprint(p0.ID), user.APIKey, "")
	if resp.StatusCode != http.StatusOK || resp.Header.Get(NodeHeader) != f0.name {
		t.Fatalf("read during outage: status %d via %q", resp.StatusCode, resp.Header.Get(NodeHeader))
	}
	resp.Body.Close()
	_, err = c.UploadSample(ctx, p0.ID, client.UploadParams{
		Label: "yes", Name: "shed-me", Format: "acquisition",
	}, signedDoc(t, p0.HMACKey, 9000))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable ||
		apiErr.Code != v1.CodeNoShard || apiErr.RetryAfter <= 0 {
		t.Fatalf("write during outage: %v", err)
	}
	// The other shard is unaffected.
	uploadN(t, c, p1, 1, 200)

	// Recovery: probe green again, writes resume within 5s.
	w0.chaos.set(nil)
	waitFor(t, 5*time.Second, "shard 0 write recovery", func() bool {
		_, err := c.UploadSample(context.Background(), p0.ID, client.UploadParams{
			Label: "yes", Name: "recovered", Format: "acquisition",
		}, signedDoc(t, p0.HMACKey, 9001))
		return err == nil
	})

	// Cluster status reflects the topology and shows converged lag.
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("status shards: %+v", st.Shards)
	}
	if st.Shards[0].Primary.Name != w0.name || !st.Shards[0].Primary.Ready {
		t.Fatalf("shard 0 primary: %+v", st.Shards[0].Primary)
	}
	if len(st.Shards[0].Followers) != 1 || st.Shards[0].Followers[0].Name != f0.name {
		t.Fatalf("shard 0 followers: %+v", st.Shards[0].Followers)
	}
}

// TestGatewayOperationalSurface covers the gateway's own endpoints:
// readyz aggregation, metrics (JSON + Prometheus), devices/blocks
// passthrough, and the error paths.
func TestGatewayOperationalSurface(t *testing.T) {
	w0 := startWorker(t, 0, 1)
	m := &Map{Shards: 1, Nodes: []Node{
		{Name: w0.name, URL: w0.srv.URL, Role: RoleWorker, Shard: 0},
	}}
	gw, gwSrv := startGateway(t, m)

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(gwSrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	if resp, _ := get("/api/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp, body := get("/api/v1/readyz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"shard-0":"ok"`) {
		t.Fatalf("readyz: %d %s", resp.StatusCode, body)
	}
	// The legacy /api alias routes too.
	if resp, _ := get("/api/devices"); resp.StatusCode != http.StatusOK {
		t.Fatalf("devices passthrough: %d", resp.StatusCode)
	}
	if resp, _ := get("/api/v1/blocks"); resp.StatusCode != http.StatusOK {
		t.Fatalf("blocks passthrough: %d", resp.StatusCode)
	}
	if resp, body := get("/api/v1/metrics"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"routes"`) {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/api/v1/metrics?format=prometheus"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "# TYPE ei_requests_total counter") {
		t.Fatalf("prometheus metrics: %d %s", resp.StatusCode, body)
	} else if ct := resp.Header.Get("Content-Type"); ct != api.PrometheusContentType {
		t.Fatalf("prometheus content type: %q", ct)
	}
	if resp, _ := get("/api/v1/projects/notanumber"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad project id: %d", resp.StatusCode)
	}
	if resp, _ := get("/api/v1/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d", resp.StatusCode)
	}
	if resp, _ := get("/outside"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-API path: %d", resp.StatusCode)
	}
	// An unauthenticated job lookup surfaces the worker's 401 untouched.
	if resp, body := get("/api/v1/jobs/job-999"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated job probe: %d %s", resp.StatusCode, body)
	}
	// An authenticated lookup for a job no shard owns is the gateway's
	// own 404 after probing every primary.
	user, err := client.New(w0.srv.URL).CreateUser(context.Background(), "ops-bot")
	if err != nil {
		t.Fatal(err)
	}
	resp0 := rawGet(t, gwSrv.URL+"/api/v1/jobs/job-999", user.APIKey, "")
	body0, _ := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusNotFound || !strings.Contains(string(body0), "any shard") {
		t.Fatalf("unknown job: %d %s", resp0.StatusCode, body0)
	}

	// With the only worker dead, readyz degrades and project paths shed.
	w0.chaos.set(errors.New("down"))
	waitFor(t, 2*time.Second, "worker marked unready", func() bool {
		return !gw.Health().State(w0.name).Ready
	})
	if resp, _ := get("/api/v1/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: %d", resp.StatusCode)
	}
	resp, body := get("/api/v1/projects/1")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, v1.CodeNoShard) {
		t.Fatalf("read with no node: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if resp, _ := get("/api/v1/devices"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("passthrough with dead fleet: %d", resp.StatusCode)
	}
	post := func(path, payload string) *http.Response {
		t.Helper()
		resp, err := http.Post(gwSrv.URL+path, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("/api/v1/users", `{"name":"x"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create user with dead fleet: %d", resp.StatusCode)
	}
	if resp := post("/api/v1/projects", `{"name":"x"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create project with dead fleet: %d", resp.StatusCode)
	}
	resp1 := rawGet(t, gwSrv.URL+"/api/v1/jobs/job-1", user.APIKey, "")
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job probe with dead fleet: %d", resp1.StatusCode)
	}
}

// TestHealthEdgeCases covers identity mismatches, unknown and
// unreachable nodes, and the status view of a primary-less shard.
func TestHealthEdgeCases(t *testing.T) {
	w0 := startWorker(t, 0, 2)
	// The map claims this node serves shard 1 as a follower; the node's
	// own identity says worker/shard 0 — the poll must refuse to route
	// to a node that disagrees with the map.
	m := &Map{Shards: 2, Nodes: []Node{
		{Name: "mislabeled", URL: w0.srv.URL, Role: RoleFollower, Shard: 1},
		{Name: "unreachable", URL: "http://127.0.0.1:1", Role: RoleWorker, Shard: 0},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	h := NewHealth(m, HealthConfig{Interval: 20 * time.Millisecond, Token: testToken})
	h.Start()
	defer h.Stop()

	if st := h.State("mislabeled"); st.Ready || !strings.Contains(st.Err, "identity mismatch") {
		t.Fatalf("mislabeled node state: %+v", st)
	}
	if st := h.State("unreachable"); st.Ready || st.Err == "" {
		t.Fatalf("unreachable node state: %+v", st)
	}
	if st := h.State("ghost"); st.Err != "unknown node" {
		t.Fatalf("ghost node state: %+v", st)
	}
	if n := h.ServeRead(1); n != nil {
		t.Fatalf("ServeRead routed to unhealthy node %+v", n)
	}

	// A gateway over this map reports the shard-1 hole in its status.
	_, gwSrv := startGateway(t, m)
	st, err := client.New(gwSrv.URL).ClusterStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards[1].Primary.Error != "no primary in shard map" {
		t.Fatalf("primary-less shard status: %+v", st.Shards[1].Primary)
	}
}

// TestFollowerConstruction covers the constructor contracts and the
// unreachable-primary error path.
func TestFollowerConstruction(t *testing.T) {
	normal, err := project.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { normal.Close() })
	if _, err := NewFollower(normal, FollowerConfig{PrimaryURL: "http://x"}); err == nil {
		t.Error("expected error for non-replica registry")
	}

	replica, err := project.OpenReplica(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	if _, err := NewFollower(replica, FollowerConfig{}); err == nil {
		t.Error("expected error for missing primary URL")
	}
	f, err := NewFollower(replica, FollowerConfig{PrimaryURL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err == nil {
		t.Error("expected sync failure against unreachable primary")
	}
	if f.LastError() == "" {
		t.Error("LastError empty after failed round")
	}
}

func TestAPIErrorString(t *testing.T) {
	e := &apiError{status: 409, code: "conflict"}
	if !strings.Contains(e.Error(), "409") || !strings.Contains(e.Error(), "conflict") {
		t.Fatalf("apiError rendering: %s", e.Error())
	}
	if isConflict(e) != true || isConflict(errors.New("other")) {
		t.Fatal("isConflict misclassified")
	}
}

// TestFollowerBootstrap forces the snapshot-horizon path: the primary
// compacts while the follower is behind, so the incremental journal
// tail 409s and the follower rebuilds from the manifest — and still
// converges to the same content hash.
func TestFollowerBootstrap(t *testing.T) {
	w0 := startWorker(t, 0, 1)
	f0, follower := startFollower(t, w0, 0, 1)
	ctx := context.Background()

	c := client.New(w0.srv.URL)
	user, err := c.CreateUser(ctx, "boot-bot")
	if err != nil {
		t.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "boot-proj")
	if err != nil {
		t.Fatal(err)
	}
	uploadN(t, c, proj, 5, 0)

	// First sync: plain incremental replication from version 0.
	if err := follower.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := datasetVersion(f0, proj.ID), datasetVersion(w0, proj.ID); got != want {
		t.Fatalf("after incremental sync: follower %s, primary %s", got, want)
	}
	if follower.bootstps != 0 {
		t.Fatalf("incremental sync bootstrapped %d times", follower.bootstps)
	}

	// The follower misses some writes, then the primary compacts its
	// journal: the follower's cursor is now behind the snapshot horizon.
	uploadN(t, c, proj, 5, 50)
	p, err := w0.reg.GetProject(proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Store().Snapshot(); err != nil {
		t.Fatal(err)
	}
	uploadN(t, c, proj, 3, 80)

	if err := follower.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if follower.bootstps == 0 {
		t.Fatal("expected a manifest bootstrap after primary compaction")
	}
	// Bootstrap leaves the store at the manifest version; the next round
	// tails the post-snapshot journal to full convergence.
	if err := follower.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := datasetVersion(f0, proj.ID), datasetVersion(w0, proj.ID); got != want {
		t.Fatalf("after bootstrap: follower %s, primary %s", got, want)
	}
	if follower.LastError() != "" {
		t.Fatalf("follower error: %s", follower.LastError())
	}
}
