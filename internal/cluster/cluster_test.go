package cluster

import (
	"strings"
	"testing"
)

func TestParseMap(t *testing.T) {
	m, err := ParseMap([]byte(`{"shards": 2, "nodes": [
		{"name": "w0", "url": "http://a", "role": "worker", "shard": 0},
		{"name": "w1", "url": "http://b", "role": "worker", "shard": 1},
		{"name": "f0", "url": "http://c", "role": "follower", "shard": 0}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards != 2 || len(m.Nodes) != 3 {
		t.Fatalf("parsed %+v", m)
	}
	if p := m.Primary(0); p == nil || p.Name != "w0" {
		t.Fatalf("primary(0) = %+v", p)
	}
	if p := m.Primary(1); p == nil || p.Name != "w1" {
		t.Fatalf("primary(1) = %+v", p)
	}
	if fs := m.Followers(0); len(fs) != 1 || fs[0].Name != "f0" {
		t.Fatalf("followers(0) = %+v", fs)
	}
	if fs := m.Followers(1); len(fs) != 0 {
		t.Fatalf("followers(1) = %+v", fs)
	}
}

func TestParseMapRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"no shards":     `{"shards": 0, "nodes": [{"name":"a","url":"u","role":"worker","shard":0}]}`,
		"no nodes":      `{"shards": 1, "nodes": []}`,
		"unnamed":       `{"shards": 1, "nodes": [{"url":"u","role":"worker","shard":0}]}`,
		"dup name":      `{"shards": 1, "nodes": [{"name":"a","url":"u","role":"worker","shard":0},{"name":"a","url":"u","role":"follower","shard":0}]}`,
		"no url":        `{"shards": 1, "nodes": [{"name":"a","role":"worker","shard":0}]}`,
		"shard range":   `{"shards": 1, "nodes": [{"name":"a","url":"u","role":"worker","shard":1}]}`,
		"bad role":      `{"shards": 1, "nodes": [{"name":"a","url":"u","role":"observer","shard":0}]}`,
		"two primaries": `{"shards": 1, "nodes": [{"name":"a","url":"u","role":"worker","shard":0},{"name":"b","url":"u","role":"worker","shard":0}]}`,
	}
	for label, blob := range cases {
		if _, err := ParseMap([]byte(blob)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestParseNodeSpecs(t *testing.T) {
	m, err := ParseNodeSpecs(2, []string{
		"worker:0:http://a", "worker:1:http://b", "follower:0:http://c", "follower:0:http://d",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 4 {
		t.Fatalf("nodes: %+v", m.Nodes)
	}
	// Derived names are unique even for two followers of one shard.
	if m.Nodes[2].Name == m.Nodes[3].Name {
		t.Fatalf("duplicate derived names: %+v", m.Nodes)
	}
	if !strings.HasPrefix(m.Nodes[0].Name, "worker-0") {
		t.Fatalf("derived name %q", m.Nodes[0].Name)
	}

	if _, err := ParseNodeSpecs(1, []string{"worker:0"}); err == nil {
		t.Error("expected error for malformed spec")
	}
	if _, err := ParseNodeSpecs(1, []string{"worker:x:http://a"}); err == nil {
		t.Error("expected error for non-numeric shard")
	}
	if _, err := ParseNodeSpecs(0, []string{"worker:0:http://a"}); err == nil {
		t.Error("expected error for zero shard count")
	}
}

func TestShardFor(t *testing.T) {
	m := &Map{Shards: 3}
	for id, want := range map[int]int{0: 0, 1: 1, 5: 2, 6: 0, -1: 2} {
		if got := m.ShardFor(id); got != want {
			t.Errorf("ShardFor(%d) = %d, want %d", id, got, want)
		}
	}
}
