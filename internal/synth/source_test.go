package synth

import (
	"testing"
)

// TestSourceDeterministicAndBitwise: chunked reads reconstruct the
// one-shot stream signal exactly, and the same seed yields the same
// frames on every construction.
func TestSourceDeterministicAndBitwise(t *testing.T) {
	oneShot, events, err := Stream("yes", 4000, 6, 2, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	src, srcEvents, err := NewStreamSource("yes", 4000, 6, 2, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcEvents) != len(events) || srcEvents[0] != events[0] {
		t.Fatalf("source events %+v != stream events %+v", srcEvents, events)
	}
	if src.Rate() != 4000 || src.Axes() != 1 {
		t.Fatalf("rate %d axes %d", src.Rate(), src.Axes())
	}
	// Drain in rotating uneven chunk sizes; the concatenation must be
	// bit-identical to the one-shot signal.
	sizes := []int{333, 1000, 1, 7919, 500}
	var streamed []float32
	for i := 0; src.Remaining() > 0; i++ {
		chunk := src.Next(sizes[i%len(sizes)])
		if chunk == nil {
			t.Fatal("nil chunk before exhaustion")
		}
		streamed = append(streamed, chunk...)
	}
	if len(streamed) != len(oneShot.Data) {
		t.Fatalf("streamed %d samples, one-shot %d", len(streamed), len(oneShot.Data))
	}
	for i := range streamed {
		if streamed[i] != oneShot.Data[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, streamed[i], oneShot.Data[i])
		}
	}
	if src.Next(100) != nil {
		t.Fatal("exhausted source returned data")
	}

	// Windows reconstructed from the streamed copy match one-shot
	// extraction bitwise at every overlapping stride position.
	window, stride := 1000, 250
	for start := 0; start+window <= len(streamed); start += stride {
		for i := 0; i < window; i++ {
			if streamed[start+i] != oneShot.Data[start+i] {
				t.Fatalf("window at %d sample %d differs", start, i)
			}
		}
	}
}

// TestSourceMultiAxisAndLoop: a 3-axis vibration source yields
// axes-interleaved chunks, and a looping source wraps instead of ending.
func TestSourceMultiAxisAndLoop(t *testing.T) {
	src := NewVibrationSource(1000, 1, false, 5)
	if src.Axes() != 3 {
		t.Fatalf("axes = %d", src.Axes())
	}
	chunk := src.Next(10)
	if len(chunk) != 30 {
		t.Fatalf("10 frames x 3 axes = %d values", len(chunk))
	}
	// Determinism across constructions.
	again := NewVibrationSource(1000, 1, false, 5).Next(10)
	for i := range chunk {
		if chunk[i] != again[i] {
			t.Fatalf("value %d differs across same-seed sources", i)
		}
	}

	loop := NewSource(NewVibrationSource(1000, 1, false, 5).sig, true)
	total := loop.Remaining()
	loop.Next(total - 1)
	if tail := loop.Next(10); len(tail) != 3 {
		t.Fatalf("tail flush = %d values, want 3 (1 frame)", len(tail))
	}
	wrapped := loop.Next(10)
	if len(wrapped) != 30 {
		t.Fatalf("looping source returned %d values after wrap", len(wrapped))
	}
	fresh := NewVibrationSource(1000, 1, false, 5).Next(10)
	for i := range wrapped {
		if wrapped[i] != fresh[i] {
			t.Fatalf("wrapped value %d differs from start of signal", i)
		}
	}
}
