// Package synth generates the synthetic workloads that stand in for the
// paper's datasets (Google Speech Commands, Visual Wake Words, CIFAR-10,
// and industrial sensor streams) — see DESIGN.md for the substitution
// rationale. Every generator is deterministic for a given seed, and task
// difficulty is tuned so that trained accuracies land in the ranges the
// paper reports.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
)

// keywordSpec defines the formant-like spectral signature of one
// synthetic keyword class.
type keywordSpec struct {
	label    string
	formants []float64 // Hz
	sweep    float64   // Hz/s chirp applied to the first formant
}

// kwsClasses are the synthetic vocabulary: distinct formant stacks per
// word, plus a broadband "noise" class.
var kwsClasses = []keywordSpec{
	{label: "yes", formants: []float64{500, 1800}, sweep: 400},
	{label: "no", formants: []float64{350, 900}, sweep: -250},
	{label: "up", formants: []float64{700, 2400}, sweep: 600},
	{label: "down", formants: []float64{300, 1200, 2800}, sweep: -500},
	{label: "noise", formants: nil},
}

// KWSLabels returns the synthetic keyword vocabulary for nClasses
// (2..5); the last class is always broadband noise.
func KWSLabels(nClasses int) []string {
	if nClasses < 2 {
		nClasses = 2
	}
	if nClasses > len(kwsClasses) {
		nClasses = len(kwsClasses)
	}
	specs := kwsClasses[:nClasses-1]
	out := make([]string, 0, nClasses)
	for _, s := range specs {
		out = append(out, s.label)
	}
	return append(out, "noise")
}

// Keyword synthesizes one utterance of the labeled keyword: formant
// tones with an attack/decay envelope, small random pitch variation, and
// additive noise. rate is the sample rate; seconds the clip length.
func Keyword(label string, rate int, seconds float64, noise float64, rng *rand.Rand) (dsp.Signal, error) {
	var spec *keywordSpec
	for i := range kwsClasses {
		if kwsClasses[i].label == label {
			spec = &kwsClasses[i]
			break
		}
	}
	if spec == nil {
		return dsp.Signal{}, fmt.Errorf("synth: unknown keyword %q", label)
	}
	n := int(seconds * float64(rate))
	out := make([]float32, n)
	if spec.formants == nil {
		// Broadband noise class.
		for i := range out {
			out[i] = float32(rng.NormFloat64() * 0.3)
		}
		return dsp.Signal{Data: out, Rate: rate, Axes: 1}, nil
	}
	// Utterance occupies the middle ~60% of the window.
	start := int(0.2 * float64(n))
	dur := int(0.6 * float64(n))
	pitchJitter := 1 + 0.08*rng.NormFloat64()
	phase := make([]float64, len(spec.formants))
	for i := 0; i < dur; i++ {
		tSec := float64(i) / float64(rate)
		// Attack/decay envelope.
		prog := float64(i) / float64(dur)
		env := math.Sin(math.Pi * prog)
		var v float64
		for f, base := range spec.formants {
			freq := base * pitchJitter
			if f == 0 {
				freq += spec.sweep * tSec
			}
			phase[f] += 2 * math.Pi * freq / float64(rate)
			amp := 1 / float64(f+1)
			v += amp * math.Sin(phase[f])
		}
		out[start+i] = float32(0.4 * env * v)
	}
	for i := range out {
		out[i] += float32(rng.NormFloat64() * noise)
	}
	return dsp.Signal{Data: out, Rate: rate, Axes: 1}, nil
}

// KWSDataset builds a labeled keyword-spotting dataset with perClass
// samples for each of nClasses classes, windowed at `seconds` per clip.
func KWSDataset(nClasses, perClass, rate int, seconds, noise float64, seed int64) (*data.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	labels := KWSLabels(nClasses)
	ds := data.New()
	for _, label := range labels {
		for i := 0; i < perClass; i++ {
			sig, err := Keyword(label, rate, seconds, noise, rng)
			if err != nil {
				return nil, err
			}
			if _, err := ds.Add(&data.Sample{
				Name:   fmt.Sprintf("%s.%04d", label, i),
				Label:  label,
				Signal: sig,
			}); err != nil {
				return nil, err
			}
		}
	}
	ds.Rebalance(0.2)
	return ds, nil
}

// PersonImage synthesizes a "person present" image: a skin-toned head
// over a saturated-clothing torso at a random position on textured
// background. The color saturation is the cue that separates persons from
// the monochrome clutter of NonPersonImage (synthetic stand-in for the
// person/no-person semantic gap). Values are 0-255 RGB.
func PersonImage(size int, rng *rand.Rand) dsp.Signal {
	img := background(size, rng)
	// Head: skin-toned (red-dominant) circle; torso: blue-dominant
	// clothing rectangle below it.
	cx := size/4 + rng.Intn(size/2)
	cy := size/4 + rng.Intn(size/4)
	r := size / 6
	skin := float32(180 + rng.Intn(60))
	drawCircle(img, size, cx, cy, r, skin)
	torsoW := r * 3
	torsoH := size / 2
	cloth := float32(120 + rng.Intn(100))
	drawRectRGB(img, size, cx-torsoW/2, cy+r, torsoW, torsoH,
		cloth*0.3, cloth*0.45, cloth)
	return img
}

// NonPersonImage synthesizes a background-only image with random box
// clutter (furniture-like shapes but no head-torso structure).
func NonPersonImage(size int, rng *rand.Rand) dsp.Signal {
	img := background(size, rng)
	for k := 0; k < 3+rng.Intn(3); k++ {
		w := size/8 + rng.Intn(size/3)
		h := size/10 + rng.Intn(size/6) // wide, flat shapes
		x := rng.Intn(size - w)
		y := rng.Intn(size - h)
		drawRect(img, size, x, y, w, h, float32(rng.Intn(255)))
	}
	return img
}

func background(size int, rng *rand.Rand) dsp.Signal {
	pix := make([]float32, size*size*3)
	base := float32(60 + rng.Intn(120))
	for i := 0; i < size*size; i++ {
		v := base + float32(rng.NormFloat64()*12)
		pix[i*3+0] = clamp255(v)
		pix[i*3+1] = clamp255(v * 0.95)
		pix[i*3+2] = clamp255(v * 1.05)
	}
	return dsp.Signal{Data: pix, Axes: 3, Width: size, Height: size}
}

func clamp255(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

func drawCircle(img dsp.Signal, size, cx, cy, r int, val float32) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			if x < 0 || y < 0 || x >= size || y >= size {
				continue
			}
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				base := (y*size + x) * 3
				img.Data[base] = val
				img.Data[base+1] = val * 0.72
				img.Data[base+2] = val * 0.55
			}
		}
	}
}

// drawRectRGB fills a rectangle with an explicit color.
func drawRectRGB(img dsp.Signal, size, x0, y0, w, h int, r, g, b float32) {
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			if x < 0 || y < 0 || x >= size || y >= size {
				continue
			}
			base := (y*size + x) * 3
			img.Data[base] = clamp255(r)
			img.Data[base+1] = clamp255(g)
			img.Data[base+2] = clamp255(b)
		}
	}
}

func drawRect(img dsp.Signal, size, x0, y0, w, h int, val float32) {
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			if x < 0 || y < 0 || x >= size || y >= size {
				continue
			}
			base := (y*size + x) * 3
			img.Data[base] = val
			img.Data[base+1] = val
			img.Data[base+2] = val
		}
	}
}

// VWWDataset builds a balanced person / no-person image dataset, the
// synthetic stand-in for Visual Wake Words.
func VWWDataset(perClass, size int, seed int64) (*data.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.New()
	for i := 0; i < perClass; i++ {
		if _, err := ds.Add(&data.Sample{
			Name: fmt.Sprintf("person.%04d", i), Label: "person",
			Signal: PersonImage(size, rng),
		}); err != nil {
			return nil, err
		}
		if _, err := ds.Add(&data.Sample{
			Name: fmt.Sprintf("background.%04d", i), Label: "no-person",
			Signal: NonPersonImage(size, rng),
		}); err != nil {
			return nil, err
		}
	}
	ds.Rebalance(0.2)
	return ds, nil
}

// cifarLabels are the synthetic texture classes standing in for CIFAR-10.
var cifarLabels = []string{
	"stripes-h", "stripes-v", "stripes-d", "checker", "dots",
	"gradient-h", "gradient-v", "rings", "solid", "noise",
}

// CIFARLabels returns the n synthetic image-classification labels (max 10).
func CIFARLabels(n int) []string {
	if n > len(cifarLabels) {
		n = len(cifarLabels)
	}
	return append([]string(nil), cifarLabels[:n]...)
}

// TextureImage synthesizes one image of the given texture class.
func TextureImage(label string, size int, rng *rand.Rand) (dsp.Signal, error) {
	pix := make([]float32, size*size*3)
	freq := 2 + rng.Float64()*3
	phase := rng.Float64() * math.Pi
	hi := float32(160 + rng.Intn(90))
	lo := float32(rng.Intn(80))
	val := func(x, y int) float32 {
		fx := float64(x) / float64(size)
		fy := float64(y) / float64(size)
		switch label {
		case "stripes-h":
			return pick(math.Sin(2*math.Pi*freq*fy+phase) > 0, hi, lo)
		case "stripes-v":
			return pick(math.Sin(2*math.Pi*freq*fx+phase) > 0, hi, lo)
		case "stripes-d":
			return pick(math.Sin(2*math.Pi*freq*(fx+fy)+phase) > 0, hi, lo)
		case "checker":
			return pick(math.Sin(2*math.Pi*freq*fx)*math.Sin(2*math.Pi*freq*fy) > 0, hi, lo)
		case "dots":
			gx := math.Mod(fx*freq, 1) - 0.5
			gy := math.Mod(fy*freq, 1) - 0.5
			return pick(gx*gx+gy*gy < 0.08, hi, lo)
		case "gradient-h":
			return lo + (hi-lo)*float32(fx)
		case "gradient-v":
			return lo + (hi-lo)*float32(fy)
		case "rings":
			d := math.Hypot(fx-0.5, fy-0.5)
			return pick(math.Sin(2*math.Pi*freq*2*d+phase) > 0, hi, lo)
		case "solid":
			return hi
		case "noise":
			return float32(rng.Intn(256))
		}
		return 0
	}
	known := false
	for _, l := range cifarLabels {
		if l == label {
			known = true
			break
		}
	}
	if !known {
		return dsp.Signal{}, fmt.Errorf("synth: unknown texture %q", label)
	}
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := val(x, y) + float32(rng.NormFloat64()*10)
			base := (y*size + x) * 3
			pix[base] = clamp255(v)
			pix[base+1] = clamp255(v * 0.9)
			pix[base+2] = clamp255(v * 1.1)
		}
	}
	return dsp.Signal{Data: pix, Axes: 3, Width: size, Height: size}, nil
}

func pick(cond bool, a, b float32) float32 {
	if cond {
		return a
	}
	return b
}

// ICDataset builds the synthetic image-classification dataset (CIFAR-10
// stand-in) with nClasses texture classes.
func ICDataset(nClasses, perClass, size int, seed int64) (*data.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.New()
	for _, label := range CIFARLabels(nClasses) {
		for i := 0; i < perClass; i++ {
			sig, err := TextureImage(label, size, rng)
			if err != nil {
				return nil, err
			}
			if _, err := ds.Add(&data.Sample{
				Name: fmt.Sprintf("%s.%04d", label, i), Label: label,
				Signal: sig,
			}); err != nil {
				return nil, err
			}
		}
	}
	ds.Rebalance(0.2)
	return ds, nil
}

// Vibration synthesizes multi-axis accelerometer data from rotating
// machinery: a fundamental plus harmonics per axis. When anomalous,
// bearing-fault style high-frequency bursts and a shifted harmonic
// appear — the predictive-maintenance workload of the paper's intro.
func Vibration(rate int, seconds float64, anomalous bool, rng *rand.Rand) dsp.Signal {
	n := int(seconds * float64(rate))
	out := make([]float32, n*3)
	fund := 28 + rng.Float64()*4 // ~30 Hz rotation
	for i := 0; i < n; i++ {
		t := float64(i) / float64(rate)
		base := math.Sin(2 * math.Pi * fund * t)
		h2 := 0.4 * math.Sin(2*math.Pi*2*fund*t+0.5)
		h3 := 0.2 * math.Sin(2*math.Pi*3*fund*t+1.1)
		v := base + h2 + h3
		var fault float64
		if anomalous {
			// Impulsive bursts at ~4x the rotation rate plus a strong
			// half-harmonic (classic bearing fault signature).
			fault = 0.8*math.Sin(2*math.Pi*4.33*fund*t) +
				0.5*math.Sin(2*math.Pi*0.5*fund*t)
			if math.Mod(t*fund*4, 1) < 0.05 {
				fault += rng.NormFloat64() * 1.5
			}
		}
		out[i*3+0] = float32(v + fault + rng.NormFloat64()*0.05)
		out[i*3+1] = float32(0.7*v + 0.9*fault + rng.NormFloat64()*0.05)
		out[i*3+2] = float32(0.3*v + 0.5*fault + rng.NormFloat64()*0.05)
	}
	return dsp.Signal{Data: out, Rate: rate, Axes: 3}
}

// VibrationDataset builds a labeled normal/anomalous vibration dataset.
func VibrationDataset(perClass, rate int, seconds float64, seed int64) (*data.Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.New()
	for i := 0; i < perClass; i++ {
		for _, anomalous := range []bool{false, true} {
			label := "normal"
			if anomalous {
				label = "fault"
			}
			if _, err := ds.Add(&data.Sample{
				Name: fmt.Sprintf("%s.%04d", label, i), Label: label,
				Signal: Vibration(rate, seconds, anomalous, rng),
			}); err != nil {
				return nil, err
			}
		}
	}
	ds.Rebalance(0.2)
	return ds, nil
}

// Event marks a ground-truth keyword occurrence in a stream.
type Event struct {
	// Label of the embedded keyword.
	Label string
	// StartSample and EndSample delimit the utterance.
	StartSample, EndSample int
}

// Stream synthesizes a long audio stream with keyword utterances of the
// given label embedded at random, non-overlapping positions over
// background noise, returning the signal and the ground-truth events —
// the input to performance calibration (paper Sec. 4.4).
func Stream(label string, rate int, seconds float64, nEvents int, noise float64, seed int64) (dsp.Signal, []Event, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int(seconds * float64(rate))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64() * noise)
	}
	const clipSeconds = 1.0
	clipLen := int(clipSeconds * float64(rate))
	if nEvents*clipLen*2 > n {
		return dsp.Signal{}, nil, fmt.Errorf("synth: %d events do not fit %.1fs stream", nEvents, seconds)
	}
	var events []Event
	slot := n / nEvents
	for e := 0; e < nEvents; e++ {
		kw, err := Keyword(label, rate, clipSeconds, 0, rng)
		if err != nil {
			return dsp.Signal{}, nil, err
		}
		maxOff := slot - clipLen
		start := e*slot + rng.Intn(maxOff)
		for i, v := range kw.Data {
			out[start+i] += v
		}
		events = append(events, Event{Label: label, StartSample: start, EndSample: start + clipLen})
	}
	return dsp.Signal{Data: out, Rate: rate, Axes: 1}, events, nil
}

// Source replays a synthesized signal chunk by chunk — the continuous
// feed for streaming inference (live classification demos, the
// `ei-daemon -stream` mode, and the streaming e2e tests). Chunks are
// bit-identical to the corresponding slices of the one-shot signal, so
// windowed classification over a streamed source reproduces one-shot
// extraction exactly.
//
// A Source is NOT safe for concurrent use: Next advances an unguarded
// cursor, so it must be driven by a single goroutine. A fleet of M
// simulated devices should give each device its own Source — either
// Clone an existing one, or synthesize per device with a seed derived
// via Derive so the streams are independent but deterministic. The
// underlying signal is never mutated, so clones may be driven from
// different goroutines concurrently.
type Source struct {
	sig  dsp.Signal
	pos  int
	loop bool
}

// NewSource wraps an already-synthesized signal. loop restarts the feed
// at the beginning instead of ending it.
func NewSource(sig dsp.Signal, loop bool) *Source {
	return &Source{sig: sig, loop: loop}
}

// NewStreamSource synthesizes a keyword stream (see Stream) and returns
// it as a chunked source plus the ground-truth events.
func NewStreamSource(label string, rate int, seconds float64, nEvents int, noise float64, seed int64) (*Source, []Event, error) {
	sig, events, err := Stream(label, rate, seconds, nEvents, noise, seed)
	if err != nil {
		return nil, nil, err
	}
	return NewSource(sig, false), events, nil
}

// NewVibrationSource synthesizes a continuous vibration feed.
func NewVibrationSource(rate int, seconds float64, anomalous bool, seed int64) *Source {
	rng := rand.New(rand.NewSource(seed))
	return NewSource(Vibration(rate, seconds, anomalous, rng), false)
}

// Clone returns an independent reader over the same synthesized
// signal, rewound to the start. The signal data is shared (it is never
// written after synthesis) but the replay cursor is per-clone, so each
// clone can be driven by its own goroutine.
func (s *Source) Clone() *Source {
	return &Source{sig: s.sig, loop: s.loop}
}

// Derive deterministically mixes a base seed with a device index so M
// simulated devices get independent, reproducible streams from one
// scenario seed: Derive(seed, i) != Derive(seed, j) for i != j, and
// the same (seed, device) pair always yields the same value. The
// mixing is a splitmix64 finalizer, so adjacent device indices land
// far apart in seed space.
func Derive(seed int64, device int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(device)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Axes returns the interleaved value count per frame.
func (s *Source) Axes() int {
	if s.sig.Axes <= 0 {
		return 1
	}
	return s.sig.Axes
}

// Rate returns the sample rate in Hz.
func (s *Source) Rate() int { return s.sig.Rate }

// Remaining returns the frames left before the source ends (the full
// length for a looping source's current pass).
func (s *Source) Remaining() int { return s.sig.Frames() - s.pos }

// Next returns the next batch of up to `frames` frames as a freshly
// allocated interleaved slice (callers may hand it off without copying),
// or nil when the source is exhausted. A shorter final batch flushes the
// tail; a looping source never returns nil.
func (s *Source) Next(frames int) []float32 {
	if frames <= 0 {
		return nil
	}
	axes := s.Axes()
	total := s.sig.Frames()
	if s.pos >= total {
		if !s.loop {
			return nil
		}
		s.pos = 0
	}
	end := s.pos + frames
	if end > total {
		end = total
	}
	out := make([]float32, (end-s.pos)*axes)
	copy(out, s.sig.Data[s.pos*axes:end*axes])
	s.pos = end
	return out
}
