package synth

import (
	"fmt"
	"sync"
	"testing"
)

// TestDeriveDeterministicAndDistinct: the same (seed, device) pair
// always yields the same derived seed, different devices yield
// different seeds, and nearby base seeds don't collide across the
// device axis.
func TestDeriveDeterministicAndDistinct(t *testing.T) {
	if Derive(7, 3) != Derive(7, 3) {
		t.Fatal("Derive is not deterministic")
	}
	seen := make(map[int64][2]int)
	for _, seed := range []int64{0, 1, 7, -7, 1 << 40} {
		for dev := 0; dev < 256; dev++ {
			d := Derive(seed, dev)
			if d == seed {
				t.Fatalf("Derive(%d, %d) returned the base seed", seed, dev)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("Derive collision: (%d,%d) and %v both -> %d", seed, dev, prev, d)
			}
			seen[d] = [2]int{int(seed), dev}
		}
	}
}

// TestSourceCloneIndependentCursor: a clone starts at the beginning,
// reads the same bytes as the original, and advancing one does not
// move the other.
func TestSourceCloneIndependentCursor(t *testing.T) {
	orig := NewVibrationSource(1000, 1, false, 5)
	orig.Next(100) // advance before cloning: the clone must rewind
	clone := orig.Clone()
	if clone.Remaining() != clone.sig.Frames() {
		t.Fatalf("clone starts at %d frames remaining, want full signal", clone.Remaining())
	}
	fresh := NewVibrationSource(1000, 1, false, 5)
	a, b := clone.Next(50), fresh.Next(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone value %d differs from fresh source", i)
		}
	}
	if orig.Remaining() == clone.Remaining() {
		t.Fatal("clone cursor is shared with the original")
	}
}

// TestSourceClonesConcurrent: M clones of one source driven from M
// goroutines each reconstruct the full signal bitwise. Run under
// -race this proves the shared signal is read-only and only the
// per-clone cursor mutates.
func TestSourceClonesConcurrent(t *testing.T) {
	base, _, err := NewStreamSource("yes", 4000, 3, 1, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := NewSource(base.sig, false)
	ref := want.Next(want.Remaining())

	const devices = 16
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			src := base.Clone()
			var got []float32
			// Uneven chunking per device exercises different cursor paths.
			chunk := 100 + d*37
			for src.Remaining() > 0 {
				got = append(got, src.Next(chunk)...)
			}
			if len(got) != len(ref) {
				errs <- fmt.Errorf("device %d: got %d samples, want %d", d, len(got), len(ref))
				return
			}
			for i := range got {
				if got[i] != ref[i] {
					errs <- fmt.Errorf("device %d: sample %d differs", d, i)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
