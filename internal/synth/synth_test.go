package synth

import (
	"math"
	"math/rand"
	"testing"

	"edgepulse/internal/data"
)

func TestKWSLabels(t *testing.T) {
	if got := KWSLabels(3); len(got) != 3 || got[2] != "noise" {
		t.Fatalf("labels: %v", got)
	}
	if got := KWSLabels(99); len(got) != 5 {
		t.Fatalf("clamped labels: %v", got)
	}
	if got := KWSLabels(0); len(got) != 2 {
		t.Fatalf("min labels: %v", got)
	}
}

func TestKeywordDeterministicPerSeed(t *testing.T) {
	a, err := Keyword("yes", 8000, 1, 0.05, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Keyword("yes", 8000, 1, 0.05, rand.New(rand.NewSource(1)))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("not deterministic")
		}
	}
	if _, err := Keyword("xyzzy", 8000, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted unknown keyword")
	}
}

func TestKeywordHasEnergyInMiddle(t *testing.T) {
	sig, _ := Keyword("yes", 8000, 1, 0, rand.New(rand.NewSource(2)))
	if len(sig.Data) != 8000 {
		t.Fatalf("length %d", len(sig.Data))
	}
	energy := func(lo, hi int) float64 {
		var s float64
		for _, v := range sig.Data[lo:hi] {
			s += float64(v) * float64(v)
		}
		return s
	}
	head := energy(0, 1000)
	mid := energy(3000, 5000)
	if mid < head*10 {
		t.Errorf("utterance energy mid=%g head=%g", mid, head)
	}
}

func TestKWSDatasetBalanced(t *testing.T) {
	ds, err := KWSDataset(3, 10, 8000, 1, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Fatalf("len %d", ds.Len())
	}
	stats := ds.Stats()
	if len(stats) != 3 {
		t.Fatalf("%d labels", len(stats))
	}
	for _, st := range stats {
		if st.Training+st.Testing != 10 {
			t.Errorf("%s: %d+%d", st.Label, st.Training, st.Testing)
		}
		if st.Testing == 0 {
			t.Errorf("%s: empty test split", st.Label)
		}
	}
}

func TestClassesAreSpectrallyDistinct(t *testing.T) {
	// Mean absolute spectra of different keywords should differ far more
	// than those of two instances of the same keyword.
	spectrum := func(label string, seed int64) []float64 {
		sig, _ := Keyword(label, 8000, 1, 0.02, rand.New(rand.NewSource(seed)))
		bins := make([]float64, 32)
		// Cheap spectral proxy: energy in 32 windows of a Goertzel-like
		// filter bank via short sine correlations.
		for b := 0; b < 32; b++ {
			freq := 100 + float64(b)*100
			var re, im float64
			for i, v := range sig.Data {
				ph := 2 * math.Pi * freq * float64(i) / 8000
				re += float64(v) * math.Cos(ph)
				im += float64(v) * math.Sin(ph)
			}
			bins[b] = math.Hypot(re, im)
		}
		return bins
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	yes1 := spectrum("yes", 1)
	yes2 := spectrum("yes", 2)
	no1 := spectrum("no", 3)
	if dist(yes1, no1) < 1.2*dist(yes1, yes2) {
		t.Errorf("inter-class distance %g not above intra-class %g", dist(yes1, no1), dist(yes1, yes2))
	}
}

func TestVWWDataset(t *testing.T) {
	ds, err := VWWDataset(6, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 12 {
		t.Fatalf("len %d", ds.Len())
	}
	labels := ds.Labels()
	if len(labels) != 2 {
		t.Fatalf("labels %v", labels)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.Signal.Width != 32 || s.Signal.Height != 32 || s.Signal.Axes != 3 {
			t.Fatalf("image dims: %+v", s.Signal)
		}
		for _, v := range s.Signal.Data {
			if v < 0 || v > 255 {
				t.Fatalf("pixel %g out of range", v)
			}
		}
	}
}

func TestICDatasetLabels(t *testing.T) {
	ds, err := ICDataset(4, 5, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Labels()); got != 4 {
		t.Fatalf("%d labels", got)
	}
	if _, err := TextureImage("not-a-texture", 8, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted unknown texture")
	}
	if got := len(CIFARLabels(99)); got != 10 {
		t.Fatalf("CIFARLabels clamp: %d", got)
	}
}

func TestVibrationAnomalyDiffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	normal := Vibration(100, 2, false, rng)
	fault := Vibration(100, 2, true, rng)
	if normal.Axes != 3 || fault.Frames() != 200 {
		t.Fatalf("shape: %+v", fault)
	}
	// The fault signal carries more energy.
	e := func(s []float32) float64 {
		var sum float64
		for _, v := range s {
			sum += float64(v) * float64(v)
		}
		return sum
	}
	if e(fault.Data) < e(normal.Data)*1.2 {
		t.Errorf("fault energy %g not above normal %g", e(fault.Data), e(normal.Data))
	}
}

func TestVibrationDataset(t *testing.T) {
	ds, err := VibrationDataset(5, 100, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 10 {
		t.Fatalf("len %d", ds.Len())
	}
	if got := ds.Labels(); len(got) != 2 || got[0] != "fault" {
		t.Fatalf("labels %v", got)
	}
	_ = data.Training
}

func TestStreamEvents(t *testing.T) {
	sig, events, err := Stream("yes", 8000, 10, 4, 0.02, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("%d events", len(events))
	}
	if sig.Frames() != 80000 {
		t.Fatalf("stream length %d", sig.Frames())
	}
	for i, e := range events {
		if e.EndSample <= e.StartSample || e.EndSample > sig.Frames() {
			t.Errorf("event %d bounds: %+v", i, e)
		}
		if i > 0 && e.StartSample < events[i-1].EndSample {
			t.Errorf("event %d overlaps previous", i)
		}
		// Energy inside the event region exceeds nearby background.
		var inE, outE float64
		for s := e.StartSample; s < e.EndSample; s++ {
			inE += float64(sig.Data[s]) * float64(sig.Data[s])
		}
		bgStart := e.StartSample - 4000
		if bgStart < 0 {
			bgStart = e.EndSample
		}
		for s := bgStart; s < bgStart+4000 && s < sig.Frames(); s++ {
			outE += float64(sig.Data[s]) * float64(sig.Data[s])
		}
		if inE < outE*2 {
			t.Errorf("event %d energy %g not above background %g", i, inE, outE)
		}
	}
	// Too many events must fail cleanly.
	if _, _, err := Stream("yes", 8000, 2, 10, 0.02, 1); err == nil {
		t.Error("accepted impossible event density")
	}
}
