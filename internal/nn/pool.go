package nn

import (
	"fmt"
	"math"

	"edgepulse/internal/tensor"
)

// MaxPool2D reduces [H, W, C] spatially by taking window maxima.
type MaxPool2D struct {
	Size   int
	Stride int

	lastIn *tensor.F32
	argmax []int
}

// NewMaxPool2D creates a max pooling layer; stride defaults to size.
func NewMaxPool2D(size, stride int) *MaxPool2D {
	if stride <= 0 {
		stride = size
	}
	return &MaxPool2D{Size: size, Stride: stride}
}

// Kind implements Layer.
func (p *MaxPool2D) Kind() string { return "maxpool2d" }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("maxpool2d: want [H W C] input, got %v", in)
	}
	oh := convOutDim(in[0], p.Size, p.Stride, Valid)
	ow := convOutDim(in[1], p.Size, p.Stride, Valid)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("maxpool2d: window %d does not fit %v", p.Size, in)
	}
	return tensor.Shape{oh, ow, in[2]}, nil
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(in *tensor.F32) *tensor.F32 {
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	oh := convOutDim(h, p.Size, p.Stride, Valid)
	ow := convOutDim(w, p.Size, p.Stride, Valid)
	out := tensor.NewF32(oh, ow, ch)
	p.lastIn = in
	p.argmax = make([]int, oh*ow*ch)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				best := float32(math.Inf(-1))
				bestIdx := 0
				for ky := 0; ky < p.Size; ky++ {
					for kx := 0; kx < p.Size; kx++ {
						iy := oy*p.Stride + ky
						ix := ox*p.Stride + kx
						idx := (iy*w+ix)*ch + c
						if in.Data[idx] > best {
							best = in.Data[idx]
							bestIdx = idx
						}
					}
				}
				oidx := (oy*ow+ox)*ch + c
				out.Data[oidx] = best
				p.argmax[oidx] = bestIdx
			}
		}
	}
	return out
}

// InferInto implements Layer (no argmax bookkeeping).
func (p *MaxPool2D) InferInto(in, out *tensor.F32) {
	w, ch := in.Shape[1], in.Shape[2]
	oh, ow := out.Shape[0], out.Shape[1]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < p.Size; ky++ {
					for kx := 0; kx < p.Size; kx++ {
						v := in.Data[((oy*p.Stride+ky)*w+(ox*p.Stride+kx))*ch+c]
						if v > best {
							best = v
						}
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = best
			}
		}
	}
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.F32) *tensor.F32 {
	gradIn := tensor.NewF32(p.lastIn.Shape...)
	for i, g := range gradOut.Data {
		gradIn.Data[p.argmax[i]] += g
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.F32 { return nil }

// MACs implements Layer. Pooling does comparisons, not MACs; counted as 0.
func (p *MaxPool2D) MACs(in tensor.Shape) int64 { return 0 }

// AvgPool2D reduces [H, W, C] spatially by window means.
type AvgPool2D struct {
	Size   int
	Stride int

	lastIn *tensor.F32
}

// NewAvgPool2D creates an average pooling layer; stride defaults to size.
func NewAvgPool2D(size, stride int) *AvgPool2D {
	if stride <= 0 {
		stride = size
	}
	return &AvgPool2D{Size: size, Stride: stride}
}

// Kind implements Layer.
func (p *AvgPool2D) Kind() string { return "avgpool2d" }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("avgpool2d: want [H W C] input, got %v", in)
	}
	oh := convOutDim(in[0], p.Size, p.Stride, Valid)
	ow := convOutDim(in[1], p.Size, p.Stride, Valid)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("avgpool2d: window %d does not fit %v", p.Size, in)
	}
	return tensor.Shape{oh, ow, in[2]}, nil
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(in *tensor.F32) *tensor.F32 {
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	oh := convOutDim(h, p.Size, p.Stride, Valid)
	ow := convOutDim(w, p.Size, p.Stride, Valid)
	out := tensor.NewF32(oh, ow, ch)
	p.InferInto(in, out)
	p.lastIn = in
	return out
}

// InferInto implements Layer.
func (p *AvgPool2D) InferInto(in, out *tensor.F32) {
	w, ch := in.Shape[1], in.Shape[2]
	oh, ow := out.Shape[0], out.Shape[1]
	inv := 1 / float32(p.Size*p.Size)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				var s float32
				for ky := 0; ky < p.Size; ky++ {
					for kx := 0; kx < p.Size; kx++ {
						iy := oy*p.Stride + ky
						ix := ox*p.Stride + kx
						s += in.Data[(iy*w+ix)*ch+c]
					}
				}
				out.Data[(oy*ow+ox)*ch+c] = s * inv
			}
		}
	}
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(gradOut *tensor.F32) *tensor.F32 {
	h, w, ch := p.lastIn.Shape[0], p.lastIn.Shape[1], p.lastIn.Shape[2]
	oh, ow := gradOut.Shape[0], gradOut.Shape[1]
	gradIn := tensor.NewF32(h, w, ch)
	inv := 1 / float32(p.Size*p.Size)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for c := 0; c < ch; c++ {
				g := gradOut.Data[(oy*ow+ox)*ch+c] * inv
				for ky := 0; ky < p.Size; ky++ {
					for kx := 0; kx < p.Size; kx++ {
						iy := oy*p.Stride + ky
						ix := ox*p.Stride + kx
						gradIn.Data[(iy*w+ix)*ch+c] += g
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (p *AvgPool2D) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (p *AvgPool2D) MACs(in tensor.Shape) int64 { return 0 }

// MaxPool1D reduces [T, C] along time.
type MaxPool1D struct {
	Size   int
	Stride int

	lastIn *tensor.F32
	argmax []int
}

// NewMaxPool1D creates a 1-D max pooling layer; stride defaults to size.
func NewMaxPool1D(size, stride int) *MaxPool1D {
	if stride <= 0 {
		stride = size
	}
	return &MaxPool1D{Size: size, Stride: stride}
}

// Kind implements Layer.
func (p *MaxPool1D) Kind() string { return "maxpool1d" }

// OutShape implements Layer.
func (p *MaxPool1D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("maxpool1d: want [T C] input, got %v", in)
	}
	ot := convOutDim(in[0], p.Size, p.Stride, Valid)
	if ot <= 0 {
		return nil, fmt.Errorf("maxpool1d: window %d does not fit %v", p.Size, in)
	}
	return tensor.Shape{ot, in[1]}, nil
}

// Forward implements Layer.
func (p *MaxPool1D) Forward(in *tensor.F32) *tensor.F32 {
	t, ch := in.Shape[0], in.Shape[1]
	ot := convOutDim(t, p.Size, p.Stride, Valid)
	out := tensor.NewF32(ot, ch)
	p.lastIn = in
	p.argmax = make([]int, ot*ch)
	for o := 0; o < ot; o++ {
		for c := 0; c < ch; c++ {
			best := float32(math.Inf(-1))
			bestIdx := 0
			for k := 0; k < p.Size; k++ {
				idx := (o*p.Stride+k)*ch + c
				if in.Data[idx] > best {
					best = in.Data[idx]
					bestIdx = idx
				}
			}
			out.Data[o*ch+c] = best
			p.argmax[o*ch+c] = bestIdx
		}
	}
	return out
}

// InferInto implements Layer (no argmax bookkeeping).
func (p *MaxPool1D) InferInto(in, out *tensor.F32) {
	ch := in.Shape[1]
	ot := out.Shape[0]
	for o := 0; o < ot; o++ {
		for c := 0; c < ch; c++ {
			best := float32(math.Inf(-1))
			for k := 0; k < p.Size; k++ {
				v := in.Data[(o*p.Stride+k)*ch+c]
				if v > best {
					best = v
				}
			}
			out.Data[o*ch+c] = best
		}
	}
}

// Backward implements Layer.
func (p *MaxPool1D) Backward(gradOut *tensor.F32) *tensor.F32 {
	gradIn := tensor.NewF32(p.lastIn.Shape...)
	for i, g := range gradOut.Data {
		gradIn.Data[p.argmax[i]] += g
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool1D) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (p *MaxPool1D) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (p *MaxPool1D) MACs(in tensor.Shape) int64 { return 0 }

// GlobalAvgPool2D averages each channel over all spatial positions,
// producing a [C] vector (MobileNet's head).
type GlobalAvgPool2D struct {
	lastIn *tensor.F32
}

// NewGlobalAvgPool2D creates a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Kind implements Layer.
func (p *GlobalAvgPool2D) Kind() string { return "gap2d" }

// OutShape implements Layer.
func (p *GlobalAvgPool2D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("gap2d: want [H W C] input, got %v", in)
	}
	return tensor.Shape{in[2]}, nil
}

// Forward implements Layer.
func (p *GlobalAvgPool2D) Forward(in *tensor.F32) *tensor.F32 {
	out := tensor.NewF32(in.Shape[2])
	p.InferInto(in, out)
	p.lastIn = in
	return out
}

// InferInto implements Layer.
func (p *GlobalAvgPool2D) InferInto(in, out *tensor.F32) {
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	for c := range out.Data {
		out.Data[c] = 0
	}
	for i := 0; i < h*w; i++ {
		row := in.Data[i*ch : (i+1)*ch]
		for c, v := range row {
			out.Data[c] += v
		}
	}
	inv := 1 / float32(h*w)
	for c := range out.Data {
		out.Data[c] *= inv
	}
}

// Backward implements Layer.
func (p *GlobalAvgPool2D) Backward(gradOut *tensor.F32) *tensor.F32 {
	h, w, ch := p.lastIn.Shape[0], p.lastIn.Shape[1], p.lastIn.Shape[2]
	gradIn := tensor.NewF32(h, w, ch)
	inv := 1 / float32(h*w)
	for i := 0; i < h*w; i++ {
		for c := 0; c < ch; c++ {
			gradIn.Data[i*ch+c] = gradOut.Data[c] * inv
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *GlobalAvgPool2D) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool2D) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (p *GlobalAvgPool2D) MACs(in tensor.Shape) int64 { return 0 }
