package nn

import (
	"fmt"

	"edgepulse/internal/simd"
	"edgepulse/internal/tensor"
)

// Padding selects the spatial padding mode of convolution and pooling.
type Padding int

// Padding modes, matching TFLite semantics.
const (
	Valid Padding = iota
	Same
)

func (p Padding) String() string {
	if p == Same {
		return "same"
	}
	return "valid"
}

// convOutDim computes the output length of a strided convolution.
func convOutDim(in, kernel, stride int, pad Padding) int {
	if pad == Same {
		return (in + stride - 1) / stride
	}
	if in < kernel {
		return 0
	}
	return (in-kernel)/stride + 1
}

// padOffset returns the leading pad for Same padding.
func padOffset(in, kernel, stride int, pad Padding) int {
	if pad != Same {
		return 0
	}
	out := convOutDim(in, kernel, stride, pad)
	total := (out-1)*stride + kernel - in
	if total < 0 {
		total = 0
	}
	return total / 2
}

// Conv2D is a 2-D convolution over [H, W, Cin] producing [H', W', Filters].
// Weights are stored HWIO: [K, K, Cin, Filters].
type Conv2D struct {
	Filters int
	Kernel  int
	Stride  int
	Pad     Padding
	Act     Activation

	W, B   *tensor.F32
	GW, GB *tensor.F32

	lastIn  *tensor.F32
	lastOut *tensor.F32
}

// NewConv2D creates a 2-D convolution layer.
func NewConv2D(filters, kernel, stride int, pad Padding, act Activation) *Conv2D {
	if stride < 1 {
		stride = 1
	}
	return &Conv2D{Filters: filters, Kernel: kernel, Stride: stride, Pad: pad, Act: act}
}

// Build allocates parameters for a known input channel count.
func (c *Conv2D) Build(cin int) {
	if c.W != nil && c.W.Shape[2] == cin {
		return
	}
	c.W = tensor.NewF32(c.Kernel, c.Kernel, cin, c.Filters)
	c.B = tensor.NewF32(c.Filters)
	c.GW = tensor.NewF32(c.Kernel, c.Kernel, cin, c.Filters)
	c.GB = tensor.NewF32(c.Filters)
}

// Kind implements Layer.
func (c *Conv2D) Kind() string { return "conv2d" }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("conv2d: want [H W C] input, got %v", in)
	}
	c.Build(in[2])
	oh := convOutDim(in[0], c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(in[1], c.Kernel, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv2d: kernel %d does not fit input %v", c.Kernel, in)
	}
	return tensor.Shape{oh, ow, c.Filters}, nil
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *tensor.F32) *tensor.F32 {
	h, w, cin := in.Shape[0], in.Shape[1], in.Shape[2]
	c.Build(cin)
	oh := convOutDim(h, c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(w, c.Kernel, c.Stride, c.Pad)
	out := tensor.NewF32(oh, ow, c.Filters)
	c.InferInto(in, out)
	c.lastIn = in
	c.lastOut = out
	return out
}

// InferInto implements Layer. Each output pixel accumulates [cin x nf]
// weight panels via simd.ConvAccF32 with the valid tap range hoisted out
// of the inner loops; per output element the accumulation order matches
// the classic filter-major loop bit for bit. Layers heavy enough to
// amortize the hand-off partition their output rows across the shared
// worker pool (see parallel.go) — disjoint row chunks keep the result
// bitwise-equal to the sequential path for any worker count.
func (c *Conv2D) InferInto(in, out *tensor.F32) {
	c.Build(in.Shape[2])
	oh := out.Shape[0]
	if parallelizable(oh, c.MACs(in.Shape)) {
		parallelRows(oh, func(lo, hi int) { c.inferRows(in, out, lo, hi) })
		return
	}
	c.inferRows(in, out, 0, oh)
}

// inferRows computes output rows [oyLo, oyHi); it touches no layer
// state and writes only those rows, so disjoint ranges may run
// concurrently.
func (c *Conv2D) inferRows(in, out *tensor.F32, oyLo, oyHi int) {
	h, w, cin := in.Shape[0], in.Shape[1], in.Shape[2]
	ow := out.Shape[1]
	py := padOffset(h, c.Kernel, c.Stride, c.Pad)
	px := padOffset(w, c.Kernel, c.Stride, c.Pad)
	nf := c.Filters
	wData, inData := c.W.Data, in.Data
	for oy := oyLo; oy < oyHi; oy++ {
		// Valid vertical taps for this output row, hoisted so the tap
		// loops run branch-free.
		kyLo, kyHi := 0, c.Kernel
		if d := py - oy*c.Stride; d > 0 {
			kyLo = d
		}
		if d := h + py - oy*c.Stride; d < kyHi {
			kyHi = d
		}
		for ox := 0; ox < ow; ox++ {
			dst := out.Data[(oy*ow+ox)*nf : (oy*ow+ox+1)*nf]
			copy(dst, c.B.Data)
			kxLo, kxHi := 0, c.Kernel
			if d := px - ox*c.Stride; d > 0 {
				kxLo = d
			}
			if d := w + px - ox*c.Stride; d < kxHi {
				kxHi = d
			}
			for ky := kyLo; ky < kyHi; ky++ {
				iy := oy*c.Stride + ky - py
				for kx := kxLo; kx < kxHi; kx++ {
					ix := ox*c.Stride + kx - px
					inBase := (iy*w + ix) * cin
					wBase := (ky*c.Kernel + kx) * cin * nf
					simd.ConvAccF32(dst, wData[wBase:wBase+cin*nf], inData[inBase:inBase+cin], nf)
				}
			}
			c.Act.applyTo(dst)
		}
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.F32) *tensor.F32 {
	in := c.lastIn
	h, w, cin := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := gradOut.Shape[0], gradOut.Shape[1]
	py := padOffset(h, c.Kernel, c.Stride, c.Pad)
	px := padOffset(w, c.Kernel, c.Stride, c.Pad)
	gradIn := tensor.NewF32(h, w, cin)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < c.Filters; f++ {
				idx := (oy*ow+ox)*c.Filters + f
				g := gradOut.Data[idx] * c.Act.grad(c.lastOut.Data[idx])
				if g == 0 {
					continue
				}
				c.GB.Data[f] += g
				for ky := 0; ky < c.Kernel; ky++ {
					iy := oy*c.Stride + ky - py
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.Kernel; kx++ {
						ix := ox*c.Stride + kx - px
						if ix < 0 || ix >= w {
							continue
						}
						inBase := (iy*w + ix) * cin
						wBase := ((ky*c.Kernel + kx) * cin) * c.Filters
						for ci := 0; ci < cin; ci++ {
							c.GW.Data[wBase+ci*c.Filters+f] += g * in.Data[inBase+ci]
							gradIn.Data[inBase+ci] += g * c.W.Data[wBase+ci*c.Filters+f]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.F32 {
	if c.W == nil {
		return nil
	}
	return []*tensor.F32{c.W, c.B}
}

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.F32 {
	if c.GW == nil {
		return nil
	}
	return []*tensor.F32{c.GW, c.GB}
}

// MACs implements Layer.
func (c *Conv2D) MACs(in tensor.Shape) int64 {
	if len(in) != 3 {
		return 0
	}
	oh := convOutDim(in[0], c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(in[1], c.Kernel, c.Stride, c.Pad)
	return int64(oh) * int64(ow) * int64(c.Filters) * int64(c.Kernel) * int64(c.Kernel) * int64(in[2])
}

// DepthwiseConv2D convolves each input channel with its own kernel
// (depth multiplier 1), the core op of MobileNet and DS-CNN.
// Weights are [K, K, C].
type DepthwiseConv2D struct {
	Kernel int
	Stride int
	Pad    Padding
	Act    Activation

	W, B   *tensor.F32
	GW, GB *tensor.F32

	lastIn  *tensor.F32
	lastOut *tensor.F32
}

// NewDepthwiseConv2D creates a depthwise convolution layer.
func NewDepthwiseConv2D(kernel, stride int, pad Padding, act Activation) *DepthwiseConv2D {
	if stride < 1 {
		stride = 1
	}
	return &DepthwiseConv2D{Kernel: kernel, Stride: stride, Pad: pad, Act: act}
}

// Build allocates parameters for a known channel count.
func (c *DepthwiseConv2D) Build(ch int) {
	if c.W != nil && c.W.Shape[2] == ch {
		return
	}
	c.W = tensor.NewF32(c.Kernel, c.Kernel, ch)
	c.B = tensor.NewF32(ch)
	c.GW = tensor.NewF32(c.Kernel, c.Kernel, ch)
	c.GB = tensor.NewF32(ch)
}

// Kind implements Layer.
func (c *DepthwiseConv2D) Kind() string { return "depthwise_conv2d" }

// OutShape implements Layer.
func (c *DepthwiseConv2D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("depthwise_conv2d: want [H W C] input, got %v", in)
	}
	c.Build(in[2])
	oh := convOutDim(in[0], c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(in[1], c.Kernel, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("depthwise_conv2d: kernel %d does not fit input %v", c.Kernel, in)
	}
	return tensor.Shape{oh, ow, in[2]}, nil
}

// Forward implements Layer.
func (c *DepthwiseConv2D) Forward(in *tensor.F32) *tensor.F32 {
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	c.Build(ch)
	oh := convOutDim(h, c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(w, c.Kernel, c.Stride, c.Pad)
	out := tensor.NewF32(oh, ow, ch)
	c.InferInto(in, out)
	c.lastIn = in
	c.lastOut = out
	return out
}

// InferInto implements Layer. The channel dimension vectorizes via
// simd.MulAccF32 (input row, [K,K,C] weight row and output row are all
// contiguous); per channel the tap accumulation order is unchanged.
// Heavy layers partition output rows across the shared worker pool.
func (c *DepthwiseConv2D) InferInto(in, out *tensor.F32) {
	c.Build(in.Shape[2])
	oh := out.Shape[0]
	if parallelizable(oh, c.MACs(in.Shape)) {
		parallelRows(oh, func(lo, hi int) { c.inferRows(in, out, lo, hi) })
		return
	}
	c.inferRows(in, out, 0, oh)
}

// inferRows computes output rows [oyLo, oyHi); disjoint ranges may run
// concurrently.
func (c *DepthwiseConv2D) inferRows(in, out *tensor.F32, oyLo, oyHi int) {
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	ow := out.Shape[1]
	py := padOffset(h, c.Kernel, c.Stride, c.Pad)
	px := padOffset(w, c.Kernel, c.Stride, c.Pad)
	for oy := oyLo; oy < oyHi; oy++ {
		kyLo, kyHi := 0, c.Kernel
		if d := py - oy*c.Stride; d > 0 {
			kyLo = d
		}
		if d := h + py - oy*c.Stride; d < kyHi {
			kyHi = d
		}
		for ox := 0; ox < ow; ox++ {
			dst := out.Data[(oy*ow+ox)*ch : (oy*ow+ox+1)*ch]
			copy(dst, c.B.Data)
			kxLo, kxHi := 0, c.Kernel
			if d := px - ox*c.Stride; d > 0 {
				kxLo = d
			}
			if d := w + px - ox*c.Stride; d < kxHi {
				kxHi = d
			}
			for ky := kyLo; ky < kyHi; ky++ {
				iy := oy*c.Stride + ky - py
				for kx := kxLo; kx < kxHi; kx++ {
					ix := ox*c.Stride + kx - px
					inRow := in.Data[(iy*w+ix)*ch : (iy*w+ix+1)*ch]
					wRow := c.W.Data[(ky*c.Kernel+kx)*ch : (ky*c.Kernel+kx+1)*ch]
					simd.MulAccF32(dst, inRow, wRow)
				}
			}
			c.Act.applyTo(dst)
		}
	}
}

// Backward implements Layer.
func (c *DepthwiseConv2D) Backward(gradOut *tensor.F32) *tensor.F32 {
	in := c.lastIn
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := gradOut.Shape[0], gradOut.Shape[1]
	py := padOffset(h, c.Kernel, c.Stride, c.Pad)
	px := padOffset(w, c.Kernel, c.Stride, c.Pad)
	gradIn := tensor.NewF32(h, w, ch)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ci := 0; ci < ch; ci++ {
				idx := (oy*ow+ox)*ch + ci
				g := gradOut.Data[idx] * c.Act.grad(c.lastOut.Data[idx])
				if g == 0 {
					continue
				}
				c.GB.Data[ci] += g
				for ky := 0; ky < c.Kernel; ky++ {
					iy := oy*c.Stride + ky - py
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.Kernel; kx++ {
						ix := ox*c.Stride + kx - px
						if ix < 0 || ix >= w {
							continue
						}
						c.GW.Data[(ky*c.Kernel+kx)*ch+ci] += g * in.Data[(iy*w+ix)*ch+ci]
						gradIn.Data[(iy*w+ix)*ch+ci] += g * c.W.Data[(ky*c.Kernel+kx)*ch+ci]
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *DepthwiseConv2D) Params() []*tensor.F32 {
	if c.W == nil {
		return nil
	}
	return []*tensor.F32{c.W, c.B}
}

// Grads implements Layer.
func (c *DepthwiseConv2D) Grads() []*tensor.F32 {
	if c.GW == nil {
		return nil
	}
	return []*tensor.F32{c.GW, c.GB}
}

// MACs implements Layer.
func (c *DepthwiseConv2D) MACs(in tensor.Shape) int64 {
	if len(in) != 3 {
		return 0
	}
	oh := convOutDim(in[0], c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(in[1], c.Kernel, c.Stride, c.Pad)
	return int64(oh) * int64(ow) * int64(in[2]) * int64(c.Kernel) * int64(c.Kernel)
}

// Conv1D is a 1-D convolution over [T, Cin] producing [T', Filters],
// the workhorse of the paper's EON Tuner keyword-spotting table.
// Weights are [K, Cin, Filters].
type Conv1D struct {
	Filters int
	Kernel  int
	Stride  int
	Pad     Padding
	Act     Activation

	W, B   *tensor.F32
	GW, GB *tensor.F32

	lastIn  *tensor.F32
	lastOut *tensor.F32
}

// NewConv1D creates a 1-D convolution layer.
func NewConv1D(filters, kernel, stride int, pad Padding, act Activation) *Conv1D {
	if stride < 1 {
		stride = 1
	}
	return &Conv1D{Filters: filters, Kernel: kernel, Stride: stride, Pad: pad, Act: act}
}

// Build allocates parameters for a known input channel count.
func (c *Conv1D) Build(cin int) {
	if c.W != nil && c.W.Shape[1] == cin {
		return
	}
	c.W = tensor.NewF32(c.Kernel, cin, c.Filters)
	c.B = tensor.NewF32(c.Filters)
	c.GW = tensor.NewF32(c.Kernel, cin, c.Filters)
	c.GB = tensor.NewF32(c.Filters)
}

// Kind implements Layer.
func (c *Conv1D) Kind() string { return "conv1d" }

// OutShape implements Layer.
func (c *Conv1D) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("conv1d: want [T C] input, got %v", in)
	}
	c.Build(in[1])
	ot := convOutDim(in[0], c.Kernel, c.Stride, c.Pad)
	if ot <= 0 {
		return nil, fmt.Errorf("conv1d: kernel %d does not fit input %v", c.Kernel, in)
	}
	return tensor.Shape{ot, c.Filters}, nil
}

// Forward implements Layer.
func (c *Conv1D) Forward(in *tensor.F32) *tensor.F32 {
	t, cin := in.Shape[0], in.Shape[1]
	c.Build(cin)
	ot := convOutDim(t, c.Kernel, c.Stride, c.Pad)
	out := tensor.NewF32(ot, c.Filters)
	c.InferInto(in, out)
	c.lastIn = in
	c.lastOut = out
	return out
}

// InferInto implements Layer, accumulating [cin x nf] weight panels via
// simd.ConvAccF32 with hoisted tap bounds (same reordering as Conv2D).
// Heavy layers partition output steps across the shared worker pool.
func (c *Conv1D) InferInto(in, out *tensor.F32) {
	c.Build(in.Shape[1])
	ot := out.Shape[0]
	if parallelizable(ot, c.MACs(in.Shape)) {
		parallelRows(ot, func(lo, hi int) { c.inferRows(in, out, lo, hi) })
		return
	}
	c.inferRows(in, out, 0, ot)
}

// inferRows computes output steps [oLo, oHi); disjoint ranges may run
// concurrently.
func (c *Conv1D) inferRows(in, out *tensor.F32, oLo, oHi int) {
	t, cin := in.Shape[0], in.Shape[1]
	p := padOffset(t, c.Kernel, c.Stride, c.Pad)
	nf := c.Filters
	for o := oLo; o < oHi; o++ {
		dst := out.Data[o*nf : (o+1)*nf]
		copy(dst, c.B.Data)
		kLo, kHi := 0, c.Kernel
		if d := p - o*c.Stride; d > 0 {
			kLo = d
		}
		if d := t + p - o*c.Stride; d < kHi {
			kHi = d
		}
		for k := kLo; k < kHi; k++ {
			i := o*c.Stride + k - p
			inBase := i * cin
			wBase := k * cin * nf
			simd.ConvAccF32(dst, c.W.Data[wBase:wBase+cin*nf], in.Data[inBase:inBase+cin], nf)
		}
		c.Act.applyTo(dst)
	}
}

// Backward implements Layer.
func (c *Conv1D) Backward(gradOut *tensor.F32) *tensor.F32 {
	in := c.lastIn
	t, cin := in.Shape[0], in.Shape[1]
	ot := gradOut.Shape[0]
	p := padOffset(t, c.Kernel, c.Stride, c.Pad)
	gradIn := tensor.NewF32(t, cin)
	for o := 0; o < ot; o++ {
		for f := 0; f < c.Filters; f++ {
			idx := o*c.Filters + f
			g := gradOut.Data[idx] * c.Act.grad(c.lastOut.Data[idx])
			if g == 0 {
				continue
			}
			c.GB.Data[f] += g
			for k := 0; k < c.Kernel; k++ {
				i := o*c.Stride + k - p
				if i < 0 || i >= t {
					continue
				}
				inBase := i * cin
				wBase := k * cin * c.Filters
				for ci := 0; ci < cin; ci++ {
					c.GW.Data[wBase+ci*c.Filters+f] += g * in.Data[inBase+ci]
					gradIn.Data[inBase+ci] += g * c.W.Data[wBase+ci*c.Filters+f]
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv1D) Params() []*tensor.F32 {
	if c.W == nil {
		return nil
	}
	return []*tensor.F32{c.W, c.B}
}

// Grads implements Layer.
func (c *Conv1D) Grads() []*tensor.F32 {
	if c.GW == nil {
		return nil
	}
	return []*tensor.F32{c.GW, c.GB}
}

// MACs implements Layer.
func (c *Conv1D) MACs(in tensor.Shape) int64 {
	if len(in) != 2 {
		return 0
	}
	ot := convOutDim(in[0], c.Kernel, c.Stride, c.Pad)
	return int64(ot) * int64(c.Filters) * int64(c.Kernel) * int64(in[1])
}
