package nn

import (
	"fmt"
	"math"
	"math/rand"

	"edgepulse/internal/fastmath"
	"edgepulse/internal/tensor"
)

// Flatten reshapes any input to rank 1.
type Flatten struct {
	lastShape tensor.Shape
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Kind implements Layer.
func (f *Flatten) Kind() string { return "flatten" }

// OutShape implements Layer.
func (f *Flatten) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if !in.Valid() {
		return nil, fmt.Errorf("flatten: invalid input shape %v", in)
	}
	return tensor.Shape{in.Elems()}, nil
}

// Forward implements Layer.
func (f *Flatten) Forward(in *tensor.F32) *tensor.F32 {
	f.lastShape = in.Shape
	return &tensor.F32{Shape: tensor.Shape{len(in.Data)}, Data: in.Data}
}

// InferInto implements Layer. Arena drivers alias instead (see Aliases).
func (f *Flatten) InferInto(in, out *tensor.F32) {
	copy(out.Data, in.Data)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.F32) *tensor.F32 {
	return &tensor.F32{Shape: f.lastShape, Data: gradOut.Data}
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (f *Flatten) MACs(in tensor.Shape) int64 { return 0 }

// Softmax converts logits to a probability distribution.
type Softmax struct {
	lastOut *tensor.F32
}

// NewSoftmax creates a softmax layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Kind implements Layer.
func (s *Softmax) Kind() string { return "softmax" }

// OutShape implements Layer.
func (s *Softmax) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("softmax: want rank-1 input, got %v", in)
	}
	return in.Clone(), nil
}

// Forward implements Layer.
func (s *Softmax) Forward(in *tensor.F32) *tensor.F32 {
	out := tensor.NewF32(in.Shape...)
	s.InferInto(in, out)
	s.lastOut = out
	return out
}

// InferInto implements Layer.
func (s *Softmax) InferInto(in, out *tensor.F32) {
	max := in.Data[0]
	for _, v := range in.Data {
		if v > max {
			max = v
		}
	}
	if fastmath.Enabled() {
		var sum float32
		for i, v := range in.Data {
			e := fastmath.ExpFast(v - max)
			out.Data[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range out.Data {
			out.Data[i] *= inv
		}
		return
	}
	var sum float64
	for i, v := range in.Data {
		e := math.Exp(float64(v - max))
		out.Data[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out.Data {
		out.Data[i] *= inv
	}
}

// Backward implements Layer: full softmax Jacobian-vector product.
// Trainers using fused softmax+cross-entropy pass (p - y) directly to the
// preceding layer instead.
func (s *Softmax) Backward(gradOut *tensor.F32) *tensor.F32 {
	p := s.lastOut
	n := len(p.Data)
	gradIn := tensor.NewF32(n)
	var dot float32
	for i := 0; i < n; i++ {
		dot += gradOut.Data[i] * p.Data[i]
	}
	for i := 0; i < n; i++ {
		gradIn.Data[i] = p.Data[i] * (gradOut.Data[i] - dot)
	}
	return gradIn
}

// Params implements Layer.
func (s *Softmax) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (s *Softmax) MACs(in tensor.Shape) int64 { return 0 }

// Dropout randomly zeroes inputs during training; identity at inference.
type Dropout struct {
	Rate float32
	// Training toggles the stochastic behavior.
	Training bool
	// Rng drives mask sampling; defaults to a fixed-seed source.
	Rng *rand.Rand

	mask []bool
}

// NewDropout creates a dropout layer with the given drop probability.
func NewDropout(rate float32) *Dropout {
	return &Dropout{Rate: rate, Rng: rand.New(rand.NewSource(42))}
}

// Kind implements Layer.
func (d *Dropout) Kind() string { return "dropout" }

// OutShape implements Layer.
func (d *Dropout) OutShape(in tensor.Shape) (tensor.Shape, error) {
	return in.Clone(), nil
}

// Forward implements Layer.
func (d *Dropout) Forward(in *tensor.F32) *tensor.F32 {
	if !d.Training || d.Rate <= 0 {
		d.mask = nil
		return in
	}
	out := tensor.NewF32(in.Shape...)
	d.mask = make([]bool, len(in.Data))
	scale := 1 / (1 - d.Rate)
	for i, v := range in.Data {
		if d.Rng.Float32() >= d.Rate {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// InferInto implements Layer: dropout is the identity at inference.
// Arena drivers alias instead (see Aliases).
func (d *Dropout) InferInto(in, out *tensor.F32) {
	copy(out.Data, in.Data)
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.F32) *tensor.F32 {
	if d.mask == nil {
		return gradOut
	}
	gradIn := tensor.NewF32(gradOut.Shape...)
	scale := 1 / (1 - d.Rate)
	for i, keep := range d.mask {
		if keep {
			gradIn.Data[i] = gradOut.Data[i] * scale
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (d *Dropout) MACs(in tensor.Shape) int64 { return 0 }

// BatchNorm applies per-channel affine normalization using frozen moving
// statistics: y = gamma * (x - mean) / sqrt(var + eps) + beta.
//
// Statistics are frozen (set from calibration data or a pretrained
// checkpoint); gamma and beta remain trainable. At deployment the whole
// layer folds into the preceding convolution (operator fusion, paper
// Sec. 4.5) — see quant.FoldBatchNorm.
type BatchNorm struct {
	Eps float32

	Gamma, Beta  *tensor.F32
	Mean, Var    *tensor.F32
	GGamma, GBta *tensor.F32

	lastIn *tensor.F32
}

// NewBatchNorm creates a batch normalization layer.
func NewBatchNorm() *BatchNorm { return &BatchNorm{Eps: 1e-3} }

// Build allocates parameters for a known channel count.
func (b *BatchNorm) Build(ch int) {
	if b.Gamma != nil && len(b.Gamma.Data) == ch {
		return
	}
	b.Gamma = tensor.NewF32(ch)
	b.Gamma.Fill(1)
	b.Beta = tensor.NewF32(ch)
	b.Mean = tensor.NewF32(ch)
	b.Var = tensor.NewF32(ch)
	b.Var.Fill(1)
	b.GGamma = tensor.NewF32(ch)
	b.GBta = tensor.NewF32(ch)
}

func channels(s tensor.Shape) int { return s[len(s)-1] }

// Kind implements Layer.
func (b *BatchNorm) Kind() string { return "batchnorm" }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("batchnorm: empty shape")
	}
	b.Build(channels(in))
	return in.Clone(), nil
}

// Forward implements Layer.
func (b *BatchNorm) Forward(in *tensor.F32) *tensor.F32 {
	b.Build(channels(in.Shape))
	out := tensor.NewF32(in.Shape...)
	b.InferInto(in, out)
	b.lastIn = in
	return out
}

// InferInto implements Layer.
func (b *BatchNorm) InferInto(in, out *tensor.F32) {
	ch := channels(in.Shape)
	b.Build(ch)
	for i, v := range in.Data {
		c := i % ch
		inv := float32(1 / math.Sqrt(float64(b.Var.Data[c]+b.Eps)))
		out.Data[i] = b.Gamma.Data[c]*(v-b.Mean.Data[c])*inv + b.Beta.Data[c]
	}
}

// Backward implements Layer (statistics frozen, so this is an affine map).
func (b *BatchNorm) Backward(gradOut *tensor.F32) *tensor.F32 {
	ch := channels(b.lastIn.Shape)
	gradIn := tensor.NewF32(b.lastIn.Shape...)
	for i, g := range gradOut.Data {
		c := i % ch
		inv := float32(1 / math.Sqrt(float64(b.Var.Data[c]+b.Eps)))
		norm := (b.lastIn.Data[i] - b.Mean.Data[c]) * inv
		b.GGamma.Data[c] += g * norm
		b.GBta.Data[c] += g
		gradIn.Data[i] = g * b.Gamma.Data[c] * inv
	}
	return gradIn
}

// Params implements Layer.
func (b *BatchNorm) Params() []*tensor.F32 {
	if b.Gamma == nil {
		return nil
	}
	return []*tensor.F32{b.Gamma, b.Beta}
}

// Grads implements Layer.
func (b *BatchNorm) Grads() []*tensor.F32 {
	if b.GGamma == nil {
		return nil
	}
	return []*tensor.F32{b.GGamma, b.GBta}
}

// MACs implements Layer: one multiply-add per element.
func (b *BatchNorm) MACs(in tensor.Shape) int64 { return int64(in.Elems()) }
