package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The convolution layers partition their output rows across a shared
// bounded worker pool when a layer is heavy enough to amortize the
// hand-off. Row chunks are disjoint slices of the output tensor and the
// per-row arithmetic is identical to the sequential path, so the result
// is bitwise-equal to a sequential run for any worker count.

// parallelMACThreshold is the minimum per-layer MAC count before row
// partitioning pays for the goroutine hand-off. Below it (small heads,
// pooled tails) the sequential path is always faster.
const parallelMACThreshold = 64 << 10

// convWorkerOverride, when positive, pins the row-partitioning width
// regardless of GOMAXPROCS. Tests use it to exercise every split.
var convWorkerOverride atomic.Int32

// SetConvWorkers overrides the number of row-partition workers used by
// convolution layers. n <= 0 restores the default (GOMAXPROCS). It
// returns the previous override so tests can restore it.
func SetConvWorkers(n int) int {
	prev := convWorkerOverride.Load()
	if n < 0 {
		n = 0
	}
	convWorkerOverride.Store(int32(n))
	return int(prev)
}

// convWorkers returns the current row-partitioning width.
func convWorkers() int {
	if n := convWorkerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// rowTask is one chunk of output rows handed to the pool.
type rowTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan rowTask
)

// startPool launches the shared bounded worker pool lazily, on the
// first parallel dispatch. Workers live for the process lifetime; the
// queue is bounded and the submitter runs overflow chunks inline, so
// dispatch can never deadlock even if every worker is busy.
func startPool() {
	n := runtime.NumCPU()
	if n < 2 {
		n = 2
	}
	if n > 16 {
		n = 16
	}
	poolCh = make(chan rowTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolCh {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// parallelRows splits [0, rows) into at most convWorkers() contiguous
// chunks and runs fn over them concurrently, blocking until all chunks
// complete. fn must only write output locations owned by its row range.
// The chunk boundaries depend only on rows and the worker setting —
// never on scheduling — and each row's arithmetic is self-contained, so
// output bits are identical across worker counts and interleavings.
//
// Callers must check parallelizable() first and fall back to a direct
// call, keeping the sequential path free of closure allocations.
func parallelRows(rows int, fn func(lo, hi int)) {
	n := convWorkers()
	if n > rows {
		n = rows
	}
	poolOnce.Do(startPool)
	var wg sync.WaitGroup
	wg.Add(n - 1)
	chunk := rows / n
	rem := rows % n
	lo := 0
	// Chunks 1..n-1 go to the pool (inline on overflow); chunk 0 runs
	// on the submitting goroutine so the pool never has to be larger
	// than the machine.
	for i := 1; i < n; i++ {
		size := chunk
		if i <= rem {
			size++
		}
		t := rowTask{fn: fn, lo: rows - lo - size, hi: rows - lo, wg: &wg}
		lo += size
		select {
		case poolCh <- t:
		default:
			t.fn(t.lo, t.hi)
			t.wg.Done()
		}
	}
	fn(0, rows-lo)
	wg.Wait()
}

// parallelizable reports whether a layer with the given output rows and
// MAC count should take the row-partitioned path.
func parallelizable(rows int, macs int64) bool {
	return rows >= 2 && macs >= parallelMACThreshold && convWorkers() > 1
}
