package nn

import (
	"fmt"

	"edgepulse/internal/tensor"
)

// OpSpec describes one layer of a model structurally: enough to rebuild
// the layer (FromSpec), plan memory (profiler), simulate latency (renode)
// and serialize/compile it (tflm, eon).
type OpSpec struct {
	// Kind is the op type, e.g. "conv2d".
	Kind string
	// InShape and OutShape are the single-sample activation shapes.
	InShape, OutShape tensor.Shape
	// MACs is the multiply-accumulate count of one invocation.
	MACs int64
	// WeightElems counts weight scalars stored in flash (params + any
	// frozen state such as batchnorm statistics).
	WeightElems int
	// Attrs holds layer hyperparameters keyed by name.
	Attrs map[string]float64
}

// Spec returns the structural description of every layer in order.
func (m *Model) Spec() ([]OpSpec, error) {
	specs := make([]OpSpec, 0, len(m.Layers))
	in := m.InputShape
	for i, l := range m.Layers {
		out, err := l.OutShape(in)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Kind(), err)
		}
		spec := OpSpec{
			Kind:     l.Kind(),
			InShape:  in.Clone(),
			OutShape: out.Clone(),
			MACs:     l.MACs(in),
			Attrs:    map[string]float64{},
		}
		for _, p := range l.Params() {
			spec.WeightElems += len(p.Data)
		}
		for _, s := range layerState(l) {
			spec.WeightElems += len(s.Data)
		}
		switch v := l.(type) {
		case *Dense:
			spec.Attrs["units"] = float64(v.Units)
			spec.Attrs["activation"] = float64(v.Act)
		case *Conv2D:
			spec.Attrs["filters"] = float64(v.Filters)
			spec.Attrs["kernel"] = float64(v.Kernel)
			spec.Attrs["stride"] = float64(v.Stride)
			spec.Attrs["padding"] = float64(v.Pad)
			spec.Attrs["activation"] = float64(v.Act)
		case *DepthwiseConv2D:
			spec.Attrs["kernel"] = float64(v.Kernel)
			spec.Attrs["stride"] = float64(v.Stride)
			spec.Attrs["padding"] = float64(v.Pad)
			spec.Attrs["activation"] = float64(v.Act)
		case *Conv1D:
			spec.Attrs["filters"] = float64(v.Filters)
			spec.Attrs["kernel"] = float64(v.Kernel)
			spec.Attrs["stride"] = float64(v.Stride)
			spec.Attrs["padding"] = float64(v.Pad)
			spec.Attrs["activation"] = float64(v.Act)
		case *MaxPool2D:
			spec.Attrs["size"] = float64(v.Size)
			spec.Attrs["stride"] = float64(v.Stride)
		case *AvgPool2D:
			spec.Attrs["size"] = float64(v.Size)
			spec.Attrs["stride"] = float64(v.Stride)
		case *MaxPool1D:
			spec.Attrs["size"] = float64(v.Size)
			spec.Attrs["stride"] = float64(v.Stride)
		case *Dropout:
			spec.Attrs["rate"] = float64(v.Rate)
		case *BatchNorm:
			spec.Attrs["eps"] = float64(v.Eps)
		case *Reshape:
			for d, n := range v.Target {
				spec.Attrs[fmt.Sprintf("dim%d", d)] = float64(n)
			}
			spec.Attrs["rank"] = float64(len(v.Target))
		}
		specs = append(specs, spec)
		in = out
	}
	return specs, nil
}

// layerState returns non-trainable tensors that must be serialized with
// the layer (batchnorm moving statistics).
func layerState(l Layer) []*tensor.F32 {
	if bn, ok := l.(*BatchNorm); ok && bn.Mean != nil {
		return []*tensor.F32{bn.Mean, bn.Var}
	}
	return nil
}

// LayerFromSpec reconstructs an untrained layer from its spec.
func LayerFromSpec(s OpSpec) (Layer, error) {
	a := func(k string) int { return int(s.Attrs[k]) }
	switch s.Kind {
	case "dense":
		return NewDense(a("units"), Activation(a("activation"))), nil
	case "conv2d":
		return NewConv2D(a("filters"), a("kernel"), a("stride"), Padding(a("padding")), Activation(a("activation"))), nil
	case "depthwise_conv2d":
		return NewDepthwiseConv2D(a("kernel"), a("stride"), Padding(a("padding")), Activation(a("activation"))), nil
	case "conv1d":
		return NewConv1D(a("filters"), a("kernel"), a("stride"), Padding(a("padding")), Activation(a("activation"))), nil
	case "maxpool2d":
		return NewMaxPool2D(a("size"), a("stride")), nil
	case "avgpool2d":
		return NewAvgPool2D(a("size"), a("stride")), nil
	case "maxpool1d":
		return NewMaxPool1D(a("size"), a("stride")), nil
	case "gap2d":
		return NewGlobalAvgPool2D(), nil
	case "flatten":
		return NewFlatten(), nil
	case "softmax":
		return NewSoftmax(), nil
	case "dropout":
		return NewDropout(float32(s.Attrs["rate"])), nil
	case "batchnorm":
		bn := NewBatchNorm()
		if e, ok := s.Attrs["eps"]; ok {
			bn.Eps = float32(e)
		}
		return bn, nil
	case "reshape":
		rank := a("rank")
		target := make([]int, rank)
		for d := 0; d < rank; d++ {
			target[d] = a(fmt.Sprintf("dim%d", d))
		}
		return NewReshape(target...), nil
	default:
		return nil, fmt.Errorf("nn: unknown op kind %q", s.Kind)
	}
}

// ModelFromSpecs reconstructs a full (untrained) model from specs.
func ModelFromSpecs(inputShape tensor.Shape, specs []OpSpec, numClasses int) (*Model, error) {
	m := NewModel(inputShape...)
	m.NumClasses = numClasses
	for _, s := range specs {
		l, err := LayerFromSpec(s)
		if err != nil {
			return nil, err
		}
		m.Add(l)
	}
	if _, err := m.OutputShape(); err != nil {
		return nil, err
	}
	return m, nil
}

// SerializableTensors returns, in a stable order, every tensor that must
// round-trip through model serialization: trainable params plus frozen
// state.
func SerializableTensors(m *Model) []*tensor.F32 {
	var out []*tensor.F32
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
		out = append(out, layerState(l)...)
	}
	return out
}

// CopyWeights copies all serializable tensors from src to dst; the models
// must have identical architecture.
func CopyWeights(dst, src *Model) error {
	ds := SerializableTensors(dst)
	ss := SerializableTensors(src)
	if len(ds) != len(ss) {
		return fmt.Errorf("nn: tensor count mismatch %d vs %d", len(ds), len(ss))
	}
	for i := range ds {
		if len(ds[i].Data) != len(ss[i].Data) {
			return fmt.Errorf("nn: tensor %d size mismatch %d vs %d", i, len(ds[i].Data), len(ss[i].Data))
		}
		copy(ds[i].Data, ss[i].Data)
	}
	return nil
}

// Clone deep-copies a model (architecture + weights). The clone shares no
// state with the original, so both can train or serve independently.
func (m *Model) Clone() (*Model, error) {
	specs, err := m.Spec()
	if err != nil {
		return nil, err
	}
	c, err := ModelFromSpecs(m.InputShape, specs, m.NumClasses)
	if err != nil {
		return nil, err
	}
	if err := CopyWeights(c, m); err != nil {
		return nil, err
	}
	return c, nil
}
