package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"edgepulse/internal/tensor"
)

// fillRandomF32 fills t with deterministic pseudo-random values spanning
// sign changes and magnitudes (exercises rounding-sensitive paths).
func fillRandomF32(t *tensor.F32, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
}

// inferWithWorkers runs l.InferInto with the row-partition width pinned
// to n, restoring the previous setting afterwards.
func inferWithWorkers(l Layer, in, out *tensor.F32, n int) {
	prev := SetConvWorkers(n)
	defer SetConvWorkers(prev)
	l.InferInto(in, out)
}

// TestParallelConvDeterminism checks that the row-partitioned conv paths
// are bitwise-identical to the sequential path across worker counts 1..8,
// odd spatial shapes, strides and padding modes. Run under -race this
// also proves the chunks are data-race free.
func TestParallelConvDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type tc struct {
		name  string
		layer Layer
		in    tensor.Shape
	}
	var cases []tc
	for _, p := range []Padding{Valid, Same} {
		for _, stride := range []int{1, 2} {
			cases = append(cases,
				tc{
					name:  fmt.Sprintf("conv2d/%v/s%d", p, stride),
					layer: NewConv2D(33, 3, stride, p, ReLU),
					in:    tensor.Shape{15, 13, 7},
				},
				tc{
					name:  fmt.Sprintf("depthwise/%v/s%d", p, stride),
					layer: NewDepthwiseConv2D(3, stride, p, ReLU6),
					in:    tensor.Shape{33, 19, 64},
				},
				tc{
					name:  fmt.Sprintf("conv1d/%v/s%d", p, stride),
					layer: NewConv1D(40, 5, stride, p, None),
					in:    tensor.Shape{201, 13},
				},
			)
		}
	}
	// A tall output with few channels stresses uneven row chunking, and
	// a 4x4 kernel with stride 2 on a single input channel mirrors the
	// KWS head conv.
	cases = append(cases,
		tc{name: "conv2d/tall", layer: NewConv2D(9, 3, 1, Same, None), in: tensor.Shape{97, 5, 16}},
		tc{name: "conv2d/kws-head", layer: NewConv2D(64, 4, 2, Same, ReLU), in: tensor.Shape{49, 10, 1}},
	)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			outShape, err := c.layer.OutShape(c.in)
			if err != nil {
				t.Fatalf("OutShape: %v", err)
			}
			for _, p := range c.layer.Params() {
				fillRandomF32(p, rng)
			}
			in := tensor.NewF32(c.in...)
			fillRandomF32(in, rng)
			want := tensor.NewF32(outShape...)
			inferWithWorkers(c.layer, in, want, 1)
			if !parallelizable(outShape[0], c.layer.MACs(c.in)) {
				prev := SetConvWorkers(2)
				ok := parallelizable(outShape[0], c.layer.MACs(c.in))
				SetConvWorkers(prev)
				if !ok {
					t.Fatalf("case below parallel MAC threshold; grow the shape so the parallel path is exercised")
				}
			}
			for workers := 2; workers <= 8; workers++ {
				got := tensor.NewF32(outShape...)
				inferWithWorkers(c.layer, in, got, workers)
				for i := range want.Data {
					if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
						t.Fatalf("workers=%d: elem %d = %v (bits %#x), sequential %v (bits %#x)",
							workers, i, got.Data[i], math.Float32bits(got.Data[i]),
							want.Data[i], math.Float32bits(want.Data[i]))
					}
				}
			}
		})
	}
}

// TestParallelRowsCoverage checks the chunk planner covers [0, rows)
// exactly once for every rows/worker combination, including workers >
// rows and worker counts above the pool size.
func TestParallelRowsCoverage(t *testing.T) {
	for rows := 1; rows <= 40; rows++ {
		for workers := 1; workers <= 12; workers++ {
			prev := SetConvWorkers(workers)
			hits := make([]int32, rows)
			var mu chan struct{} = make(chan struct{}, 1)
			mu <- struct{}{}
			parallelRows(rows, func(lo, hi int) {
				if lo < 0 || hi > rows || lo > hi {
					t.Errorf("rows=%d workers=%d: bad chunk [%d,%d)", rows, workers, lo, hi)
				}
				<-mu
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu <- struct{}{}
			})
			SetConvWorkers(prev)
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("rows=%d workers=%d: row %d computed %d times", rows, workers, i, h)
				}
			}
		}
	}
}

// TestSetConvWorkersDefault checks the override round-trips and that the
// default tracks GOMAXPROCS.
func TestSetConvWorkersDefault(t *testing.T) {
	prev := SetConvWorkers(3)
	if got := convWorkers(); got != 3 {
		t.Fatalf("convWorkers() = %d, want 3", got)
	}
	SetConvWorkers(0)
	if got, want := convWorkers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("convWorkers() default = %d, want GOMAXPROCS %d", got, want)
	}
	SetConvWorkers(int(prev))
}

// benchConvParallel measures the DS-CNN pointwise conv body (the KWS
// hot path) at a given worker count.
func benchConvParallel(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	layer := NewConv2D(64, 1, 1, Same, ReLU)
	in := tensor.NewF32(25, 5, 64)
	fillRandomF32(in, rng)
	outShape, err := layer.OutShape(in.Shape)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range layer.Params() {
		fillRandomF32(p, rng)
	}
	out := tensor.NewF32(outShape...)
	prev := SetConvWorkers(workers)
	defer SetConvWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.InferInto(in, out)
	}
}

func BenchmarkConv2DPointwiseSeq(b *testing.B)      { benchConvParallel(b, 1) }
func BenchmarkConv2DPointwiseWorkers2(b *testing.B) { benchConvParallel(b, 2) }
func BenchmarkConv2DPointwiseWorkers4(b *testing.B) { benchConvParallel(b, 4) }
