package nn

import (
	"fmt"

	"edgepulse/internal/tensor"
)

// Reshape reinterprets the input as a new shape with the same element
// count, e.g. MFCC [49, 13] features into a conv2d [49, 13, 1] image.
type Reshape struct {
	Target tensor.Shape

	lastShape tensor.Shape
}

// NewReshape creates a reshape layer to the target shape.
func NewReshape(target ...int) *Reshape {
	return &Reshape{Target: tensor.Shape(target).Clone()}
}

// Kind implements Layer.
func (r *Reshape) Kind() string { return "reshape" }

// OutShape implements Layer.
func (r *Reshape) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if in.Elems() != r.Target.Elems() {
		return nil, fmt.Errorf("reshape: %v (%d elems) incompatible with %v (%d elems)",
			in, in.Elems(), r.Target, r.Target.Elems())
	}
	return r.Target.Clone(), nil
}

// Forward implements Layer.
func (r *Reshape) Forward(in *tensor.F32) *tensor.F32 {
	r.lastShape = in.Shape
	return &tensor.F32{Shape: r.Target.Clone(), Data: in.Data}
}

// InferInto implements Layer. Arena drivers alias instead (see Aliases).
func (r *Reshape) InferInto(in, out *tensor.F32) {
	copy(out.Data, in.Data)
}

// Backward implements Layer.
func (r *Reshape) Backward(gradOut *tensor.F32) *tensor.F32 {
	return &tensor.F32{Shape: r.lastShape, Data: gradOut.Data}
}

// Params implements Layer.
func (r *Reshape) Params() []*tensor.F32 { return nil }

// Grads implements Layer.
func (r *Reshape) Grads() []*tensor.F32 { return nil }

// MACs implements Layer.
func (r *Reshape) MACs(in tensor.Shape) int64 { return 0 }
