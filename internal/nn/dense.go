package nn

import (
	"fmt"
	"math"

	"edgepulse/internal/fastmath"
	"edgepulse/internal/simd"
	"edgepulse/internal/tensor"
)

func sigmoid(v float32) float32 {
	if fastmath.Enabled() {
		return fastmath.SigmoidFast(v)
	}
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// Dense is a fully connected layer: out = act(W·x + b), W is [in][out].
type Dense struct {
	Units int
	Act   Activation

	W, B   *tensor.F32
	GW, GB *tensor.F32

	lastIn  *tensor.F32
	lastOut *tensor.F32
}

// NewDense creates a dense layer; weights are allocated lazily on the
// first OutShape/Forward call once the input size is known, or eagerly
// via Build.
func NewDense(units int, act Activation) *Dense {
	return &Dense{Units: units, Act: act}
}

// Build allocates parameters for a known input size.
func (d *Dense) Build(in int) {
	if d.W != nil && d.W.Shape[0] == in {
		return
	}
	d.W = tensor.NewF32(in, d.Units)
	d.B = tensor.NewF32(d.Units)
	d.GW = tensor.NewF32(in, d.Units)
	d.GB = tensor.NewF32(d.Units)
}

// Kind implements Layer.
func (d *Dense) Kind() string { return "dense" }

// OutShape implements Layer.
func (d *Dense) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("dense: want rank-1 input, got %v (add Flatten first)", in)
	}
	d.Build(in[0])
	return tensor.Shape{d.Units}, nil
}

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.F32) *tensor.F32 {
	d.Build(len(in.Data))
	out := tensor.NewF32(d.Units)
	d.InferInto(in, out)
	d.lastIn = in
	d.lastOut = out
	return out
}

// InferInto implements Layer. The whole matrix-vector product is one
// simd.ConvAccF32 rank-1 accumulation sweep: inputs iterate in the outer
// loop over Units-contiguous weight rows, so per output unit the
// addition order is unchanged from the historical scalar loop.
func (d *Dense) InferInto(in, out *tensor.F32) {
	d.Build(len(in.Data))
	copy(out.Data, d.B.Data)
	simd.ConvAccF32(out.Data, d.W.Data, in.Data, d.Units)
	d.Act.applyTo(out.Data)
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.F32) *tensor.F32 {
	nIn := len(d.lastIn.Data)
	gradIn := tensor.NewF32(nIn)
	for j := 0; j < d.Units; j++ {
		g := gradOut.Data[j] * d.Act.grad(d.lastOut.Data[j])
		d.GB.Data[j] += g
		for i := 0; i < nIn; i++ {
			d.GW.Data[i*d.Units+j] += g * d.lastIn.Data[i]
			gradIn.Data[i] += g * d.W.Data[i*d.Units+j]
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.F32 {
	if d.W == nil {
		return nil
	}
	return []*tensor.F32{d.W, d.B}
}

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.F32 {
	if d.GW == nil {
		return nil
	}
	return []*tensor.F32{d.GW, d.GB}
}

// MACs implements Layer.
func (d *Dense) MACs(in tensor.Shape) int64 {
	return int64(in.Elems()) * int64(d.Units)
}
