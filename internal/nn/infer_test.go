package nn

import (
	"math/rand"
	"sync"
	"testing"

	"edgepulse/internal/tensor"
)

// refConv2D is the pre-reorder filter-major conv2d loop, kept as the
// golden reference for the contiguous-access kernel.
func refConv2D(c *Conv2D, in *tensor.F32) *tensor.F32 {
	h, w, cin := in.Shape[0], in.Shape[1], in.Shape[2]
	oh := convOutDim(h, c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(w, c.Kernel, c.Stride, c.Pad)
	py := padOffset(h, c.Kernel, c.Stride, c.Pad)
	px := padOffset(w, c.Kernel, c.Stride, c.Pad)
	out := tensor.NewF32(oh, ow, c.Filters)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for f := 0; f < c.Filters; f++ {
				s := c.B.Data[f]
				for ky := 0; ky < c.Kernel; ky++ {
					iy := oy*c.Stride + ky - py
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.Kernel; kx++ {
						ix := ox*c.Stride + kx - px
						if ix < 0 || ix >= w {
							continue
						}
						inBase := (iy*w + ix) * cin
						wBase := ((ky*c.Kernel + kx) * cin) * c.Filters
						for ci := 0; ci < cin; ci++ {
							s += in.Data[inBase+ci] * c.W.Data[wBase+ci*c.Filters+f]
						}
					}
				}
				out.Data[(oy*ow+ox)*c.Filters+f] = c.Act.apply(s)
			}
		}
	}
	return out
}

// refDense is the pre-reorder output-major dense loop.
func refDense(d *Dense, in *tensor.F32) *tensor.F32 {
	out := tensor.NewF32(d.Units)
	nIn := len(in.Data)
	for j := 0; j < d.Units; j++ {
		s := d.B.Data[j]
		for i := 0; i < nIn; i++ {
			s += in.Data[i] * d.W.Data[i*d.Units+j]
		}
		out.Data[j] = d.Act.apply(s)
	}
	return out
}

// refDepthwise is the pre-reorder channel-major depthwise loop.
func refDepthwise(c *DepthwiseConv2D, in *tensor.F32) *tensor.F32 {
	h, w, ch := in.Shape[0], in.Shape[1], in.Shape[2]
	oh := convOutDim(h, c.Kernel, c.Stride, c.Pad)
	ow := convOutDim(w, c.Kernel, c.Stride, c.Pad)
	py := padOffset(h, c.Kernel, c.Stride, c.Pad)
	px := padOffset(w, c.Kernel, c.Stride, c.Pad)
	out := tensor.NewF32(oh, ow, ch)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			for ci := 0; ci < ch; ci++ {
				s := c.B.Data[ci]
				for ky := 0; ky < c.Kernel; ky++ {
					iy := oy*c.Stride + ky - py
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < c.Kernel; kx++ {
						ix := ox*c.Stride + kx - px
						if ix < 0 || ix >= w {
							continue
						}
						s += in.Data[(iy*w+ix)*ch+ci] * c.W.Data[(ky*c.Kernel+kx)*ch+ci]
					}
				}
				out.Data[(oy*ow+ox)*ch+ci] = c.Act.apply(s)
			}
		}
	}
	return out
}

func randTensor(rng *rand.Rand, shape ...int) *tensor.F32 {
	t := tensor.NewF32(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func fillParams(rng *rand.Rand, params []*tensor.F32) {
	for _, p := range params {
		for i := range p.Data {
			p.Data[i] = float32(rng.NormFloat64())
		}
	}
}

// TestConv2DReorderBitwiseIdentical proves the contiguous-access kernel
// reproduces the historical loop order bit for bit: per output element
// the float accumulation sequence is unchanged.
func TestConv2DReorderBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, cfg := range []struct {
		filters, kernel, stride int
		pad                     Padding
		act                     Activation
	}{
		{8, 3, 1, Same, ReLU},
		{5, 4, 2, Same, None},
		{3, 3, 1, Valid, ReLU6},
		{16, 1, 1, Same, ReLU},
	} {
		c := NewConv2D(cfg.filters, cfg.kernel, cfg.stride, cfg.pad, cfg.act)
		in := randTensor(rng, 9, 7, 3)
		c.Build(3)
		fillParams(rng, c.Params())
		got := c.Forward(in)
		want := refConv2D(c, in)
		if !got.Shape.Equal(want.Shape) {
			t.Fatalf("%+v: shape %v != %v", cfg, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%+v: elem %d: %v != %v (must be bitwise identical)", cfg, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestDepthwiseReorderBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, stride := range []int{1, 2} {
		c := NewDepthwiseConv2D(3, stride, Same, ReLU)
		in := randTensor(rng, 8, 6, 4)
		c.Build(4)
		fillParams(rng, c.Params())
		got := c.Forward(in)
		want := refDepthwise(c, in)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("stride %d elem %d: %v != %v", stride, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestDenseReorderBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := NewDense(17, ReLU)
	in := randTensor(rng, 31)
	d.Build(31)
	fillParams(rng, d.Params())
	got := d.Forward(in)
	want := refDense(d, in)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("elem %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

// testModel builds a small DS-CNN-style stack covering every hot-path op
// kind, including aliasing layers.
func testModel(t testing.TB) *Model {
	t.Helper()
	m := NewModel(12, 10)
	m.NumClasses = 4
	m.Add(NewReshape(12, 10, 1)).
		Add(NewConv2D(8, 3, 2, Same, ReLU)).
		Add(NewDepthwiseConv2D(3, 1, Same, ReLU)).
		Add(NewConv2D(8, 1, 1, Same, ReLU)).
		Add(NewMaxPool2D(2, 0)).
		Add(NewGlobalAvgPool2D()).
		Add(NewDropout(0.5)).
		Add(NewDense(4, None)).
		Add(NewSoftmax())
	if err := InitWeights(m, 77); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInferPlanMatchesTrainingForward is the arena-backed golden check:
// the pooled plan path must reproduce the stateful per-layer path
// bitwise, across repeated (buffer-reusing) calls.
func TestInferPlanMatchesTrainingForward(t *testing.T) {
	m := testModel(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		in := randTensor(rng, 12, 10)
		want := m.ForwardTraining(in)
		got := m.Forward(in)
		if !got.Shape.Equal(want.Shape) {
			t.Fatalf("shape %v != %v", got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d elem %d: %v != %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestForwardSteadyStateAllocs pins the hot-path allocation budget: the
// pooled inference path must stay within a handful of allocations (the
// cloned result), regardless of model depth.
func TestForwardSteadyStateAllocs(t *testing.T) {
	m := testModel(t)
	in := randTensor(rand.New(rand.NewSource(6)), 12, 10)
	m.Forward(in) // warm the plan and pool
	allocs := testing.AllocsPerRun(50, func() { m.Forward(in) })
	if allocs > 4 {
		t.Errorf("Forward allocates %v per run, want <= 4", allocs)
	}
}

// TestForwardConcurrentNoAliasing runs many concurrent inferences on one
// model and checks every result against the serial answer — catching
// both data races (under -race) and pooled-scratch aliasing bugs.
func TestForwardConcurrentNoAliasing(t *testing.T) {
	m := testModel(t)
	rng := rand.New(rand.NewSource(7))
	const nInputs = 8
	ins := make([]*tensor.F32, nInputs)
	wants := make([]*tensor.F32, nInputs)
	for i := range ins {
		ins[i] = randTensor(rng, 12, 10)
		wants[i] = m.Forward(ins[i])
	}
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				k := (g + iter) % nInputs
				got := m.Forward(ins[k])
				for i := range wants[k].Data {
					if got.Data[i] != wants[k].Data[i] {
						select {
						case errc <- "concurrent result diverged from serial":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if msg, ok := <-errc; ok {
		t.Fatal(msg)
	}
}

func TestInferPlanOffsetsValidation(t *testing.T) {
	m := testModel(t)
	if _, err := NewInferPlanOffsets(m, []int{0}, 10); err == nil {
		t.Error("accepted too few offsets")
	}
	if _, err := NewInferPlanOffsets(m, []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 1); err == nil {
		t.Error("accepted offsets exceeding arena")
	}
}

func TestInferPlanRejectsWrongShape(t *testing.T) {
	m := testModel(t)
	p, err := NewInferPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(tensor.NewF32(3, 3)); err == nil {
		t.Error("plan accepted mismatched input shape")
	}
}

func benchInput(b *testing.B, shape ...int) *tensor.F32 {
	b.Helper()
	return randTensor(rand.New(rand.NewSource(1)), shape...)
}

func BenchmarkConv2DForward(b *testing.B) {
	c := NewConv2D(64, 3, 1, Same, ReLU)
	c.Build(64)
	fillParams(rand.New(rand.NewSource(2)), c.Params())
	in := benchInput(b, 25, 5, 64)
	out := tensor.NewF32(25, 5, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InferInto(in, out)
	}
}

func BenchmarkDepthwiseConv2DForward(b *testing.B) {
	c := NewDepthwiseConv2D(3, 1, Same, ReLU)
	c.Build(64)
	fillParams(rand.New(rand.NewSource(3)), c.Params())
	in := benchInput(b, 25, 5, 64)
	out := tensor.NewF32(25, 5, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.InferInto(in, out)
	}
}

func BenchmarkDenseForward(b *testing.B) {
	d := NewDense(64, ReLU)
	d.Build(256)
	fillParams(rand.New(rand.NewSource(4)), d.Params())
	in := benchInput(b, 256)
	out := tensor.NewF32(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.InferInto(in, out)
	}
}
