// Package nn is a from-scratch neural network library sized for TinyML
// workloads: single-sample (microcontroller-style) forward inference and
// CPU backpropagation for training the paper's model families (DS-CNN,
// MobileNet-style depthwise-separable networks, small conv stacks).
//
// Layers follow TFLite conventions: channels-last activations, fused
// activation functions on compute layers, and explicit pooling/flatten
// layers. A Model is a sequential stack; its Spec() describes every op
// with shapes and MAC counts for the profiler, device simulator, TFLM
// interpreter and EON compiler.
package nn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"edgepulse/internal/simd"
	"edgepulse/internal/tensor"
)

// Activation is a fused activation applied by compute layers.
type Activation int

// Supported fused activations.
const (
	None Activation = iota
	ReLU
	ReLU6
	Sigmoid
)

func (a Activation) String() string {
	switch a {
	case None:
		return "none"
	case ReLU:
		return "relu"
	case ReLU6:
		return "relu6"
	case Sigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(v float32) float32 {
	switch a {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	case ReLU6:
		if v < 0 {
			return 0
		}
		if v > 6 {
			return 6
		}
		return v
	case Sigmoid:
		return sigmoid(v)
	default:
		return v
	}
}

// applyTo applies a fused activation to a whole output row, taking the
// vectorized clamps for ReLU/ReLU6 (bitwise-identical to apply, see
// package simd) and the scalar path otherwise.
func (a Activation) applyTo(x []float32) {
	switch a {
	case None:
	case ReLU:
		simd.ReLUF32(x)
	case ReLU6:
		simd.ReLU6F32(x)
	default:
		for i, v := range x {
			x[i] = a.apply(v)
		}
	}
}

// grad returns d(act(x))/dx given the activation output y.
func (a Activation) grad(y float32) float32 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ReLU6:
		if y > 0 && y < 6 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// Layer is one operation in a sequential model.
type Layer interface {
	// Kind returns the op type identifier, e.g. "conv2d".
	Kind() string
	// OutShape returns the output shape for the given input shape.
	OutShape(in tensor.Shape) (tensor.Shape, error)
	// Forward runs inference, caching whatever Backward needs.
	Forward(in *tensor.F32) *tensor.F32
	// InferInto runs stateless inference, writing the result into out,
	// which the caller has shaped per OutShape. It mutates no layer
	// state, so one layer may serve concurrent inferences as long as
	// each caller owns its out tensor. Layers whose inference is the
	// identity (flatten, reshape, dropout) copy; arena-backed drivers
	// skip the call and alias the buffers instead (see Aliases).
	InferInto(in, out *tensor.F32)
	// Backward consumes the gradient w.r.t. this layer's output and
	// returns the gradient w.r.t. its input, accumulating parameter
	// gradients. It must be called after Forward.
	Backward(gradOut *tensor.F32) *tensor.F32
	// Params returns trainable parameter tensors (possibly empty).
	Params() []*tensor.F32
	// Grads returns gradient tensors matching Params element-wise.
	Grads() []*tensor.F32
	// MACs returns multiply-accumulate count for the given input shape.
	MACs(in tensor.Shape) int64
}

// Model is a sequential stack of layers with a fixed input shape.
type Model struct {
	// InputShape is the feature tensor shape the model consumes.
	InputShape tensor.Shape
	// Layers, applied in order.
	Layers []Layer
	// NumClasses is the output dimensionality (for classifiers).
	NumClasses int

	// plan caches the arena-backed inference plan behind Forward. It is
	// rebuilt lazily whenever the layer stack changes.
	plan atomic.Pointer[InferPlan]
	// fallbackMu serializes Forward's lenient rerouting to the stateful
	// ForwardTraining path (nonstandard input shapes), which mutates
	// per-layer state and would otherwise race under concurrent Forward.
	fallbackMu sync.Mutex
}

// NewModel builds an empty model for the given input shape.
func NewModel(inputShape ...int) *Model {
	return &Model{InputShape: tensor.Shape(inputShape).Clone()}
}

// Add appends a layer and returns the model for chaining.
func (m *Model) Add(l Layer) *Model {
	m.Layers = append(m.Layers, l)
	m.plan.Store(nil) // the cached inference plan is stale
	return m
}

// OutputShape computes the final output shape, validating every layer.
func (m *Model) OutputShape() (tensor.Shape, error) {
	s := m.InputShape
	for i, l := range m.Layers {
		var err error
		s, err = l.OutShape(s)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Kind(), err)
		}
	}
	return s, nil
}

// Forward runs single-sample inference through all layers on the
// model's pooled scratch arena: steady-state calls reuse activation
// buffers instead of allocating per layer, and concurrent calls are safe
// because every invocation draws its own scratch from the pool. The
// returned tensor is freshly allocated and never aliases the arena.
//
// Training code must use ForwardTraining, which caches the per-layer
// state Backward consumes.
func (m *Model) Forward(in *tensor.F32) *tensor.F32 {
	p := m.plan.Load()
	if p == nil || len(p.steps) != len(m.Layers) {
		np, err := NewInferPlan(m)
		if err != nil {
			return m.forwardFallback(in)
		}
		m.plan.Store(np)
		p = np
	}
	out, err := p.Run(in)
	if err != nil {
		// Nonstandard input shapes keep the historical lenient behavior.
		return m.forwardFallback(in)
	}
	return out
}

// forwardFallback serializes the stateful per-layer path so concurrent
// Forward calls stay safe even when they cannot use the plan.
func (m *Model) forwardFallback(in *tensor.F32) *tensor.F32 {
	m.fallbackMu.Lock()
	defer m.fallbackMu.Unlock()
	return m.ForwardTraining(in)
}

// ForwardTraining runs inference through the stateful per-layer path,
// caching the activations Backward needs. It allocates per layer and
// must not be called concurrently on one model.
func (m *Model) ForwardTraining(in *tensor.F32) *tensor.F32 {
	x := in
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// ForwardTo runs inference through the first n layers and returns the
// intermediate activation (used for embeddings in active learning).
func (m *Model) ForwardTo(in *tensor.F32, n int) *tensor.F32 {
	x := in
	for i := 0; i < n && i < len(m.Layers); i++ {
		x = m.Layers[i].Forward(x)
	}
	return x
}

// Backward backpropagates from the output gradient through all layers.
func (m *Model) Backward(gradOut *tensor.F32) *tensor.F32 {
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
	return g
}

// Params returns all trainable tensors in layer order.
func (m *Model) Params() []*tensor.F32 {
	var out []*tensor.F32
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradient tensors matching Params.
func (m *Model) Grads() []*tensor.F32 {
	var out []*tensor.F32
	for _, l := range m.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, g := range m.Grads() {
		g.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// MACs returns the total multiply-accumulate count of one inference.
func (m *Model) MACs() int64 {
	var total int64
	s := m.InputShape
	for _, l := range m.Layers {
		total += l.MACs(s)
		var err error
		s, err = l.OutShape(s)
		if err != nil {
			return total
		}
	}
	return total
}

// Validate checks that the layer stack is shape-consistent and that the
// final output matches NumClasses when set.
func (m *Model) Validate() error {
	if !m.InputShape.Valid() {
		return fmt.Errorf("nn: invalid input shape %v", m.InputShape)
	}
	out, err := m.OutputShape()
	if err != nil {
		return err
	}
	if m.NumClasses > 0 && out.Elems() != m.NumClasses {
		return fmt.Errorf("nn: output %v has %d elems, want %d classes", out, out.Elems(), m.NumClasses)
	}
	return nil
}
