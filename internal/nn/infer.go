package nn

import (
	"fmt"
	"sync"

	"edgepulse/internal/tensor"
)

// Aliases reports whether an op kind is an identity over its input data
// at inference time (flatten, reshape, dropout): arena-backed executors
// give such ops a view of the input buffer instead of output storage.
// The memory profiler uses the same predicate when planning arenas.
func Aliases(kind string) bool {
	switch kind {
	case "flatten", "reshape", "dropout":
		return true
	}
	return false
}

// planStep is one bound kernel call of an InferPlan.
type planStep struct {
	layer Layer
	// shape is the output shape; shared read-only across run states.
	shape tensor.Shape
	elems int
	// off is the output offset in the scratch arena (float32 elements);
	// -1 for aliasing steps, whose output is a view of the input.
	off   int
	alias bool
}

// InferPlan is a precomputed, arena-backed execution plan for stateless
// model inference. Building the plan resolves every layer's output shape
// and assigns each non-aliasing output a fixed offset in a scratch
// arena; running it performs direct kernel calls into that arena with no
// steady-state allocation. The plan is immutable and safe for concurrent
// Run calls: per-call mutable state (the arena and tensor headers) is
// drawn from an internal pool, and the returned tensor is freshly
// allocated so it never aliases pooled memory.
type InferPlan struct {
	input tensor.Shape
	steps []planStep
	// arenaLen is the scratch arena size in float32 elements.
	arenaLen int
	pool     sync.Pool
}

// inferState is the per-call mutable state of one plan execution.
type inferState struct {
	arena []float32
	outs  []tensor.F32
}

// NewInferPlan builds a plan over a sequentially bumped arena: every
// non-aliasing layer output gets its own slot (no lifetime reuse). This
// is the default used by Model.Forward; the EON compiler supplies
// liveness-planned offsets via NewInferPlanOffsets instead.
func NewInferPlan(m *Model) (*InferPlan, error) {
	return newInferPlan(m, nil, 0)
}

// NewInferPlanOffsets builds a plan whose i-th non-aliasing layer output
// lives at offsets[i] (in float32 elements) inside an arena of arenaLen
// elements. Offsets typically come from the profiler's liveness-based
// arena planner; the caller is responsible for their lifetime validity.
func NewInferPlanOffsets(m *Model, offsets []int, arenaLen int) (*InferPlan, error) {
	if offsets == nil {
		offsets = []int{}
	}
	return newInferPlan(m, offsets, arenaLen)
}

func newInferPlan(m *Model, offsets []int, arenaLen int) (*InferPlan, error) {
	if !m.InputShape.Valid() {
		return nil, fmt.Errorf("nn: invalid input shape %v", m.InputShape)
	}
	p := &InferPlan{input: m.InputShape.Clone()}
	in := p.input
	next := 0 // bump cursor for the default layout
	nOut := 0 // planned-offset cursor
	for i, l := range m.Layers {
		out, err := l.OutShape(in)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Kind(), err)
		}
		st := planStep{layer: l, shape: out.Clone(), elems: out.Elems(), off: -1}
		switch {
		case Aliases(l.Kind()):
			st.alias = true
		case offsets != nil:
			if nOut >= len(offsets) {
				return nil, fmt.Errorf("nn: plan has %d offsets, needs more", len(offsets))
			}
			st.off = offsets[nOut]
			if st.off < 0 || st.off+st.elems > arenaLen {
				return nil, fmt.Errorf("nn: offset %d + %d elems exceeds arena %d", st.off, st.elems, arenaLen)
			}
			nOut++
		default:
			st.off = next
			next += st.elems
		}
		p.steps = append(p.steps, st)
		in = out
	}
	if offsets != nil {
		if nOut != len(offsets) {
			return nil, fmt.Errorf("nn: %d offsets supplied, %d non-aliasing layers", len(offsets), nOut)
		}
		p.arenaLen = arenaLen
	} else {
		p.arenaLen = next
	}
	p.pool.New = func() any {
		s := &inferState{
			arena: make([]float32, p.arenaLen),
			outs:  make([]tensor.F32, len(p.steps)),
		}
		for i := range p.steps {
			st := &p.steps[i]
			s.outs[i].Shape = st.shape
			if !st.alias {
				s.outs[i].Data = s.arena[st.off : st.off+st.elems]
			}
		}
		return s
	}
	return p, nil
}

// InputShape returns the plan's expected input shape.
func (p *InferPlan) InputShape() tensor.Shape { return p.input.Clone() }

// ArenaBytes returns the scratch arena footprint of one execution.
func (p *InferPlan) ArenaBytes() int64 { return int64(p.arenaLen) * 4 }

// NumSteps returns the number of bound kernel calls.
func (p *InferPlan) NumSteps() int { return len(p.steps) }

// Run executes one inference. It is safe to call concurrently.
func (p *InferPlan) Run(in *tensor.F32) (*tensor.F32, error) {
	if !in.Shape.Equal(p.input) {
		return nil, fmt.Errorf("nn: input shape %v != plan input %v", in.Shape, p.input)
	}
	s := p.pool.Get().(*inferState)
	x := in
	for i := range p.steps {
		st := &p.steps[i]
		out := &s.outs[i]
		if st.alias {
			out.Data = x.Data[:st.elems]
		} else {
			st.layer.InferInto(x, out)
		}
		x = out
	}
	res := x.Clone()
	p.pool.Put(s)
	return res, nil
}
