package nn

import (
	"math"
	"math/rand"
)

// InitWeights initializes all trainable weights with fan-in-scaled
// Gaussian noise (He initialization for ReLU-family activations, Glorot
// otherwise) and zero biases. It forces lazy layer construction first, so
// the model must have a valid InputShape. Deterministic for a given seed.
func InitWeights(m *Model, seed int64) error {
	if _, err := m.OutputShape(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *Dense:
			fanIn := v.W.Shape[0]
			initTensor(rng, v.W.Data, fanIn, v.Act)
		case *Conv2D:
			fanIn := v.Kernel * v.Kernel * v.W.Shape[2]
			initTensor(rng, v.W.Data, fanIn, v.Act)
		case *DepthwiseConv2D:
			fanIn := v.Kernel * v.Kernel
			initTensor(rng, v.W.Data, fanIn, v.Act)
		case *Conv1D:
			fanIn := v.Kernel * v.W.Shape[1]
			initTensor(rng, v.W.Data, fanIn, v.Act)
		}
	}
	return nil
}

func initTensor(rng *rand.Rand, data []float32, fanIn int, act Activation) {
	var std float64
	switch act {
	case ReLU, ReLU6:
		std = math.Sqrt(2 / float64(fanIn)) // He
	default:
		std = math.Sqrt(1 / float64(fanIn)) // Glorot-ish
	}
	for i := range data {
		data[i] = float32(rng.NormFloat64() * std)
	}
}

// InitClassifierBias sets the bias of the final Dense layer to the log of
// the class priors, one of the training stabilizers the paper lists
// ("classifier bias initialisation", Sec. 4.3). Priors must sum to ~1.
func InitClassifierBias(m *Model, priors []float64) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if d, ok := m.Layers[i].(*Dense); ok {
			if d.B == nil || len(d.B.Data) != len(priors) {
				return
			}
			for j, p := range priors {
				if p < 1e-9 {
					p = 1e-9
				}
				d.B.Data[j] = float32(math.Log(p))
			}
			return
		}
	}
}
