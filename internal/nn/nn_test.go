package nn

import (
	"math"
	"math/rand"
	"testing"

	"edgepulse/internal/tensor"
)

func randInput(rng *rand.Rand, shape ...int) *tensor.F32 {
	t := tensor.NewF32(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// lossOf computes a simple quadratic loss 0.5*sum(out^2) whose gradient
// w.r.t. the output is the output itself — convenient for grad checking.
func lossOf(out *tensor.F32) float64 {
	var s float64
	for _, v := range out.Data {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

// checkGradients numerically verifies parameter and input gradients of a
// layer for a given input.
func checkGradients(t *testing.T, layer Layer, in *tensor.F32, tol float64) {
	t.Helper()
	// Force build.
	if _, err := layer.OutShape(in.Shape); err != nil {
		t.Fatalf("OutShape: %v", err)
	}
	out := layer.Forward(in)
	gradOut := out.Clone() // dL/dout = out for the quadratic loss
	for _, g := range layer.Grads() {
		g.Zero()
	}
	gradIn := layer.Backward(gradOut)

	const eps = 1e-3
	// Parameter gradients.
	for pi, p := range layer.Params() {
		g := layer.Grads()[pi]
		for i := 0; i < len(p.Data); i += 1 + len(p.Data)/17 { // sample indices
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := lossOf(layer.Forward(in))
			p.Data[i] = orig - eps
			lm := lossOf(layer.Forward(in))
			p.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			got := float64(g.Data[i])
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("%s param %d[%d]: grad %g, numeric %g", layer.Kind(), pi, i, got, want)
			}
		}
	}
	// Input gradients.
	for i := 0; i < len(in.Data); i += 1 + len(in.Data)/17 {
		orig := in.Data[i]
		in.Data[i] = orig + eps
		lp := lossOf(layer.Forward(in))
		in.Data[i] = orig - eps
		lm := lossOf(layer.Forward(in))
		in.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		got := float64(gradIn.Data[i])
		if math.Abs(got-want) > tol*(1+math.Abs(want)) {
			t.Errorf("%s input[%d]: grad %g, numeric %g", layer.Kind(), i, got, want)
		}
	}
	// Restore cached state for any later use.
	layer.Forward(in)
}

func TestDenseKnownValues(t *testing.T) {
	d := NewDense(2, None)
	d.Build(3)
	// W[in][out]
	copy(d.W.Data, []float32{1, 2, 3, 4, 5, 6}) // row i: [i*2, i*2+1]
	copy(d.B.Data, []float32{0.5, -0.5})
	out := d.Forward(tensor.MustFromSlice([]float32{1, 1, 1}, 3))
	// out0 = 1+3+5+0.5 = 9.5; out1 = 2+4+6-0.5 = 11.5
	if out.Data[0] != 9.5 || out.Data[1] != 11.5 {
		t.Fatalf("out = %v", out.Data)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, act := range []Activation{None, ReLU, Sigmoid} {
		d := NewDense(4, act)
		d.Build(6)
		initTensor(rng, d.W.Data, 6, act)
		checkGradients(t, d, randInput(rng, 6), 2e-2)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, single channel, 2x2 kernel of ones, valid padding:
	// each output = sum of 2x2 window.
	c := NewConv2D(1, 2, 1, Valid, None)
	c.Build(1)
	for i := range c.W.Data {
		c.W.Data[i] = 1
	}
	in := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 3, 3, 1)
	out := c.Forward(in)
	want := []float32{12, 16, 24, 28}
	if !out.Shape.Equal([]int{2, 2, 1}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], want[i])
		}
	}
}

func TestConv2DSamePaddingShape(t *testing.T) {
	c := NewConv2D(8, 3, 2, Same, ReLU)
	out, err := c.OutShape(tensor.Shape{49, 10, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal([]int{25, 5, 8}) {
		t.Fatalf("shape = %v, want [25x5x8]", out)
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, pad := range []Padding{Valid, Same} {
		for _, act := range []Activation{None, ReLU} {
			c := NewConv2D(3, 3, 2, pad, act)
			c.Build(2)
			initTensor(rng, c.W.Data, 18, act)
			checkGradients(t, c, randInput(rng, 6, 5, 2), 2e-2)
		}
	}
}

func TestDepthwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewDepthwiseConv2D(3, 1, Same, ReLU)
	c.Build(3)
	initTensor(rng, c.W.Data, 9, ReLU)
	checkGradients(t, c, randInput(rng, 5, 5, 3), 2e-2)
}

func TestDepthwiseChannelIsolation(t *testing.T) {
	// A depthwise conv must not mix channels: zero out channel 1's
	// weights and its output must be the bias only.
	c := NewDepthwiseConv2D(3, 1, Same, None)
	c.Build(2)
	for k := 0; k < 9; k++ {
		c.W.Data[k*2+0] = 1 // channel 0 passes
		c.W.Data[k*2+1] = 0 // channel 1 blocked
	}
	c.B.Data[1] = 7
	rng := rand.New(rand.NewSource(4))
	out := c.Forward(randInput(rng, 4, 4, 2))
	for i := 0; i < 16; i++ {
		if out.Data[i*2+1] != 7 {
			t.Fatalf("channel 1 leaked: %g", out.Data[i*2+1])
		}
	}
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv1D(4, 3, 2, Same, ReLU)
	c.Build(3)
	initTensor(rng, c.W.Data, 9, ReLU)
	checkGradients(t, c, randInput(rng, 9, 3), 2e-2)
}

func TestPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	checkGradients(t, NewMaxPool2D(2, 2), randInput(rng, 4, 4, 2), 1e-2)
	checkGradients(t, NewAvgPool2D(2, 2), randInput(rng, 4, 4, 2), 1e-2)
	checkGradients(t, NewMaxPool1D(2, 2), randInput(rng, 8, 3), 1e-2)
	checkGradients(t, NewGlobalAvgPool2D(), randInput(rng, 3, 3, 4), 1e-2)
}

func TestMaxPoolKnownValues(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	in := tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 4, 4, 1)
	out := p.Forward(in)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], want[i])
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool2D()
	in := tensor.MustFromSlice([]float32{1, 10, 2, 20, 3, 30, 4, 40}, 2, 2, 2)
	out := g.Forward(in)
	if out.Data[0] != 2.5 || out.Data[1] != 25 {
		t.Fatalf("out = %v", out.Data)
	}
}

func TestSoftmax(t *testing.T) {
	s := NewSoftmax()
	out := s.Forward(tensor.MustFromSlice([]float32{1, 2, 3}, 3))
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-6 {
		t.Fatalf("softmax sum = %g", sum)
	}
	if !(out.Data[2] > out.Data[1] && out.Data[1] > out.Data[0]) {
		t.Fatal("softmax not monotone")
	}
	// Large logits must not overflow.
	out = s.Forward(tensor.MustFromSlice([]float32{1000, 1000, 999}, 3))
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflow")
		}
	}
}

func TestSoftmaxGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkGradients(t, NewSoftmax(), randInput(rng, 5), 1e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm()
	bn.Build(3)
	for i := range bn.Mean.Data {
		bn.Mean.Data[i] = float32(rng.NormFloat64())
		bn.Var.Data[i] = float32(0.5 + rng.Float64())
	}
	checkGradients(t, bn, randInput(rng, 4, 4, 3), 1e-2)
}

func TestBatchNormIdentityDefaults(t *testing.T) {
	bn := NewBatchNorm()
	in := tensor.MustFromSlice([]float32{1, -2, 3}, 3)
	out := bn.Forward(in)
	for i := range in.Data {
		if math.Abs(float64(out.Data[i]-in.Data[i])) > 5e-3 {
			t.Errorf("default BN not identity: %g -> %g", in.Data[i], out.Data[i])
		}
	}
}

func TestDropout(t *testing.T) {
	d := NewDropout(0.5)
	in := tensor.NewF32(1000)
	in.Fill(1)
	// Inference: identity.
	out := d.Forward(in)
	for _, v := range out.Data {
		if v != 1 {
			t.Fatal("dropout not identity at inference")
		}
	}
	// Training: roughly half dropped, survivors scaled 2x.
	d.Training = true
	out = d.Forward(in)
	kept := 0
	for _, v := range out.Data {
		if v != 0 {
			if v != 2 {
				t.Fatalf("survivor = %g, want 2", v)
			}
			kept++
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("kept %d of 1000 at rate 0.5", kept)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	in := randInput(rand.New(rand.NewSource(9)), 2, 3, 4)
	out := f.Forward(in)
	if !out.Shape.Equal([]int{24}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	back := f.Backward(out)
	if !back.Shape.Equal(in.Shape) {
		t.Fatalf("backward shape = %v", back.Shape)
	}
}

func TestModelEndToEnd(t *testing.T) {
	m := NewModel(8, 8, 1)
	m.NumClasses = 3
	m.Add(NewConv2D(4, 3, 1, Same, ReLU)).
		Add(NewMaxPool2D(2, 2)).
		Add(NewFlatten()).
		Add(NewDense(3, None)).
		Add(NewSoftmax())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := InitWeights(m, 42); err != nil {
		t.Fatal(err)
	}
	out := m.Forward(randInput(rand.New(rand.NewSource(10)), 8, 8, 1))
	if len(out.Data) != 3 {
		t.Fatalf("out len = %d", len(out.Data))
	}
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if m.ParamCount() == 0 || m.MACs() == 0 {
		t.Fatal("no params or MACs")
	}
}

func TestModelValidateMismatch(t *testing.T) {
	m := NewModel(4)
	m.NumClasses = 3
	m.Add(NewDense(2, None))
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted class mismatch")
	}
	bad := NewModel(0)
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted invalid input shape")
	}
}

func TestMACCounts(t *testing.T) {
	// conv2d: out 2x2, 1 filter, kernel 2x2x1 -> 4*4 = 16 MACs
	c := NewConv2D(1, 2, 1, Valid, None)
	if got := c.MACs(tensor.Shape{3, 3, 1}); got != 16 {
		t.Errorf("conv2d MACs = %d, want 16", got)
	}
	d := NewDense(10, None)
	if got := d.MACs(tensor.Shape{20}); got != 200 {
		t.Errorf("dense MACs = %d, want 200", got)
	}
	dw := NewDepthwiseConv2D(3, 1, Same, None)
	if got := dw.MACs(tensor.Shape{4, 4, 8}); got != 4*4*8*9 {
		t.Errorf("depthwise MACs = %d", got)
	}
	c1 := NewConv1D(16, 3, 1, Same, None)
	if got := c1.MACs(tensor.Shape{49, 13}); got != 49*16*3*13 {
		t.Errorf("conv1d MACs = %d", got)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	m := NewModel(16, 16, 3)
	m.NumClasses = 2
	m.Add(NewConv2D(4, 3, 2, Same, ReLU)).
		Add(NewBatchNorm()).
		Add(NewDepthwiseConv2D(3, 1, Same, ReLU6)).
		Add(NewGlobalAvgPool2D()).
		Add(NewDense(2, None)).
		Add(NewSoftmax())
	if err := InitWeights(m, 1); err != nil {
		t.Fatal(err)
	}
	specs, err := m.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("%d specs", len(specs))
	}
	m2, err := ModelFromSpecs(m.InputShape, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := CopyWeights(m2, m); err != nil {
		t.Fatal(err)
	}
	in := randInput(rand.New(rand.NewSource(11)), 16, 16, 3)
	a := m.Forward(in)
	b := m2.Forward(in)
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > 1e-6 {
			t.Fatalf("reconstructed model diverges at %d: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel(4)
	m.Add(NewDense(3, ReLU)).Add(NewDense(2, None)).Add(NewSoftmax())
	InitWeights(m, 3)
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate clone weights; original must not change.
	c.Params()[0].Data[0] += 100
	in := randInput(rand.New(rand.NewSource(12)), 4)
	a := m.Forward(in)
	b := c.Forward(in)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("clone shares weights with original")
	}
}

func TestLayerFromSpecUnknown(t *testing.T) {
	if _, err := LayerFromSpec(OpSpec{Kind: "warp_drive"}); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestForwardTo(t *testing.T) {
	m := NewModel(4)
	m.Add(NewDense(8, ReLU)).Add(NewDense(2, None)).Add(NewSoftmax())
	InitWeights(m, 5)
	in := randInput(rand.New(rand.NewSource(13)), 4)
	emb := m.ForwardTo(in, 1)
	if len(emb.Data) != 8 {
		t.Fatalf("embedding len = %d", len(emb.Data))
	}
}

func TestInitClassifierBias(t *testing.T) {
	m := NewModel(4)
	m.Add(NewDense(8, ReLU)).Add(NewDense(2, None)).Add(NewSoftmax())
	InitWeights(m, 6)
	InitClassifierBias(m, []float64{0.9, 0.1})
	d := m.Layers[1].(*Dense)
	if math.Abs(float64(d.B.Data[0])-math.Log(0.9)) > 1e-6 {
		t.Errorf("bias[0] = %g", d.B.Data[0])
	}
	if d.B.Data[0] <= d.B.Data[1] {
		t.Error("majority class bias should be larger")
	}
}

func TestActivationStrings(t *testing.T) {
	if None.String() != "none" || ReLU.String() != "relu" || ReLU6.String() != "relu6" || Sigmoid.String() != "sigmoid" {
		t.Error("activation strings")
	}
	if Valid.String() != "valid" || Same.String() != "same" {
		t.Error("padding strings")
	}
}

func TestReLU6Clamps(t *testing.T) {
	if ReLU6.apply(10) != 6 || ReLU6.apply(-1) != 0 || ReLU6.apply(3) != 3 {
		t.Error("relu6 values")
	}
	if ReLU6.grad(6) != 0 || ReLU6.grad(3) != 1 {
		t.Error("relu6 grads")
	}
}

func BenchmarkConv2DForward32(b *testing.B) {
	c := NewConv2D(16, 3, 1, Same, ReLU)
	c.Build(8)
	rng := rand.New(rand.NewSource(1))
	initTensor(rng, c.W.Data, 72, ReLU)
	in := randInput(rng, 32, 32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Forward(in)
	}
}

func BenchmarkDenseForward256(b *testing.B) {
	d := NewDense(256, ReLU)
	d.Build(256)
	rng := rand.New(rand.NewSource(1))
	initTensor(rng, d.W.Data, 256, ReLU)
	in := randInput(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Forward(in)
	}
}
