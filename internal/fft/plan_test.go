package fft

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRealPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12, -8} {
		if _, err := NewRealPlan(n); err == nil {
			t.Errorf("NewRealPlan(%d) accepted", n)
		}
	}
}

// TestRealPlanMatchesComplexPowerSpectrum is the golden-value check: the
// planned float32 real FFT must agree with the reference complex128 path
// across sizes, random signals and zero-padded short frames.
func TestRealPlanMatchesComplexPowerSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 16, 64, 256, 512} {
		p, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		s := p.Scratch()
		for _, frameLen := range []int{n, n / 2, n - 1, 1} {
			if frameLen < 1 {
				continue
			}
			frame := make([]float32, frameLen)
			for i := range frame {
				frame[i] = float32(rng.NormFloat64())
			}
			padded := make([]float32, n)
			copy(padded, frame)
			want, err := PowerSpectrum(padded)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float32, p.Bins())
			if err := p.PowerSpectrumInto(got, frame, s); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d: %d bins, want %d", n, len(got), len(want))
			}
			for k := range want {
				d := math.Abs(float64(got[k]) - float64(want[k]))
				if d > 1e-4*(1+math.Abs(float64(want[k]))) {
					t.Errorf("n=%d frame=%d bin %d: got %g want %g", n, frameLen, k, got[k], want[k])
				}
			}
		}
	}
}

func TestRealPlanMatchesComplexSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 128
	p, err := NewRealPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scratch()
	frame := make([]float32, n)
	for i := range frame {
		frame[i] = float32(rng.NormFloat64())
	}
	want, err := Spectrum(frame)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float32, p.Bins())
	if err := p.SpectrumInto(got, frame, s); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		d := math.Abs(float64(got[k]) - float64(want[k]))
		if d > 1e-4*(1+math.Abs(float64(want[k]))) {
			t.Errorf("bin %d: got %g want %g", k, got[k], want[k])
		}
	}
}

func TestRealPlanSingleTone(t *testing.T) {
	// A unit cosine at bin k puts power (n/2)²/n = n/4 in bin k.
	const n, k = 256, 11
	p, err := NewRealPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]float32, n)
	for i := range frame {
		frame[i] = float32(math.Cos(2 * math.Pi * float64(k) * float64(i) / n))
	}
	out := make([]float32, p.Bins())
	if err := p.PowerSpectrumInto(out, frame, p.Scratch()); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if i == k {
			if math.Abs(float64(v)-n/4) > 1e-3 {
				t.Errorf("bin %d power %g, want %g", i, v, float64(n)/4)
			}
		} else if v > 1e-3 {
			t.Errorf("bin %d power %g, want ~0", i, v)
		}
	}
}

func TestRealPlanArgumentErrors(t *testing.T) {
	p, err := NewRealPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scratch()
	dst := make([]float32, p.Bins())
	if err := p.PowerSpectrumInto(dst, make([]float32, 65), s); err == nil {
		t.Error("accepted over-long frame")
	}
	if err := p.PowerSpectrumInto(make([]float32, 3), make([]float32, 64), s); err == nil {
		t.Error("accepted short dst")
	}
	if err := p.SpectrumInto(dst, make([]float32, 100), s); err == nil {
		t.Error("spectrum accepted over-long frame")
	}
	if err := p.SpectrumInto(make([]float32, 3), make([]float32, 64), s); err == nil {
		t.Error("spectrum accepted short dst")
	}
}

func TestRealPlanNoAllocs(t *testing.T) {
	p, err := NewRealPlan(256)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scratch()
	frame := make([]float32, 256)
	dst := make([]float32, p.Bins())
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.PowerSpectrumInto(dst, frame, s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PowerSpectrumInto allocates %v per run, want 0", allocs)
	}
}

// BenchmarkRFFTPlan256 vs BenchmarkComplexFFT256 quantifies the planned
// real-path speedup over the generic complex128 transform.
func BenchmarkRFFTPlan256(b *testing.B) {
	p, err := NewRealPlan(256)
	if err != nil {
		b.Fatal(err)
	}
	s := p.Scratch()
	frame := make([]float32, 256)
	for i := range frame {
		frame[i] = float32(i % 31)
	}
	dst := make([]float32, p.Bins())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PowerSpectrumInto(dst, frame, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComplexFFT256(b *testing.B) {
	frame := make([]float32, 256)
	for i := range frame {
		frame[i] = float32(i % 31)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PowerSpectrum(frame); err != nil {
			b.Fatal(err)
		}
	}
}
