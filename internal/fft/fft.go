// Package fft implements the radix-2 fast Fourier transform and the window
// functions used by the DSP blocks. It is written for the feature-extraction
// workloads of TinyML pipelines: real-valued frames of a few hundred
// samples, power-of-two padded.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Forward computes the in-place decimation-in-time radix-2 FFT of x.
// len(x) must be a power of two.
func Forward(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	transform(x, false)
	return nil
}

// Inverse computes the inverse FFT of x in place, including the 1/n
// normalization. len(x) must be a power of two.
func Inverse(x []complex128) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	transform(x, true)
	inv := 1 / float64(n)
	for i := range x {
		x[i] *= complex(inv, 0)
	}
	return nil
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// RealForward computes the FFT of a real signal, returning the first
// n/2+1 complex bins (the rest are conjugate-symmetric). The input is
// zero-padded to the next power of two if needed.
func RealForward(x []float32) ([]complex128, error) {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(float64(v), 0)
	}
	if err := Forward(buf); err != nil {
		return nil, err
	}
	return buf[:n/2+1], nil
}

// Spectrum computes the magnitude spectrum |X_k| of a real frame: the
// first n/2+1 bins of the zero-padded FFT.
func Spectrum(x []float32) ([]float32, error) {
	bins, err := RealForward(x)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(bins))
	for i, b := range bins {
		out[i] = float32(cmplx.Abs(b))
	}
	return out, nil
}

// PowerSpectrum computes |X_k|^2 / n for the first n/2+1 bins, matching the
// periodogram estimate used by speech front ends.
func PowerSpectrum(x []float32) ([]float32, error) {
	n := NextPow2(len(x))
	bins, err := RealForward(x)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(bins))
	for i, b := range bins {
		m := cmplx.Abs(b)
		out[i] = float32(m * m / float64(n))
	}
	return out, nil
}

// Window is a window function applied to a frame before the FFT.
type Window int

// Supported window functions.
const (
	Rectangular Window = iota
	Hamming
	Hann
)

func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hamming:
		return "hamming"
	case Hann:
		return "hann"
	default:
		return fmt.Sprintf("Window(%d)", int(w))
	}
}

// Coefficients returns the n window coefficients for w.
func (w Window) Coefficients(n int) []float32 {
	c := make([]float32, n)
	switch w {
	case Hamming:
		for i := range c {
			c[i] = float32(0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		}
	case Hann:
		for i := range c {
			c[i] = float32(0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		}
	default:
		for i := range c {
			c[i] = 1
		}
	}
	return c
}

// Apply multiplies frame by the window coefficients in place.
// len(coeffs) must be >= len(frame).
func Apply(frame, coeffs []float32) {
	for i := range frame {
		frame[i] *= coeffs[i]
	}
}

// DCTII computes the orthonormal DCT-II of x, returning the first k
// coefficients. This is the transform used to derive MFCCs from log
// filterbank energies.
func DCTII(x []float32, k int) []float32 {
	n := len(x)
	if k > n {
		k = n
	}
	out := make([]float32, k)
	scale0 := math.Sqrt(1 / float64(n))
	scale := math.Sqrt(2 / float64(n))
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += float64(x[i]) * math.Cos(math.Pi/float64(n)*(float64(i)+0.5)*float64(j))
		}
		if j == 0 {
			out[j] = float32(s * scale0)
		} else {
			out[j] = float32(s * scale)
		}
	}
	return out
}
