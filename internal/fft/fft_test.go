package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 255: false, 256: true, 1024: true,
	}
	for n, want := range cases {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 256: 256, 257: 512}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Fatal("Forward accepted length 3")
	}
	if err := Inverse(make([]complex128, 12)); err == nil {
		t.Fatal("Inverse accepted length 12")
	}
}

func TestForwardImpulse(t *testing.T) {
	// FFT of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestForwardSingleTone(t *testing.T) {
	// A pure cosine at bin k concentrates energy at bins k and n-k.
	const n, k = 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k)*float64(i)/n), 0)
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude = %g, want %g", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %g, want ~0", i, mag)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(7)) // 4..512
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := Forward(x); err != nil {
			return false
		}
		if err := Inverse(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 128
		a := complex(rng.NormFloat64(), 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a*x[i] + y[i]
		}
		Forward(x)
		Forward(y)
		Forward(sum)
		for i := range x {
			if cmplx.Abs(sum[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 256
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		Forward(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= n
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*(1+timeEnergy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealForwardLength(t *testing.T) {
	bins, err := RealForward(make([]float32, 300)) // pads to 512
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 257 {
		t.Fatalf("got %d bins, want 257", len(bins))
	}
}

func TestSpectrumDC(t *testing.T) {
	x := make([]float32, 16)
	for i := range x {
		x[i] = 2
	}
	spec, err := Spectrum(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(spec[0])-32) > 1e-6 {
		t.Errorf("DC bin = %g, want 32", spec[0])
	}
	for i := 1; i < len(spec); i++ {
		if spec[i] > 1e-6 {
			t.Errorf("bin %d = %g, want 0", i, spec[i])
		}
	}
}

func TestPowerSpectrumMatchesSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float32, 128)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	spec, _ := Spectrum(x)
	pow, _ := PowerSpectrum(x)
	for i := range spec {
		want := float64(spec[i]) * float64(spec[i]) / 128
		if math.Abs(float64(pow[i])-want) > 1e-4*(1+want) {
			t.Errorf("bin %d: power %g, want %g", i, pow[i], want)
		}
	}
}

func TestWindowCoefficients(t *testing.T) {
	for _, w := range []Window{Rectangular, Hamming, Hann} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: got %d coeffs", w, len(c))
		}
		for i, v := range c {
			if v < 0 || v > 1.0001 {
				t.Errorf("%v coeff %d = %g out of [0,1]", w, i, v)
			}
		}
	}
	// Hann endpoints are zero; Hamming endpoints are 0.08.
	hann := Hann.Coefficients(64)
	if hann[0] > 1e-6 {
		t.Errorf("hann[0] = %g, want 0", hann[0])
	}
	ham := Hamming.Coefficients(64)
	if math.Abs(float64(ham[0])-0.08) > 1e-6 {
		t.Errorf("hamming[0] = %g, want 0.08", ham[0])
	}
}

func TestWindowStrings(t *testing.T) {
	if Rectangular.String() != "rectangular" || Hamming.String() != "hamming" || Hann.String() != "hann" {
		t.Error("window String() mismatch")
	}
	if Window(99).String() == "" {
		t.Error("unknown window should still format")
	}
}

func TestApply(t *testing.T) {
	frame := []float32{1, 2, 3, 4}
	Apply(frame, []float32{0.5, 0.5, 2, 0})
	want := []float32{0.5, 1, 6, 0}
	for i := range frame {
		if frame[i] != want[i] {
			t.Errorf("frame[%d] = %g, want %g", i, frame[i], want[i])
		}
	}
}

func TestDCTIIConstantSignal(t *testing.T) {
	// DCT-II of a constant signal has all energy in coefficient 0.
	x := []float32{3, 3, 3, 3, 3, 3, 3, 3}
	c := DCTII(x, 8)
	want := 3 * math.Sqrt(8)
	if math.Abs(float64(c[0])-want) > 1e-5 {
		t.Errorf("c0 = %g, want %g", c[0], want)
	}
	for i := 1; i < len(c); i++ {
		if math.Abs(float64(c[i])) > 1e-5 {
			t.Errorf("c%d = %g, want 0", i, c[i])
		}
	}
}

func TestDCTIIOrthonormalEnergy(t *testing.T) {
	// Orthonormal DCT preserves energy when all coefficients are kept.
	rng := rand.New(rand.NewSource(11))
	x := make([]float32, 40)
	var in float64
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		in += float64(x[i]) * float64(x[i])
	}
	c := DCTII(x, 40)
	var out float64
	for _, v := range c {
		out += float64(v) * float64(v)
	}
	if math.Abs(in-out) > 1e-4*(1+in) {
		t.Errorf("energy in %g != out %g", in, out)
	}
}

func TestDCTIIKTruncation(t *testing.T) {
	x := make([]float32, 16)
	if got := len(DCTII(x, 5)); got != 5 {
		t.Errorf("got %d coeffs, want 5", got)
	}
	if got := len(DCTII(x, 99)); got != 16 {
		t.Errorf("got %d coeffs, want clamp to 16", got)
	}
}

func BenchmarkFFT256(b *testing.B) {
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkSpectrum512(b *testing.B) {
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(i % 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Spectrum(x)
	}
}
