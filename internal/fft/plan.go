package fft

import (
	"fmt"
	"math"
)

// RealPlan is a precomputed transform plan for real-input FFTs of a fixed
// power-of-two size. It packs the n real samples into an n/2-point complex
// FFT over split float32 re/im arrays and unpacks the first n/2+1 bins,
// so one transform costs roughly half the butterflies of the generic
// complex path and performs no allocation.
//
// The plan itself is immutable after construction and safe for concurrent
// use; the mutable per-transform state lives in a RealScratch, which each
// goroutine must own exclusively.
type RealPlan struct {
	n int // real input length
	h int // n/2: complex FFT size

	rev []int32 // bit-reversal permutation for the size-h FFT
	// Stage-major complex-FFT twiddles for stages of length 4..h (the
	// length-2 stage is multiplication-free and handled specially):
	// stage with butterfly span L contributes L/2 sequential entries
	// wr = cos(2πj/L), wi = -sin(2πj/L).
	swr, swi []float32
	// Real-unpack twiddles: cr[k] = cos(2πk/n), ci[k] = -sin(2πk/n).
	cr, ci []float32
}

// RealScratch is the reusable working state for one RealPlan transform.
type RealScratch struct {
	re, im []float32
}

// NewRealPlan builds a plan for real frames of length n (a power of two,
// at least 2).
func NewRealPlan(n int) (*RealPlan, error) {
	if !IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("fft: plan size %d is not a power of two >= 2", n)
	}
	h := n / 2
	p := &RealPlan{n: n, h: h}
	p.rev = make([]int32, h)
	for i, j := 1, 0; i < h; i++ {
		bit := h >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.rev[i] = int32(j)
	}
	for length := 4; length <= h; length <<= 1 {
		half := length / 2
		for j := 0; j < half; j++ {
			ang := 2 * math.Pi * float64(j) / float64(length)
			p.swr = append(p.swr, float32(math.Cos(ang)))
			p.swi = append(p.swi, float32(-math.Sin(ang)))
		}
	}
	p.cr = make([]float32, h)
	p.ci = make([]float32, h)
	for k := range p.cr {
		ang := 2 * math.Pi * float64(k) / float64(n)
		p.cr[k] = float32(math.Cos(ang))
		p.ci[k] = float32(-math.Sin(ang))
	}
	return p, nil
}

// Size returns the real input length n the plan transforms.
func (p *RealPlan) Size() int { return p.n }

// Bins returns the number of output bins, n/2+1.
func (p *RealPlan) Bins() int { return p.n/2 + 1 }

// Scratch allocates working state for this plan. Each concurrent caller
// needs its own scratch.
func (p *RealPlan) Scratch() *RealScratch {
	return &RealScratch{re: make([]float32, p.h), im: make([]float32, p.h)}
}

// fft runs the packed complex FFT of the (zero-padded) frame, leaving
// the size-h transform in s.re/s.im.
func (p *RealPlan) fft(frame []float32, s *RealScratch) {
	h := p.h
	re, im := s.re[:h], s.im[:h]
	// Pack x[2k] + i·x[2k+1] in bit-reversed order, zero-padding.
	for i := 0; i < h; i++ {
		j := p.rev[i]
		var a, b float32
		if k := 2 * i; k < len(frame) {
			a = frame[k]
		}
		if k := 2*i + 1; k < len(frame) {
			b = frame[k]
		}
		re[j], im[j] = a, b
	}
	// Length-2 stage: the twiddle is 1+0i, so butterflies are pure adds.
	for j := 0; j+1 < h; j += 2 {
		ar, ai := re[j], im[j]
		br, bi := re[j+1], im[j+1]
		re[j], im[j] = ar+br, ai+bi
		re[j+1], im[j+1] = ar-br, ai-bi
	}
	// Remaining stages with stage-major sequential twiddle tables.
	off := 0
	for length := 4; length <= h; length <<= 1 {
		half := length / 2
		wr := p.swr[off : off+half]
		wi := p.swi[off : off+half]
		off += half
		for base := 0; base < h; base += length {
			x := re[base : base+length]
			y := im[base : base+length]
			for j := 0; j < half; j++ {
				k := j + half
				cr, ci := wr[j], wi[j]
				vr := x[k]*cr - y[k]*ci
				vi := x[k]*ci + y[k]*cr
				x[k] = x[j] - vr
				y[k] = y[j] - vi
				x[j] += vr
				y[j] += vi
			}
		}
	}
}

// checkInto validates the Into arguments.
func (p *RealPlan) checkInto(dst, frame []float32) error {
	if len(frame) > p.n {
		return fmt.Errorf("fft: frame length %d exceeds plan size %d", len(frame), p.n)
	}
	if len(dst) < p.Bins() {
		return fmt.Errorf("fft: dst length %d < %d bins", len(dst), p.Bins())
	}
	return nil
}

// PowerSpectrumInto writes |X_k|²/n for the n/2+1 real-spectrum bins of
// frame into dst. The frame is zero-padded to the plan size; dst must
// have at least Bins() elements.
//
// The unpack follows the standard even/odd split of the packed
// transform Z: Xe[k] = (Z[k]+conj(Z[h-k]))/2, Xo[k] = -i(Z[k]-conj(Z[h-k]))/2
// and X[k] = Xe[k] + W_n^k·Xo[k].
func (p *RealPlan) PowerSpectrumInto(dst, frame []float32, s *RealScratch) error {
	if err := p.checkInto(dst, frame); err != nil {
		return err
	}
	p.fft(frame, s)
	h := p.h
	re, im := s.re, s.im
	inv := 1 / float32(p.n)
	x0 := re[0] + im[0]
	dst[0] = x0 * x0 * inv
	for k := 1; k < h; k++ {
		a, b := re[k], im[k]
		c, d := re[h-k], im[h-k]
		er, ei := 0.5*(a+c), 0.5*(b-d)
		or, oi := 0.5*(b+d), 0.5*(c-a)
		wr, wi := p.cr[k], p.ci[k]
		xr := er + wr*or - wi*oi
		xi := ei + wr*oi + wi*or
		dst[k] = (xr*xr + xi*xi) * inv
	}
	xh := re[0] - im[0]
	dst[h] = xh * xh * inv
	return nil
}

// SpectrumInto writes the magnitudes |X_k| of the n/2+1 real-spectrum
// bins of frame into dst. The frame is zero-padded to the plan size; dst
// must have at least Bins() elements.
func (p *RealPlan) SpectrumInto(dst, frame []float32, s *RealScratch) error {
	if err := p.checkInto(dst, frame); err != nil {
		return err
	}
	p.fft(frame, s)
	h := p.h
	re, im := s.re, s.im
	dst[0] = abs32(re[0] + im[0])
	for k := 1; k < h; k++ {
		a, b := re[k], im[k]
		c, d := re[h-k], im[h-k]
		er, ei := 0.5*(a+c), 0.5*(b-d)
		or, oi := 0.5*(b+d), 0.5*(c-a)
		wr, wi := p.cr[k], p.ci[k]
		xr := float64(er + wr*or - wi*oi)
		xi := float64(ei + wr*oi + wi*or)
		dst[k] = float32(math.Sqrt(xr*xr + xi*xi))
	}
	dst[h] = abs32(re[0] - im[0])
	return nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
