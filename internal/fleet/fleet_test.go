package fleet

import (
	"errors"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("classify=4, stream=1,upload=2")
	if err != nil {
		t.Fatal(err)
	}
	if m.Classify != 4 || m.Stream != 1 || m.Upload != 2 || m.Total() != 7 {
		t.Fatalf("parsed %+v", m)
	}
	for _, bad := range []string{"", "bogus=1", "classify", "classify=x", "classify=-1", "classify=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
	// All weights present parse cleanly.
	if _, err := ParseMix("upload=1,classify=1,batch=1,stream=1,train=1,tune=1"); err != nil {
		t.Fatal(err)
	}
}

func TestMixPatternDeterministic(t *testing.T) {
	m := Mix{Upload: 2, Classify: 3, Stream: 1}
	p := m.pattern()
	want := []string{"upload", "upload", "classify", "classify", "classify", "stream"}
	if len(p) != len(want) {
		t.Fatalf("pattern %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("pattern[%d] = %s, want %s (%v)", i, p[i], want[i], p)
		}
	}
	if len(Scenarios()) != 6 {
		t.Fatalf("scenarios: %v", Scenarios())
	}
}

func TestPercentile(t *testing.T) {
	if percentile(nil, 99) != 0 {
		t.Fatal("empty percentile")
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {0, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Fatalf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if mean(sorted) != 5.5 {
		t.Fatalf("mean = %v", mean(sorted))
	}
}

func TestRecorderClassification(t *testing.T) {
	rec := newRecorder()
	// Success.
	if shed := rec.observe(OpClassify, time.Millisecond, nil); shed {
		t.Fatal("success counted as shed")
	}
	// Retryable shed with Retry-After.
	shedErr := &client.APIError{Status: 429, Code: v1.CodeOverloaded, RetryAfter: time.Second}
	if shed := rec.observe(OpClassify, time.Millisecond, shedErr); !shed {
		t.Fatal("overloaded not counted as shed")
	}
	// Shed missing Retry-After — the SLO violation counter.
	if shed := rec.observe(OpClassify, time.Millisecond, &client.APIError{Status: 429, Code: v1.CodeBackpressure}); !shed {
		t.Fatal("backpressure not counted as shed")
	}
	// Hard API error and transport error.
	rec.observe(OpClassify, time.Millisecond, &client.APIError{Status: 400, Code: v1.CodeBadRequest})
	rec.observe(OpClassify, time.Millisecond, errors.New("connection refused"))
	// Out-of-band failure.
	rec.fail(OpTrain, "job_failed")

	stats := rec.stats(2 * time.Second)
	if len(stats) != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	cl := stats[0]
	if cl.Op != OpClassify || cl.Count != 5 || cl.Shed != 2 || cl.ShedNoRetryAfter != 1 || cl.HardErrors != 2 {
		t.Fatalf("classify stats: %+v", cl)
	}
	if cl.ByCode[v1.CodeOverloaded] != 1 || cl.ByCode[codeTransport] != 1 {
		t.Fatalf("by-code: %+v", cl.ByCode)
	}
	if cl.OpsPerSec != 2.5 {
		t.Fatalf("ops/sec: %v", cl.OpsPerSec)
	}
	tr := stats[1]
	if tr.Op != OpTrain || tr.HardErrors != 1 || tr.Count != 0 {
		t.Fatalf("train stats: %+v", tr)
	}
	if tr.HardErrorRate() != 0 { // rate over zero attempts is defined as 0
		t.Fatalf("train rate: %v", tr.HardErrorRate())
	}
	if cl.HardErrorRate() != 0.4 {
		t.Fatalf("classify rate: %v", cl.HardErrorRate())
	}
}

func TestRecallAgg(t *testing.T) {
	var agg recallAgg
	agg.add(3, 3, 0, 0)
	agg.add(2, 1, 1, 2)
	st := agg.stats()
	if st.Sessions != 2 || st.Events != 5 || st.Detected != 4 || st.Missed != 1 || st.False != 2 {
		t.Fatalf("recall: %+v", st)
	}
	if st.Recall != 0.8 {
		t.Fatalf("recall fraction: %v", st.Recall)
	}
	if (&recallAgg{}).stats().Recall != 1 {
		t.Fatal("empty recall should be 1")
	}
}

func TestViolations(t *testing.T) {
	res := &Result{
		Ops: []OpStats{
			{Op: OpClassify, Count: 10, Shed: 2, ByCode: map[string]int64{"overloaded": 2}},
			{Op: OpUpload, Count: 10, Shed: 1, ShedNoRetryAfter: 1, HardErrors: 1},
			{Op: OpTrain, Count: 4},
		},
		Recall: RecallStats{Events: 3, Detected: 2, Missed: 1, Recall: 2.0 / 3},
	}
	v := res.Violations(DefaultSLO())
	if len(v) != 4 {
		t.Fatalf("violations: %v", v)
	}
	// A compliant result has none.
	clean := &Result{
		Ops:    []OpStats{{Op: OpClassify, Count: 10}, {Op: OpUpload, Count: 5, Shed: 1}},
		Recall: RecallStats{Events: 2, Detected: 2, Recall: 1},
	}
	// The upload shed carries Retry-After (ShedNoRetryAfter == 0), so
	// default-class backpressure alone is not a violation.
	if v := clean.Violations(DefaultSLO()); len(v) != 0 {
		t.Fatalf("clean result violated: %v", v)
	}
	// Disabled hard-error check.
	slo := SLO{MaxHardErrorRate: -1}
	dirty := &Result{Ops: []OpStats{{Op: OpClassify, Count: 2, HardErrors: 2}}}
	if v := dirty.Violations(slo); len(v) != 0 {
		t.Fatalf("disabled rate check still fired: %v", v)
	}
	if res.Op(OpClassify) == nil || res.Op("nope") != nil {
		t.Fatal("Op lookup")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res := &Result{
		Target:      "http://127.0.0.1:0",
		Config:      Config{Devices: 4, Seed: 9}.withDefaults(),
		WallSeconds: 1.5,
		Ops:         []OpStats{{Op: OpClassify, Count: 8, P99MS: 12.5}},
		Recall:      RecallStats{Events: 2, Detected: 2, Recall: 1},
	}
	path, err := WriteRecord(dir+"/FLEET_STAMP.json", res)
	if err != nil {
		t.Fatal(err)
	}
	if path == dir+"/FLEET_STAMP.json" {
		t.Fatalf("STAMP not substituted: %s", path)
	}
	series, err := LoadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Stamp == "" {
		t.Fatalf("series: %+v", series)
	}
	got := series[0]
	if got.Target != res.Target || got.Config.Devices != 4 || got.Ops[0].P99MS != 12.5 || got.Recall.Recall != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	// A second record joins the series.
	if _, err := WriteRecord(dir+"/FLEET_second.json", res); err != nil {
		t.Fatal(err)
	}
	series, err = LoadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series: %d records", len(series))
	}
	if series[0].Stamp > series[1].Stamp {
		t.Fatalf("series out of order: %s > %s", series[0].Stamp, series[1].Stamp)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Devices != 8 || c.OpsPerDevice != 4 || c.Rate != 8000 || c.Mix.Total() == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.StreamSeconds != 8 || c.StreamEvents != 2 || c.BatchWindows != 8 || c.TrainEpochs != 8 || c.JobEpochs != 2 {
		t.Fatalf("defaults: %+v", c)
	}
}
