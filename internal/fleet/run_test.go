package fleet

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"edgepulse/internal/api"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

// startDaemon boots an in-process platform the same way the e2e suite
// does and returns its base URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{
		MinWorkers: 2, MaxWorkers: 4,
		QueueSize: 64, ScaleInterval: 5 * time.Millisecond,
	})
	t.Cleanup(sched.Shutdown)
	server := httptest.NewServer(api.NewServer(registry, sched, api.WithRateLimit(0, 0)).Handler())
	t.Cleanup(server.Close)
	return server.URL
}

// TestRunMixedStorm drives a full mixed-scenario fleet against an
// in-process daemon: every scenario executes, nothing hard-errors, the
// streamed ground truth is recovered exactly, and the record round
// trip preserves the result.
func TestRunMixedStorm(t *testing.T) {
	url := startDaemon(t)
	cfg := Config{
		Devices:       10, // one full default-mix pattern: every scenario runs
		OpsPerDevice:  1,
		Seed:          42,
		TrainEpochs:   8,
		StreamSeconds: 6,
		StreamEvents:  1,
	}
	res, err := Run(context.Background(), url, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Every scenario in the mix produced stats.
	for _, op := range []string{OpUpload, OpClassify, OpClassifyBatch, OpStreamOpen, OpStreamPush, OpStreamClose, OpTrain, OpTune} {
		st := res.Op(op)
		if st == nil || st.Count == 0 {
			t.Fatalf("op %s missing from result: %+v", op, res.Ops)
		}
		if st.HardErrors != 0 {
			t.Fatalf("op %s hard errors: %+v", op, st)
		}
		if st.P50MS <= 0 || st.P99MS < st.P50MS {
			t.Fatalf("op %s percentiles: %+v", op, st)
		}
	}

	// The streaming device recovered its embedded ground truth exactly.
	if res.Recall.Sessions != 1 || res.Recall.Events != 1 {
		t.Fatalf("recall coverage: %+v", res.Recall)
	}
	if res.Recall.Recall != 1 || res.Recall.Missed != 0 || res.Recall.False != 0 {
		t.Fatalf("recall: %+v", res.Recall)
	}

	// The target served the runtime block, so the delta is available.
	if !res.TargetDelta.Available {
		t.Fatalf("target delta unavailable: %+v", res.TargetDelta)
	}
	if res.WallSeconds <= 0 || res.SetupSeconds <= 0 {
		t.Fatalf("timings: wall=%v setup=%v", res.WallSeconds, res.SetupSeconds)
	}

	// The default SLO holds on an unloaded daemon.
	if v := res.Violations(DefaultSLO()); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}

	// And the record round-trips through the committed-series format.
	dir := t.TempDir()
	path, err := WriteRecord(dir+"/FLEET_STAMP.json", res)
	if err != nil {
		t.Fatal(err)
	}
	series, err := LoadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].Op(OpClassify).Count != res.Op(OpClassify).Count {
		t.Fatalf("record %s round trip: %+v", path, series)
	}
}

// TestRunTargetDown fails fast with a useful error instead of storming
// a dead target.
func TestRunTargetDown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_, err := Run(ctx, "http://127.0.0.1:1", Config{Devices: 1, OpsPerDevice: 1})
	if err == nil {
		t.Fatal("Run against a dead target succeeded")
	}
}
