// Package fleet is the macro load harness: it drives M synthetic
// devices — seeded audio and vibration sources from internal/synth —
// through configurable scenario mixes (bulk upload, live streaming
// sessions with embedded keyword ground truth, one-shot and batched
// classify, background train/tune jobs) against a live target, a
// single daemon or a gateway + worker fleet, entirely through the
// typed internal/client. It measures per-op p50/p95/p99 latency,
// throughput, the shed/error breakdown by stable code, detection
// recall against the synthesizer's ground truth, and the target's
// goroutine/heap movement via /metrics, and can emit the committed
// FLEET_<stamp>.json records cmd/ei-ratchet gates on.
//
// Everything is deterministic from Config.Seed: device i derives its
// stream with synth.Derive(seed, i), so a run is reproducible up to
// scheduling — the same utterances land at the same sample offsets on
// every run.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/ingest"
	"edgepulse/internal/synth"
)

const (
	// opTimeout bounds any single request during the storm.
	opTimeout = 60 * time.Second
	// jobTimeout bounds waiting for a background train/tune job.
	jobTimeout = 180 * time.Second
	// readyTimeout bounds waiting for the target's readiness probe.
	readyTimeout = 30 * time.Second
	// maxPushRetries bounds per-chunk backpressure retries inside one
	// streaming session; past it the session counts a hard error.
	maxPushRetries = 100
	// streamNoise keeps the synthetic feeds comfortably detectable: the
	// SLO gates on exact recall, so the noise floor is part of the
	// contract, not a tunable.
	streamNoise = 0.02
	// streamThreshold/streamRelease are the detector's firing and
	// hysteresis-re-arm levels. Calibrated empirically over hundreds of
	// derived device seeds: high enough that pure noise never fires,
	// low enough that every embedded utterance clears it even when the
	// random clip offset straddles window boundaries.
	streamThreshold = 0.52
	streamRelease   = 0.48
	// uploadStampBase spaces signed-document timestamps so every
	// (device, iteration) pair uploads a unique acquisition doc.
	uploadStampBase = 1700000000
	// datasetSeed is fixed independently of Config.Seed: the serving
	// model must be the same known-good model on every run, or recall
	// would ride on training-set luck instead of the streaming plane.
	datasetSeed = 42
)

// Mix weights the scenarios across the device fleet: with weights
// {Upload:2, Classify:4}, four of every six devices classify and two
// upload. A device runs a single scenario for the whole storm, like a
// real sensor does.
type Mix struct {
	Upload   int `json:"upload,omitempty"`
	Classify int `json:"classify,omitempty"`
	Batch    int `json:"batch,omitempty"`
	Stream   int `json:"stream,omitempty"`
	Train    int `json:"train,omitempty"`
	Tune     int `json:"tune,omitempty"`
}

// DefaultMix leans interactive, the way a device fleet does: mostly
// classification traffic, a steady trickle of uploads and streams, and
// occasional background training.
func DefaultMix() Mix {
	return Mix{Upload: 2, Classify: 4, Batch: 1, Stream: 1, Train: 1, Tune: 1}
}

// scenarios is the canonical expansion order, so a mix always produces
// the same device assignment.
var scenarios = []struct {
	name   string
	weight func(Mix) int
}{
	{"upload", func(m Mix) int { return m.Upload }},
	{"classify", func(m Mix) int { return m.Classify }},
	{"batch", func(m Mix) int { return m.Batch }},
	{"stream", func(m Mix) int { return m.Stream }},
	{"train", func(m Mix) int { return m.Train }},
	{"tune", func(m Mix) int { return m.Tune }},
}

// pattern expands the weights into the repeating device assignment:
// device i runs pattern[i % len(pattern)].
func (m Mix) pattern() []string {
	var p []string
	for _, s := range scenarios {
		for i := 0; i < s.weight(m); i++ {
			p = append(p, s.name)
		}
	}
	return p
}

// Total is the sum of all weights.
func (m Mix) Total() int {
	t := 0
	for _, s := range scenarios {
		t += s.weight(m)
	}
	return t
}

// ParseMix parses "classify=4,stream=1,upload=2" into a Mix. Unknown
// scenario names and non-numeric weights are errors; omitted scenarios
// get weight 0.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, fmt.Errorf("fleet: empty mix")
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("fleet: mix entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("fleet: mix weight %q must be a non-negative integer", val)
		}
		switch strings.TrimSpace(name) {
		case "upload":
			m.Upload = w
		case "classify":
			m.Classify = w
		case "batch":
			m.Batch = w
		case "stream":
			m.Stream = w
		case "train":
			m.Train = w
		case "tune":
			m.Tune = w
		default:
			return m, fmt.Errorf("fleet: unknown scenario %q", name)
		}
	}
	if m.Total() == 0 {
		return m, fmt.Errorf("fleet: mix has no positive weights")
	}
	return m, nil
}

// Config describes one fleet run. The zero value is not runnable; use
// (Config).withDefaults via Run, which fills every unset knob.
type Config struct {
	// Devices is M, the synthetic device count.
	Devices int `json:"devices"`
	// OpsPerDevice is how many scenario iterations each device runs
	// (for a streaming device, one iteration is one full session).
	OpsPerDevice int `json:"ops_per_device"`
	// Seed roots every derived per-device stream.
	Seed int64 `json:"seed"`
	// Mix weights the scenarios across devices.
	Mix Mix `json:"mix"`
	// Concurrency caps simultaneously active devices (0 = all at once).
	Concurrency int `json:"concurrency,omitempty"`
	// Quantized classifies and streams against the int8 model.
	Quantized bool `json:"quantized,omitempty"`

	// Rate is the audio sample rate in Hz (default 8000).
	Rate int `json:"rate,omitempty"`
	// TrainEpochs trains the serving model during setup (default 8).
	TrainEpochs int `json:"train_epochs,omitempty"`
	// BatchWindows sizes each classify_batch request (default 8).
	BatchWindows int `json:"batch_windows,omitempty"`
	// UploadFrames sizes each uploaded acquisition doc (default 64).
	UploadFrames int `json:"upload_frames,omitempty"`
	// StreamSeconds is each streaming session's feed length (default 8)
	// with StreamEvents embedded utterances (default 2).
	StreamSeconds float64 `json:"stream_seconds,omitempty"`
	StreamEvents  int     `json:"stream_events,omitempty"`
	// JobEpochs sizes the background train/tune jobs (default 2).
	JobEpochs int `json:"job_epochs,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Devices <= 0 {
		c.Devices = 8
	}
	if c.OpsPerDevice <= 0 {
		c.OpsPerDevice = 4
	}
	if c.Mix.Total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.Rate <= 0 {
		c.Rate = 8000
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 8
	}
	if c.BatchWindows <= 0 {
		c.BatchWindows = 8
	}
	if c.UploadFrames <= 0 {
		c.UploadFrames = 64
	}
	if c.StreamSeconds <= 0 {
		c.StreamSeconds = 8
	}
	if c.StreamEvents <= 0 {
		c.StreamEvents = 2
	}
	if c.JobEpochs <= 0 {
		c.JobEpochs = 2
	}
	return c
}

// runner carries one run's state: the authenticated client, the two
// projects (a serving project trained once during setup so inference
// quality is fixed, and a separate jobs project absorbing the
// train/tune load without touching the serving model), and the sinks.
type runner struct {
	cfg    Config
	c      *client.Client
	serve  *v1.CreateProjectResponse
	jobs   *v1.CreateProjectResponse
	rec    *recorder
	recall *recallAgg
}

// Run executes one fleet storm against the target base URL and returns
// the measured Result. Setup failures (unreachable target, training
// failure) return an error; per-device failures during the storm are
// recorded in the result instead.
func Run(ctx context.Context, target string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := &runner{
		cfg:    cfg,
		c:      client.New(target, client.WithRetries(0)),
		rec:    newRecorder(),
		recall: &recallAgg{},
	}

	setupStart := time.Now()
	if err := r.awaitReady(ctx, target); err != nil {
		return nil, err
	}
	if err := r.setup(ctx); err != nil {
		return nil, err
	}
	setup := time.Since(setupStart)

	before := r.runtimeSnapshot(ctx)

	stormStart := time.Now()
	r.storm(ctx)
	wall := time.Since(stormStart)

	after := r.settleSnapshot(ctx)

	res := &Result{
		Target:       target,
		Config:       cfg,
		SetupSeconds: setup.Seconds(),
		WallSeconds:  wall.Seconds(),
		Ops:          r.rec.stats(wall),
		Recall:       r.recall.stats(),
	}
	if before != nil && after != nil {
		res.TargetDelta = TargetDelta{
			Available:      true,
			Goroutines:     after.Goroutines - before.Goroutines,
			HeapAllocBytes: int64(after.HeapAllocBytes) - int64(before.HeapAllocBytes),
		}
	}
	return res, nil
}

// awaitReady polls the readiness probe until the target accepts
// traffic, so a just-booted daemon or gateway doesn't eat the first
// wave of the storm as 503s.
func (r *runner) awaitReady(ctx context.Context, target string) error {
	deadline := time.Now().Add(readyTimeout)
	var last error
	for time.Now().Before(deadline) {
		probeCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		ready, err := r.c.Ready(probeCtx)
		cancel()
		if err == nil && ready.Ready {
			return nil
		}
		last = err
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return fmt.Errorf("fleet: target %s not ready after %s (last error: %v)", target, readyTimeout, last)
}

// setup provisions the account and projects and trains the serving
// model to completion, so every storm measurement runs against a fixed,
// known-good impulse.
func (r *runner) setup(ctx context.Context) error {
	user, err := r.c.CreateUser(ctx, "ei-fleet")
	if err != nil {
		return fmt.Errorf("fleet: create user: %w", err)
	}
	r.c = r.c.WithAPIKey(user.APIKey)

	r.serve, err = r.c.CreateProject(ctx, "fleet-serve")
	if err != nil {
		return fmt.Errorf("fleet: create serving project: %w", err)
	}
	// Full-second clips and a 1 s window / 250 ms stride geometry: the
	// same shape synth.Stream embeds in live feeds, so streamed windows
	// look exactly like training windows.
	if err := r.provision(ctx, r.serve, 16, 1.0, 1000, 250); err != nil {
		return err
	}
	if err := r.train(ctx, r.serve.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       r.cfg.TrainEpochs,
		LearningRate: 0.005,
		Quantize:     r.cfg.Quantized,
		Seed:         7,
	}); err != nil {
		return fmt.Errorf("fleet: serving model: %w", err)
	}

	if r.cfg.Mix.Train > 0 || r.cfg.Mix.Tune > 0 {
		r.jobs, err = r.c.CreateProject(ctx, "fleet-jobs")
		if err != nil {
			return fmt.Errorf("fleet: create jobs project: %w", err)
		}
		if err := r.provision(ctx, r.jobs, 6, 0.5, 500, 0); err != nil {
			return err
		}
	}
	return nil
}

// provision uploads a signed synthetic keyword dataset into p and
// configures its impulse graph.
func (r *runner) provision(ctx context.Context, p *v1.CreateProjectResponse, perClass int, clipSeconds float64, windowMS, strideMS int) error {
	ds, err := synth.KWSDataset(2, perClass, r.cfg.Rate, clipSeconds, 0.03, datasetSeed)
	if err != nil {
		return fmt.Errorf("fleet: synthesize dataset: %w", err)
	}
	stamp := int64(uploadStampBase)
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			return err
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		stamp++
		doc, err := r.sign(p.HMACKey, values, stamp)
		if err != nil {
			return err
		}
		if _, err := r.c.UploadSample(ctx, p.ID, client.UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, doc); err != nil {
			return fmt.Errorf("fleet: seed upload: %w", err)
		}
	}
	if _, err := r.c.Rebalance(ctx, p.ID, 0.25); err != nil {
		return fmt.Errorf("fleet: rebalance: %w", err)
	}
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    p.Name,
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: windowMS, StrideMS: strideMS, FrequencyHz: r.cfg.Rate, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Name: "audio", Type: "mfe",
			Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification, Inputs: []string{"audio"}}},
		Classes: []string{"noise", "yes"},
	}
	if _, err := r.c.SetImpulse(ctx, p.ID, cfg); err != nil {
		return fmt.Errorf("fleet: set impulse: %w", err)
	}
	return nil
}

func (r *runner) sign(hmacKey string, values [][]float64, stamp int64) ([]byte, error) {
	return ingest.SignJSON(ingest.Payload{
		DeviceName: "fleet-device", DeviceType: "NANO33BLE",
		IntervalMS: 1000.0 / float64(r.cfg.Rate),
		Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
		Values:     values,
	}, hmacKey, stamp)
}

// train submits a training job and waits for its terminal state.
func (r *runner) train(ctx context.Context, projectID int, req v1.TrainRequest) error {
	accepted, err := r.c.Train(ctx, projectID, req)
	if err != nil {
		return err
	}
	waitCtx, cancel := context.WithTimeout(ctx, jobTimeout)
	defer cancel()
	done, err := r.c.WaitJob(waitCtx, accepted.JobID)
	if err != nil {
		return err
	}
	if done.Status != v1.JobFinished {
		return fmt.Errorf("training ended %s: %s", done.Status, done.Job.Error)
	}
	return nil
}

// runtimeSnapshot reads the target's runtime gauges (nil when the
// target doesn't serve them).
func (r *runner) runtimeSnapshot(ctx context.Context) *v1.RuntimeMetrics {
	mCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	m, err := r.c.Metrics(mCtx)
	if err != nil || m.Runtime == nil {
		return nil
	}
	return m.Runtime
}

// settleSnapshot polls the runtime gauges for a moment after the storm
// so in-flight request goroutines drain before the delta is taken, and
// returns the lowest goroutine reading observed.
func (r *runner) settleSnapshot(ctx context.Context) *v1.RuntimeMetrics {
	var best *v1.RuntimeMetrics
	for i := 0; i < 20; i++ {
		snap := r.runtimeSnapshot(ctx)
		if snap != nil && (best == nil || snap.Goroutines < best.Goroutines) {
			best = snap
		}
		select {
		case <-ctx.Done():
			return best
		case <-time.After(100 * time.Millisecond):
		}
	}
	return best
}

// storm runs every device to completion.
func (r *runner) storm(ctx context.Context) {
	pattern := r.cfg.Mix.pattern()
	limit := r.cfg.Concurrency
	if limit <= 0 || limit > r.cfg.Devices {
		limit = r.cfg.Devices
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for dev := 0; dev < r.cfg.Devices; dev++ {
		scenario := pattern[dev%len(pattern)]
		wg.Add(1)
		go func(dev int, scenario string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			devSeed := synth.Derive(r.cfg.Seed, dev)
			for iter := 0; iter < r.cfg.OpsPerDevice; iter++ {
				if ctx.Err() != nil {
					return
				}
				iterSeed := synth.Derive(devSeed, iter)
				switch scenario {
				case "upload":
					r.opUpload(ctx, dev, iter, iterSeed)
				case "classify":
					r.opClassify(ctx, iterSeed)
				case "batch":
					r.opBatch(ctx, iterSeed)
				case "stream":
					r.opStream(ctx, iterSeed)
				case "train":
					r.opTrain(ctx, iterSeed)
				case "tune":
					r.opTune(ctx, iterSeed)
				}
			}
		}(dev, scenario)
	}
	wg.Wait()
}

// timed runs one attempt under the op timeout and records its outcome.
func (r *runner) timed(ctx context.Context, op string, fn func(context.Context) error) (shed bool, err error) {
	opCtx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	start := time.Now()
	err = fn(opCtx)
	return r.rec.observe(op, time.Since(start), err), err
}

// opUpload pushes one signed acquisition document of fresh synthetic
// vibration-shaped values; content and timestamp are unique per
// (device, iteration) so the dedup path never rejects them.
func (r *runner) opUpload(ctx context.Context, dev, iter int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	values := make([][]float64, r.cfg.UploadFrames)
	for i := range values {
		values[i] = []float64{rng.NormFloat64() * 0.1}
	}
	label := "noise"
	if iter%2 == 0 {
		label = "yes"
	}
	stamp := int64(uploadStampBase) + int64(dev+1)*1_000_000 + int64(iter)
	doc, err := r.sign(r.serve.HMACKey, values, stamp)
	if err != nil {
		r.rec.fail(OpUpload, "sign")
		return
	}
	r.timed(ctx, OpUpload, func(c context.Context) error {
		_, err := r.c.UploadSample(c, r.serve.ID, client.UploadParams{
			Label: label, Name: fmt.Sprintf("fleet-%d-%d", dev, iter), Format: "acquisition",
		}, doc)
		return err
	})
}

// window synthesizes one keyword window matching the serving impulse
// geometry (1 s at the configured rate).
func (r *runner) window(seed int64) ([]float32, error) {
	label := "yes"
	if seed%2 == 0 {
		label = "noise"
	}
	sig, err := synth.Keyword(label, r.cfg.Rate, 1.0, streamNoise, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return sig.Data, nil
}

func (r *runner) opClassify(ctx context.Context, seed int64) {
	w, err := r.window(seed)
	if err != nil {
		r.rec.fail(OpClassify, "synth")
		return
	}
	r.timed(ctx, OpClassify, func(c context.Context) error {
		_, err := r.c.Classify(c, r.serve.ID, w, r.cfg.Quantized)
		return err
	})
}

func (r *runner) opBatch(ctx context.Context, seed int64) {
	windows := make([][]float32, r.cfg.BatchWindows)
	for i := range windows {
		w, err := r.window(synth.Derive(seed, i))
		if err != nil {
			r.rec.fail(OpClassifyBatch, "synth")
			return
		}
		windows[i] = w
	}
	r.timed(ctx, OpClassifyBatch, func(c context.Context) error {
		_, err := r.c.ClassifyBatch(c, r.serve.ID, windows, r.cfg.Quantized)
		return err
	})
}

// opStream runs one complete streaming session: open, concurrent event
// tail, stride-sized pushes with bounded backpressure retries, close,
// then a ground-truth comparison. Recall is only credited for sessions
// that completed cleanly; an aborted session surfaces as hard errors
// instead.
func (r *runner) opStream(ctx context.Context, seed int64) {
	src, truth, err := synth.NewStreamSource("yes", r.cfg.Rate, r.cfg.StreamSeconds, r.cfg.StreamEvents, streamNoise, seed)
	if err != nil {
		r.rec.fail(OpStreamOpen, "synth")
		return
	}

	var sess *client.StreamSession
	if _, err := r.timed(ctx, OpStreamOpen, func(c context.Context) error {
		// Release just under Threshold: the small model's class scores
		// cluster, so the default hysteresis would never re-arm between
		// utterances only a few strides apart.
		s, err := r.c.OpenStream(c, r.serve.ID, v1.StreamOpenRequest{
			Quantized:    r.cfg.Quantized,
			Threshold:    streamThreshold,
			Release:      streamRelease,
			Smooth:       2,
			Suppress:     4,
			IgnoreLabels: []string{"noise"},
		})
		sess = s
		return err
	}); err != nil {
		return
	}

	var mu sync.Mutex
	var detections []v1.StreamEvent
	tailCtx, cancelTail := context.WithTimeout(ctx, jobTimeout)
	defer cancelTail()
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- sess.Events(tailCtx, 0, func(ev v1.StreamEvent) error {
			if ev.Type == "detection" {
				mu.Lock()
				detections = append(detections, ev)
				mu.Unlock()
			}
			return nil
		})
	}()

	clean := r.pushAll(ctx, sess, src)

	if _, err := r.timed(ctx, OpStreamClose, func(c context.Context) error {
		_, err := sess.Close(c)
		return err
	}); err != nil {
		clean = false
	}
	if err := <-tailDone; err != nil {
		r.rec.fail(OpStreamClose, "event_tail")
		clean = false
	}
	if !clean {
		return
	}

	mu.Lock()
	defer mu.Unlock()
	r.scoreSession(sess.Info.WindowSamples, truth, detections)
}

// pushAll feeds the whole source in stride-sized chunks, retrying each
// chunk through backpressure sheds so ground truth is never lost to a
// drop. Returns false when a chunk hit a hard error or exhausted its
// retry budget.
func (r *runner) pushAll(ctx context.Context, sess *client.StreamSession, src *synth.Source) bool {
	for {
		chunk := src.Next(sess.Info.StrideSamples)
		if chunk == nil {
			return true
		}
		attempts := 0
		for {
			shed, err := r.timed(ctx, OpStreamPush, func(c context.Context) error {
				_, err := sess.Push(c, chunk)
				return err
			})
			if err == nil {
				break
			}
			if !shed {
				return false
			}
			attempts++
			if attempts > maxPushRetries {
				r.rec.fail(OpStreamPush, "retry_budget")
				return false
			}
			wait := 50 * time.Millisecond
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 && apiErr.RetryAfter < time.Second {
				wait = apiErr.RetryAfter
			}
			select {
			case <-ctx.Done():
				return false
			case <-time.After(wait):
			}
		}
	}
}

// scoreSession matches detections to ground-truth utterances by window
// overlap: each utterance should be hit exactly once; surplus or
// non-overlapping detections count as false fires.
func (r *runner) scoreSession(windowSamples int, truth []synth.Event, detections []v1.StreamEvent) {
	hits := make([]int, len(truth))
	falseFires := 0
	for _, d := range detections {
		winEnd := d.WindowStart + int64(windowSamples)
		matched := false
		for i, ev := range truth {
			if d.WindowStart < int64(ev.EndSample) && winEnd > int64(ev.StartSample) {
				if hits[i] == 0 {
					hits[i]++
					matched = true
				}
				break
			}
		}
		if !matched {
			falseFires++
		}
	}
	detected := 0
	for _, n := range hits {
		if n > 0 {
			detected++
		}
	}
	r.recall.add(len(truth), detected, len(truth)-detected, falseFires)
}

// opTrain submits a background training job on the jobs project and
// waits it out. The measured latency is the submission; a job that
// ends failed counts as a hard error.
func (r *runner) opTrain(ctx context.Context, seed int64) {
	var accepted *v1.JobAccepted
	if _, err := r.timed(ctx, OpTrain, func(c context.Context) error {
		a, err := r.c.Train(c, r.jobs.ID, v1.TrainRequest{
			Model:        v1.ModelSpec{Type: "conv1d", Depth: 1, StartFilters: 4, EndFilters: 4},
			Epochs:       r.cfg.JobEpochs,
			LearningRate: 0.005,
			Seed:         seed,
		})
		accepted = a
		return err
	}); err != nil {
		return
	}
	r.awaitJob(ctx, OpTrain, accepted.JobID)
}

func (r *runner) opTune(ctx context.Context, seed int64) {
	var accepted *v1.JobAccepted
	if _, err := r.timed(ctx, OpTune, func(c context.Context) error {
		a, err := r.c.Tuner(c, r.jobs.ID, v1.TunerRequest{
			MaxTrials: 1, Epochs: 1, Seed: seed,
		})
		accepted = a
		return err
	}); err != nil {
		return
	}
	r.awaitJob(ctx, OpTune, accepted.JobID)
}

// awaitJob waits for a submitted job's terminal state, outside the
// latency measurement: queue wait is scheduler capacity, not request
// latency.
func (r *runner) awaitJob(ctx context.Context, op, jobID string) {
	waitCtx, cancel := context.WithTimeout(ctx, jobTimeout)
	defer cancel()
	done, err := r.c.WaitJob(waitCtx, jobID)
	if err != nil {
		r.rec.fail(op, "job_wait")
		return
	}
	if done.Status != v1.JobFinished {
		r.rec.fail(op, "job_"+done.Status)
	}
}

// Scenarios lists the valid mix scenario names in canonical order.
func Scenarios() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	sort.Strings(names)
	return names
}
