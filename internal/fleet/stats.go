package fleet

import (
	"errors"
	"sort"
	"sync"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
)

// Operation names as they appear in OpStats and FLEET records.
const (
	OpUpload        = "upload"
	OpClassify      = "classify"
	OpClassifyBatch = "classify_batch"
	OpStreamOpen    = "stream_open"
	OpStreamPush    = "stream_push"
	OpStreamClose   = "stream_close"
	OpTrain         = "train"
	OpTune          = "tune"
)

// codeTransport labels failures that never produced an HTTP response.
const codeTransport = "transport"

// shedCodes are the stable error codes that mean "back off and retry"
// rather than "this request was wrong": each one arrives as 429 or 503
// with a Retry-After hint.
var shedCodes = map[string]bool{
	v1.CodeOverloaded:   true,
	v1.CodeBackpressure: true,
	v1.CodeNoShard:      true,
	v1.CodeRateLimited:  true,
	v1.CodeUnavailable:  true,
}

// opAgg accumulates one operation's outcomes.
type opAgg struct {
	lat              []float64 // milliseconds, one entry per attempt
	shed             int64
	shedNoRetryAfter int64
	hard             int64
	byCode           map[string]int64
}

// recorder is the concurrent sink every device goroutine reports into.
type recorder struct {
	mu  sync.Mutex
	ops map[string]*opAgg
}

func newRecorder() *recorder {
	return &recorder{ops: make(map[string]*opAgg)}
}

func (r *recorder) agg(op string) *opAgg {
	a := r.ops[op]
	if a == nil {
		a = &opAgg{byCode: make(map[string]int64)}
		r.ops[op] = a
	}
	return a
}

// observe records one attempt: its latency plus the outcome decoded
// from err (nil = success, *client.APIError = classified by code,
// anything else = transport failure). It returns true when the error
// was a retryable shed.
func (r *recorder) observe(op string, d time.Duration, err error) (shed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.agg(op)
	a.lat = append(a.lat, float64(d)/float64(time.Millisecond))
	if err == nil {
		return false
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		a.hard++
		a.byCode[codeTransport]++
		return false
	}
	code := apiErr.Code
	if code == "" {
		code = codeTransport
	}
	a.byCode[code]++
	if shedCodes[code] {
		a.shed++
		if apiErr.RetryAfter <= 0 {
			a.shedNoRetryAfter++
		}
		return true
	}
	a.hard++
	return false
}

// fail records an attempt that went wrong outside the request itself —
// a job that was accepted but ended failed. The submission latency was
// already observed; this only bumps the failure counters.
func (r *recorder) fail(op, code string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.agg(op)
	a.hard++
	a.byCode[code]++
}

// stats folds the aggregates into the sorted OpStats slice of a Result.
func (r *recorder) stats(wall time.Duration) []OpStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ops))
	for op := range r.ops {
		names = append(names, op)
	}
	sort.Strings(names)
	out := make([]OpStats, 0, len(names))
	for _, op := range names {
		a := r.ops[op]
		lat := append([]float64(nil), a.lat...)
		sort.Float64s(lat)
		st := OpStats{
			Op:               op,
			Count:            int64(len(a.lat)),
			Shed:             a.shed,
			ShedNoRetryAfter: a.shedNoRetryAfter,
			HardErrors:       a.hard,
			P50MS:            percentile(lat, 50),
			P95MS:            percentile(lat, 95),
			P99MS:            percentile(lat, 99),
			MaxMS:            percentile(lat, 100),
			MeanMS:           mean(lat),
		}
		if len(a.byCode) > 0 {
			st.ByCode = make(map[string]int64, len(a.byCode))
			for c, n := range a.byCode {
				st.ByCode[c] = n
			}
		}
		if secs := wall.Seconds(); secs > 0 {
			st.OpsPerSec = float64(st.Count) / secs
		}
		out = append(out, st)
	}
	return out
}

// percentile is the nearest-rank percentile of an ascending slice
// (p in [0,100]; 0 for an empty slice).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// recallAgg accumulates streaming ground-truth comparisons.
type recallAgg struct {
	mu       sync.Mutex
	sessions int
	events   int
	detected int
	missed   int
	false_   int
}

func (r *recallAgg) add(events, detected, missed, falseFires int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions++
	r.events += events
	r.detected += detected
	r.missed += missed
	r.false_ += falseFires
}

func (r *recallAgg) stats() RecallStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RecallStats{
		Sessions: r.sessions, Events: r.events,
		Detected: r.detected, Missed: r.missed, False: r.false_,
		Recall: 1,
	}
	if st.Events > 0 {
		st.Recall = float64(st.Detected) / float64(st.Events)
	}
	return st
}
