package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// OpStats aggregates one operation type's outcomes across every device
// in a run. Latencies cover all attempts that reached the target —
// successes and sheds alike — because a shed answer is still an answer
// the device had to wait for.
type OpStats struct {
	// Op is the operation name (OpClassify, OpStreamPush, ...).
	Op string `json:"op"`
	// Count is the total attempts issued.
	Count int64 `json:"count"`
	// Shed counts retryable refusals (429/503 with a stable code:
	// overloaded, backpressure, no_shard, rate_limited, unavailable).
	Shed int64 `json:"shed"`
	// ShedNoRetryAfter counts shed responses missing the Retry-After
	// hint — an SLO violation, always expected to be 0.
	ShedNoRetryAfter int64 `json:"shed_no_retry_after"`
	// HardErrors counts everything else that failed: 4xx/5xx with
	// non-retryable codes, transport failures, job runs that ended
	// failed.
	HardErrors int64 `json:"hard_errors"`
	// ByCode breaks refusals and failures down by stable error code
	// ("transport" for non-HTTP failures).
	ByCode map[string]int64 `json:"by_code,omitempty"`
	// Latency percentiles over all attempts, milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
	// OpsPerSec is Count divided by the storm's wall time.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// HardErrorRate is HardErrors / Count (0 for an unused op).
func (o *OpStats) HardErrorRate() float64 {
	if o.Count == 0 {
		return 0
	}
	return float64(o.HardErrors) / float64(o.Count)
}

// RecallStats compares streamed detections against the ground truth
// events the synthesizer embedded in every streaming device's feed.
type RecallStats struct {
	// Sessions is the number of completed streaming sessions.
	Sessions int `json:"sessions"`
	// Events is the total embedded ground-truth utterances.
	Events int `json:"events"`
	// Detected counts utterances matched by exactly one detection.
	Detected int `json:"detected"`
	// Missed counts utterances no detection overlapped.
	Missed int `json:"missed"`
	// False counts detections overlapping no utterance, or duplicate
	// hits on an already-matched utterance.
	False int `json:"false"`
	// Recall is Detected / Events (1 when Events is 0).
	Recall float64 `json:"recall"`
}

// TargetDelta is the change in the target's runtime gauges across the
// storm, read from /metrics before and after. Available is false when
// the target predates the runtime block.
type TargetDelta struct {
	Available      bool  `json:"available"`
	Goroutines     int   `json:"goroutines"`
	HeapAllocBytes int64 `json:"heap_alloc_bytes"`
}

// Result is one complete fleet run: what was asked for, what the
// target did, and how long everything took.
type Result struct {
	// Target is the base URL the storm was aimed at.
	Target string `json:"target"`
	// Config echoes the scenario configuration, defaults applied.
	Config Config `json:"config"`
	// SetupSeconds covers environment setup: users, projects, dataset
	// upload and the serving model's training run.
	SetupSeconds float64 `json:"setup_seconds"`
	// WallSeconds is the storm itself, first op to last.
	WallSeconds float64 `json:"wall_seconds"`
	// Ops is the per-operation breakdown, sorted by op name.
	Ops []OpStats `json:"ops"`
	// Recall aggregates streaming detection quality.
	Recall RecallStats `json:"recall"`
	// TargetDelta is the target-side goroutine/heap movement.
	TargetDelta TargetDelta `json:"target_delta"`
}

// Op returns the named op's stats, or nil when the run never issued it.
func (r *Result) Op(name string) *OpStats {
	for i := range r.Ops {
		if r.Ops[i].Op == name {
			return &r.Ops[i]
		}
	}
	return nil
}

// InteractiveOps are the operations the admission gate classifies as
// interactive: per the resilience contract they are never shed with
// "overloaded", no matter the load.
var InteractiveOps = []string{OpClassify, OpClassifyBatch, OpStreamOpen, OpStreamPush, OpStreamClose}

// SLO is the assertion set a fleet result is gated on. The zero value
// checks nothing; DefaultSLO is the platform contract.
type SLO struct {
	// InteractiveNoShed requires zero "overloaded" refusals on the
	// interactive ops (InteractiveOps).
	InteractiveNoShed bool `json:"interactive_no_shed"`
	// RequireRetryAfter requires every shed response to carry a
	// Retry-After hint.
	RequireRetryAfter bool `json:"require_retry_after"`
	// FullRecall requires every embedded utterance detected exactly
	// once: no misses, no false fires.
	FullRecall bool `json:"full_recall"`
	// MaxHardErrorRate caps each op's HardErrors/Count fraction.
	// Negative disables the check; 0 demands zero hard errors.
	MaxHardErrorRate float64 `json:"max_hard_error_rate"`
}

// DefaultSLO is the platform's steady-state contract: interactive
// traffic always admitted, sheds always retryable, detections exact,
// no hard errors at all.
func DefaultSLO() SLO {
	return SLO{InteractiveNoShed: true, RequireRetryAfter: true, FullRecall: true}
}

// Violations evaluates the result against an SLO and returns one
// human-readable line per violated clause (empty = compliant).
func (r *Result) Violations(s SLO) []string {
	var v []string
	interactive := make(map[string]bool, len(InteractiveOps))
	for _, op := range InteractiveOps {
		interactive[op] = true
	}
	for _, o := range r.Ops {
		if s.InteractiveNoShed && interactive[o.Op] {
			if n := o.ByCode["overloaded"]; n > 0 {
				v = append(v, fmt.Sprintf("%s: %d interactive requests shed overloaded (must be 0)", o.Op, n))
			}
		}
		if s.RequireRetryAfter && o.ShedNoRetryAfter > 0 {
			v = append(v, fmt.Sprintf("%s: %d shed responses without Retry-After", o.Op, o.ShedNoRetryAfter))
		}
		if s.MaxHardErrorRate >= 0 && o.HardErrorRate() > s.MaxHardErrorRate {
			v = append(v, fmt.Sprintf("%s: hard error rate %.4f above %.4f (%d/%d)",
				o.Op, o.HardErrorRate(), s.MaxHardErrorRate, o.HardErrors, o.Count))
		}
	}
	if s.FullRecall {
		if r.Recall.Missed > 0 || r.Recall.False > 0 {
			v = append(v, fmt.Sprintf("recall: %d/%d utterances detected, %d missed, %d false fires",
				r.Recall.Detected, r.Recall.Events, r.Recall.Missed, r.Recall.False))
		}
	}
	return v
}

// Record is the committed FLEET_<stamp>.json schema: a Result plus the
// stamp and platform fields the ratchet series needs, mirroring the
// BENCH_*.json layout.
type Record struct {
	// Stamp is UTC YYYYMMDD-HHMMSS; the series sorts by it.
	Stamp  string `json:"stamp"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	Result
}

// WriteRecord stamps the result and writes it as indented JSON. A
// literal "STAMP" in path is replaced with the UTC timestamp, matching
// cmd/ei-bench's BENCH_STAMP.json convention. It returns the final
// path.
func WriteRecord(path string, res *Result) (string, error) {
	stamp := time.Now().UTC().Format("20060102-150405")
	path = strings.ReplaceAll(path, "STAMP", stamp)
	rec := Record{Stamp: stamp, GoOS: runtime.GOOS, GoArch: runtime.GOARCH, Result: *res}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRecords parses every FLEET_*.json in dir, ordered oldest to
// newest by stamp (lexicographic; the stamps are YYYYMMDD-HHMMSS).
func LoadRecords(dir string) ([]Record, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "FLEET_*.json"))
	if err != nil {
		return nil, err
	}
	var series []Record
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if rec.Stamp == "" {
			return nil, fmt.Errorf("%s: missing stamp", p)
		}
		series = append(series, rec)
	}
	sort.Slice(series, func(i, j int) bool { return series[i].Stamp < series[j].Stamp })
	return series, nil
}
