package cbor

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", v, err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%x): %v", data, err)
	}
	return got
}

func TestScalars(t *testing.T) {
	if got := roundTrip(t, uint64(0)); got != uint64(0) {
		t.Errorf("0 -> %v", got)
	}
	if got := roundTrip(t, uint64(23)); got != uint64(23) {
		t.Errorf("23 -> %v", got)
	}
	if got := roundTrip(t, uint64(255)); got != uint64(255) {
		t.Errorf("255 -> %v", got)
	}
	if got := roundTrip(t, uint64(65536)); got != uint64(65536) {
		t.Errorf("65536 -> %v", got)
	}
	if got := roundTrip(t, int64(-1)); got != int64(-1) {
		t.Errorf("-1 -> %v", got)
	}
	if got := roundTrip(t, int64(-500)); got != int64(-500) {
		t.Errorf("-500 -> %v", got)
	}
	if got := roundTrip(t, true); got != true {
		t.Errorf("true -> %v", got)
	}
	if got := roundTrip(t, false); got != false {
		t.Errorf("false -> %v", got)
	}
	if got := roundTrip(t, nil); got != nil {
		t.Errorf("nil -> %v", got)
	}
	if got := roundTrip(t, 3.25); got != 3.25 {
		t.Errorf("3.25 -> %v", got)
	}
	if got := roundTrip(t, "hello"); got != "hello" {
		t.Errorf("hello -> %v", got)
	}
	if got := roundTrip(t, float32(1.5)); got != float64(1.5) {
		t.Errorf("float32 -> %v", got)
	}
}

func TestRFC8949Vectors(t *testing.T) {
	// Known encodings from the RFC appendix.
	cases := []struct {
		v    any
		want []byte
	}{
		{uint64(0), []byte{0x00}},
		{uint64(10), []byte{0x0a}},
		{uint64(23), []byte{0x17}},
		{uint64(24), []byte{0x18, 0x18}},
		{uint64(1000), []byte{0x19, 0x03, 0xe8}},
		{int64(-10), []byte{0x29}},
		{"a", []byte{0x61, 0x61}},
		{"IETF", []byte{0x64, 0x49, 0x45, 0x54, 0x46}},
		{true, []byte{0xf5}},
		{nil, []byte{0xf6}},
	}
	for _, c := range cases {
		got, err := Marshal(c.v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("Marshal(%v) = %x, want %x", c.v, got, c.want)
		}
	}
}

func TestComposite(t *testing.T) {
	v := map[string]any{
		"device": "nano-33",
		"rate":   uint64(16000),
		"values": []any{1.0, 2.0, -3.5},
		"raw":    []byte{1, 2, 3},
		"nested": map[string]any{"ok": true},
	}
	got := roundTrip(t, v).(map[string]any)
	if got["device"] != "nano-33" || got["rate"] != uint64(16000) {
		t.Errorf("scalars: %v", got)
	}
	vals := got["values"].([]any)
	if len(vals) != 3 || vals[2] != -3.5 {
		t.Errorf("values: %v", vals)
	}
	if !bytes.Equal(got["raw"].([]byte), []byte{1, 2, 3}) {
		t.Errorf("raw: %v", got["raw"])
	}
	if got["nested"].(map[string]any)["ok"] != true {
		t.Errorf("nested: %v", got["nested"])
	}
}

func TestDeterministicMapEncoding(t *testing.T) {
	v := map[string]any{"b": uint64(1), "a": uint64(2), "c": uint64(3)}
	d1, _ := Marshal(v)
	d2, _ := Marshal(v)
	if !bytes.Equal(d1, d2) {
		t.Fatal("map encoding not deterministic")
	}
	// Keys sorted: "a" before "b" before "c".
	ia := bytes.Index(d1, []byte("a"))
	ib := bytes.Index(d1, []byte("b"))
	ic := bytes.Index(d1, []byte("c"))
	if !(ia < ib && ib < ic) {
		t.Fatalf("keys not sorted: a@%d b@%d c@%d", ia, ib, ic)
	}
}

func TestFloatSliceEncodings(t *testing.T) {
	f64 := roundTrip(t, []float64{1, 2, 3}).([]any)
	if len(f64) != 3 || f64[0] != 1.0 {
		t.Errorf("f64 slice: %v", f64)
	}
	f32 := roundTrip(t, []float32{1.5, 2.5}).([]any)
	if len(f32) != 2 || f32[1] != 2.5 {
		t.Errorf("f32 slice: %v", f32)
	}
}

func TestUnsupportedType(t *testing.T) {
	if _, err := Marshal(struct{}{}); err == nil {
		t.Fatal("accepted struct")
	}
	if _, err := Marshal(map[string]any{"x": struct{}{}}); err == nil {
		t.Fatal("accepted nested struct")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},                             // empty
		{0x18},                         // truncated uint8
		{0x19, 0x01},                   // truncated uint16
		{0x61},                         // truncated string
		{0x81},                         // truncated array
		{0xa1, 0x01, 0x02},             // non-string map key
		{0x5a, 0xff, 0xff, 0xff, 0xff}, // absurd byte length
		{0x9a, 0xff, 0xff, 0xff, 0xff}, // absurd array length
		{0x1c},                         // invalid additional info
		{0xf8, 0x01},                   // unsupported simple
		{0x00, 0x00},                   // trailing bytes
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d (%x): accepted", i, c)
		}
	}
}

func TestDeepNestingRejected(t *testing.T) {
	// 100 nested arrays exceed the depth limit.
	data := bytes.Repeat([]byte{0x81}, 100)
	data = append(data, 0x00)
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("accepted deep nesting")
	}
}

func TestFloat16Decode(t *testing.T) {
	cases := []struct {
		bits uint16
		want float64
	}{
		{0x3C00, 1.0},
		{0xC000, -2.0},
		{0x7BFF, 65504},
		{0x0000, 0},
		{0x3555, 0.333251953125},
	}
	for _, c := range cases {
		data := []byte{0xf9, byte(c.bits >> 8), byte(c.bits)}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.(float64)-c.want) > 1e-9 {
			t.Errorf("f16 %04x -> %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestTagsSkipped(t *testing.T) {
	// Tag 1 (epoch time) wrapping uint 100.
	data := []byte{0xc1, 0x18, 0x64}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != uint64(100) {
		t.Errorf("tagged -> %v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng, 0)
		data, err := Marshal(v)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(v), got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomValue generates CBOR-encodable values.
func randomValue(rng *rand.Rand, depth int) any {
	max := 7
	if depth > 3 {
		max = 5 // scalars only
	}
	switch rng.Intn(max) {
	case 0:
		return uint64(rng.Intn(1 << 20))
	case 1:
		return int64(-rng.Intn(1<<20) - 1)
	case 2:
		return rng.NormFloat64()
	case 3:
		return string(rune('a' + rng.Intn(26)))
	case 4:
		return rng.Intn(2) == 0
	case 5:
		n := rng.Intn(4)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randomValue(rng, depth+1)
		}
		return arr
	default:
		n := rng.Intn(4)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			m[string(rune('a'+i))] = randomValue(rng, depth+1)
		}
		return m
	}
}

// normalize converts a value to its post-roundtrip representation.
func normalize(v any) any {
	switch x := v.(type) {
	case []any:
		out := make([]any, len(x))
		for i := range x {
			out[i] = normalize(x[i])
		}
		return out
	case map[string]any:
		out := map[string]any{}
		for k, e := range x {
			out[k] = normalize(e)
		}
		return out
	default:
		return v
	}
}

func BenchmarkMarshalPayload(b *testing.B) {
	values := make([]any, 100)
	for i := range values {
		values[i] = float64(i) * 0.5
	}
	v := map[string]any{"device": "x", "values": values}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(v)
	}
}
