package cbor

import (
	"bytes"
	"testing"
)

// FuzzCBORDecode hammers the CBOR decoder with adversarial bytes. The
// decoder sits on the device-ingestion path (signed acquisition
// payloads arrive CBOR-encoded from firmware), so it must never panic,
// recurse unboundedly or allocate huge buffers from forged length
// headers; and everything it accepts must re-encode and decode again
// (the canonicalization the ingestion service relies on).
//
// CI runs it for 10s: go test -fuzz=FuzzCBORDecode -fuzztime=10s ./internal/cbor
func FuzzCBORDecode(f *testing.F) {
	// Seeds: canonical encodings of representative values...
	for _, v := range []any{
		nil, true, uint64(23), int64(-1000000), 3.14159, "hello",
		[]byte{0xde, 0xad}, []any{uint64(1), "two", []any{3.0}},
		map[string]any{"protected": []byte{}, "payload": map[string]any{"values": []any{int64(-4)}}},
	} {
		if b, err := Marshal(v); err == nil {
			f.Add(b)
		}
	}
	// ...plus hostile shapes: forged huge lengths, deep nesting, tags,
	// truncated heads, float16 specials.
	f.Add([]byte{0x9b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // array len 2^64-1
	f.Add([]byte{0xbb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // map len 2^64-1
	f.Add([]byte{0x5b, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00}) // bytes len 4GiB
	f.Add(bytes.Repeat([]byte{0x81}, 200))                              // 200-deep nested arrays
	f.Add([]byte{0xc6, 0xc6, 0xc6, 0x00})                               // chained tags
	f.Add([]byte{0xf9, 0x7c, 0x00})                                     // float16 +Inf
	f.Add([]byte{0xf9, 0x03, 0xff})                                     // float16 subnormal
	f.Add([]byte{0x3b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // nint overflow
	f.Add([]byte{0x18})                                                 // truncated head

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil {
			return // rejection is fine; panicking or OOM is not
		}
		// Everything the decoder produces must be re-encodable: its
		// output vocabulary is the encoder's input vocabulary.
		encoded, err := Marshal(v)
		if err != nil {
			t.Fatalf("decoded value %T does not re-encode: %v", v, err)
		}
		// And the canonical encoding must decode again.
		if _, err := Unmarshal(encoded); err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
	})
}
