// Package cbor implements the subset of RFC 8949 (Concise Binary Object
// Representation) used by the edgepulse data-acquisition format: unsigned
// and negative integers, byte and text strings, arrays, string-keyed
// maps, booleans, null, and IEEE 754 floats. CBOR is one of the ingestion
// payload encodings the platform accepts (paper Sec. 4.1), chosen because
// constrained devices can emit it with tiny encoders.
//
// Encoding is canonical-ish: map keys are sorted lexicographically, so
// the same value always encodes to the same bytes (required for HMAC
// signing of payloads).
package cbor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Major types of RFC 8949.
const (
	majUint  = 0
	majNint  = 1
	majBytes = 2
	majText  = 3
	majArray = 4
	majMap   = 5
	majTag   = 6
	majOther = 7
)

// maxNesting bounds recursion when decoding adversarial input.
const maxNesting = 64

// Marshal encodes a Go value to CBOR. Supported types: nil, bool, int,
// int64, uint64, float32, float64, string, []byte, []any, []float64,
// map[string]any.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encode(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeHead(buf *bytes.Buffer, major byte, n uint64) {
	switch {
	case n < 24:
		buf.WriteByte(major<<5 | byte(n))
	case n <= 0xFF:
		buf.WriteByte(major<<5 | 24)
		buf.WriteByte(byte(n))
	case n <= 0xFFFF:
		buf.WriteByte(major<<5 | 25)
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], uint16(n))
		buf.Write(b[:])
	case n <= 0xFFFFFFFF:
		buf.WriteByte(major<<5 | 26)
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(n))
		buf.Write(b[:])
	default:
		buf.WriteByte(major<<5 | 27)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], n)
		buf.Write(b[:])
	}
}

func encode(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteByte(majOther<<5 | 22)
	case bool:
		if x {
			buf.WriteByte(majOther<<5 | 21)
		} else {
			buf.WriteByte(majOther<<5 | 20)
		}
	case int:
		return encode(buf, int64(x))
	case int32:
		return encode(buf, int64(x))
	case int64:
		if x >= 0 {
			encodeHead(buf, majUint, uint64(x))
		} else {
			encodeHead(buf, majNint, uint64(-1-x))
		}
	case uint64:
		encodeHead(buf, majUint, x)
	case float32:
		buf.WriteByte(majOther<<5 | 26)
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], math.Float32bits(x))
		buf.Write(b[:])
	case float64:
		buf.WriteByte(majOther<<5 | 27)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
		buf.Write(b[:])
	case string:
		encodeHead(buf, majText, uint64(len(x)))
		buf.WriteString(x)
	case []byte:
		encodeHead(buf, majBytes, uint64(len(x)))
		buf.Write(x)
	case []any:
		encodeHead(buf, majArray, uint64(len(x)))
		for _, e := range x {
			if err := encode(buf, e); err != nil {
				return err
			}
		}
	case []float64:
		encodeHead(buf, majArray, uint64(len(x)))
		for _, e := range x {
			if err := encode(buf, e); err != nil {
				return err
			}
		}
	case []float32:
		encodeHead(buf, majArray, uint64(len(x)))
		for _, e := range x {
			if err := encode(buf, e); err != nil {
				return err
			}
		}
	case map[string]any:
		encodeHead(buf, majMap, uint64(len(x)))
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := encode(buf, k); err != nil {
				return err
			}
			if err := encode(buf, x[k]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("cbor: unsupported type %T", v)
	}
	return nil
}

// Unmarshal decodes CBOR bytes into Go values: uint64/int64 for ints,
// float64 for floats, string, []byte, []any, map[string]any, bool, nil.
// Trailing bytes after the first item are an error.
func Unmarshal(data []byte) (any, error) {
	d := &decoder{data: data}
	v, err := d.decode(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("cbor: %d trailing bytes", len(data)-d.pos)
	}
	return v, nil
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("cbor: unexpected end of input")
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) take(n uint64) ([]byte, error) {
	if n > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("cbor: length %d exceeds input", n)
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *decoder) head(info byte) (uint64, error) {
	switch {
	case info < 24:
		return uint64(info), nil
	case info == 24:
		b, err := d.take(1)
		if err != nil {
			return 0, err
		}
		return uint64(b[0]), nil
	case info == 25:
		b, err := d.take(2)
		if err != nil {
			return 0, err
		}
		return uint64(binary.BigEndian.Uint16(b)), nil
	case info == 26:
		b, err := d.take(4)
		if err != nil {
			return 0, err
		}
		return uint64(binary.BigEndian.Uint32(b)), nil
	case info == 27:
		b, err := d.take(8)
		if err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint64(b), nil
	default:
		return 0, fmt.Errorf("cbor: unsupported additional info %d", info)
	}
}

func (d *decoder) decode(depth int) (any, error) {
	if depth > maxNesting {
		return nil, fmt.Errorf("cbor: nesting exceeds %d", maxNesting)
	}
	b, err := d.byte()
	if err != nil {
		return nil, err
	}
	major, info := b>>5, b&0x1F
	switch major {
	case majUint:
		n, err := d.head(info)
		return n, err
	case majNint:
		n, err := d.head(info)
		if err != nil {
			return nil, err
		}
		if n > math.MaxInt64-1 {
			return nil, fmt.Errorf("cbor: negative integer overflow")
		}
		return -1 - int64(n), nil
	case majBytes:
		n, err := d.head(info)
		if err != nil {
			return nil, err
		}
		b, err := d.take(n)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), nil
	case majText:
		n, err := d.head(info)
		if err != nil {
			return nil, err
		}
		b, err := d.take(n)
		if err != nil {
			return nil, err
		}
		return string(b), nil
	case majArray:
		n, err := d.head(info)
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data)) { // each element takes >= 1 byte
			return nil, fmt.Errorf("cbor: array length %d exceeds input", n)
		}
		arr := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			e, err := d.decode(depth + 1)
			if err != nil {
				return nil, err
			}
			arr = append(arr, e)
		}
		return arr, nil
	case majMap:
		n, err := d.head(info)
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.data))/2 {
			return nil, fmt.Errorf("cbor: map length %d exceeds input", n)
		}
		m := make(map[string]any, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.decode(depth + 1)
			if err != nil {
				return nil, err
			}
			ks, ok := k.(string)
			if !ok {
				return nil, fmt.Errorf("cbor: non-string map key %T", k)
			}
			v, err := d.decode(depth + 1)
			if err != nil {
				return nil, err
			}
			m[ks] = v
		}
		return m, nil
	case majTag:
		// Skip the tag number, decode the tagged value transparently.
		if _, err := d.head(info); err != nil {
			return nil, err
		}
		return d.decode(depth + 1)
	case majOther:
		switch info {
		case 20:
			return false, nil
		case 21:
			return true, nil
		case 22, 23:
			return nil, nil
		case 25: // float16
			b, err := d.take(2)
			if err != nil {
				return nil, err
			}
			return float64(decodeFloat16(binary.BigEndian.Uint16(b))), nil
		case 26:
			b, err := d.take(4)
			if err != nil {
				return nil, err
			}
			return float64(math.Float32frombits(binary.BigEndian.Uint32(b))), nil
		case 27:
			b, err := d.take(8)
			if err != nil {
				return nil, err
			}
			return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
		default:
			return nil, fmt.Errorf("cbor: unsupported simple value %d", info)
		}
	}
	return nil, fmt.Errorf("cbor: unreachable major type %d", major)
}

// decodeFloat16 expands an IEEE 754 binary16 value.
func decodeFloat16(h uint16) float32 {
	sign := uint32(h>>15) & 1
	exp := uint32(h>>10) & 0x1F
	frac := uint32(h) & 0x3FF
	var f32 uint32
	switch exp {
	case 0: // subnormal or zero
		if frac == 0 {
			f32 = sign << 31
		} else {
			// Normalize.
			e := uint32(127 - 15 + 1)
			for frac&0x400 == 0 {
				frac <<= 1
				e--
			}
			frac &= 0x3FF
			f32 = sign<<31 | e<<23 | frac<<13
		}
	case 0x1F: // inf/nan
		f32 = sign<<31 | 0xFF<<23 | frac<<13
	default:
		f32 = sign<<31 | (exp+127-15)<<23 | frac<<13
	}
	return math.Float32frombits(f32)
}
