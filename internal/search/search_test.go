package search

import (
	"fmt"
	"math"
	"testing"
)

// quadObjective peaks at candidate `best`, improving with budget.
func quadObjective(best int) Objective {
	return func(c, budget int) (float64, error) {
		d := float64(c - best)
		noiselessAcc := 1 / (1 + d*d/100)
		// Larger budgets approach the true score from below.
		frac := 1 - 1/math.Sqrt(float64(budget)+1)
		return noiselessAcc * frac, nil
	}
}

func TestRandomFindsGoodCandidate(t *testing.T) {
	results, err := Random(100, 30, 10, 1, quadObjective(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Fatalf("%d results", len(results))
	}
	// Sorted descending.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatal("not sorted")
		}
	}
	// With 30 of 100 samples, the best found should be within 15 of optimum.
	if d := results[0].Candidate - 42; d < -15 || d > 15 {
		t.Errorf("best candidate %d too far from 42", results[0].Candidate)
	}
}

func TestRandomEvalClamp(t *testing.T) {
	results, err := Random(5, 100, 1, 2, quadObjective(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results, want all 5", len(results))
	}
	if _, err := Random(0, 5, 1, 1, quadObjective(0)); err == nil {
		t.Error("accepted empty space")
	}
}

func TestRandomPropagatesErrors(t *testing.T) {
	obj := func(c, b int) (float64, error) { return 0, fmt.Errorf("boom") }
	if _, err := Random(10, 3, 1, 1, obj); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestHyperbandConvergesToOptimum(t *testing.T) {
	evals := map[int]int{}
	obj := func(c, budget int) (float64, error) {
		evals[c]++
		return quadObjective(50)(c, budget)
	}
	results, err := Hyperband(100, 27, 3, obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if d := results[0].Candidate - 50; d < -10 || d > 10 {
		t.Errorf("hyperband best %d far from 50", results[0].Candidate)
	}
	// Survivors were evaluated more than once (successive halving).
	if evals[results[0].Candidate] < 2 {
		t.Errorf("winner evaluated %d times", evals[results[0].Candidate])
	}
	// Final rung uses the max budget.
	if results[0].Budget != 27 {
		t.Errorf("final budget %d, want 27", results[0].Budget)
	}
}

func TestHyperbandCheaperThanFullBudget(t *testing.T) {
	var total int
	obj := func(c, budget int) (float64, error) {
		total += budget
		return quadObjective(10)(c, budget)
	}
	if _, err := Hyperband(81, 27, 4, obj); err != nil {
		t.Fatal(err)
	}
	full := 81 * 27
	if total >= full {
		t.Errorf("hyperband spent %d budget units, full search costs %d", total, full)
	}
}

func TestHyperbandEmptySpace(t *testing.T) {
	if _, err := Hyperband(0, 9, 1, quadObjective(0)); err == nil {
		t.Error("accepted empty space")
	}
}

func TestSurrogateBeatsRandomOnSmooth(t *testing.T) {
	// Features = candidate coordinate; smooth objective. The surrogate
	// should concentrate evaluations near the optimum.
	n := 200
	features := make([][]float64, n)
	for i := range features {
		features[i] = []float64{float64(i)}
	}
	results, err := Surrogate(features, 40, 5, 3, quadObjective(120))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 40 {
		t.Fatalf("%d results", len(results))
	}
	if d := results[0].Candidate - 120; d < -10 || d > 10 {
		t.Errorf("surrogate best %d far from 120", results[0].Candidate)
	}
	if _, err := Surrogate(nil, 5, 1, 1, quadObjective(0)); err == nil {
		t.Error("accepted empty space")
	}
}

func TestSurrogateNoDuplicateEvaluations(t *testing.T) {
	n := 30
	features := make([][]float64, n)
	for i := range features {
		features[i] = []float64{float64(i)}
	}
	seen := map[int]int{}
	obj := func(c, b int) (float64, error) {
		seen[c]++
		return quadObjective(5)(c, b)
	}
	if _, err := Surrogate(features, 30, 2, 4, obj); err != nil {
		t.Fatal(err)
	}
	for c, n := range seen {
		if n > 1 {
			t.Errorf("candidate %d evaluated %d times", c, n)
		}
	}
	if len(seen) != 30 {
		t.Errorf("evaluated %d of 30", len(seen))
	}
}
