// Package search implements the hyperparameter search strategies behind
// the EON Tuner (paper Sec. 4.7): the random search it ships with, plus
// the Hyperband successive-halving and surrogate-guided strategies the
// paper lists as future work — implemented here as extensions. Users can
// override the default algorithm, matching the platform's "bring your
// own search method" hook.
package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Objective evaluates one candidate with a training budget (e.g. epochs)
// and returns a score where higher is better.
type Objective func(candidate, budget int) (float64, error)

// Result is one evaluated candidate.
type Result struct {
	// Candidate is the index into the search space.
	Candidate int
	// Score is the objective value at the largest budget evaluated.
	Score float64
	// Budget is the largest budget this candidate received.
	Budget int
}

// sortResults orders by descending score.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })
}

// Plan returns the candidate order Random would evaluate: `evals`
// candidates sampled uniformly without replacement. Exposed so callers
// that evaluate trials on a worker pool (the EON Tuner) select exactly
// the same candidates as the sequential strategy.
func Plan(nCandidates, evals int, seed int64) []int {
	if nCandidates <= 0 {
		return nil
	}
	if evals > nCandidates {
		evals = nCandidates
	}
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(nCandidates)[:evals]
}

// Random evaluates `evals` candidates sampled uniformly without
// replacement at a fixed budget — the EON Tuner's default strategy
// (random search, Bergstra et al.).
func Random(nCandidates, evals, budget int, seed int64, obj Objective) ([]Result, error) {
	if nCandidates <= 0 {
		return nil, fmt.Errorf("search: empty candidate space")
	}
	perm := Plan(nCandidates, evals, seed)
	results := make([]Result, 0, len(perm))
	for _, c := range perm {
		score, err := obj(c, budget)
		if err != nil {
			return nil, fmt.Errorf("search: candidate %d: %w", c, err)
		}
		results = append(results, Result{Candidate: c, Score: score, Budget: budget})
	}
	sortResults(results)
	return results, nil
}

// Hyperband runs successive halving (a single Hyperband bracket with
// eta=3 aggressiveness): many candidates at a small budget, keeping the
// top 1/eta at each rung until maxBudget — the bandit-based strategy of
// Li et al. that the paper cites as a planned improvement.
func Hyperband(nCandidates, maxBudget int, seed int64, obj Objective) ([]Result, error) {
	if nCandidates <= 0 {
		return nil, fmt.Errorf("search: empty candidate space")
	}
	const eta = 3
	rng := rand.New(rand.NewSource(seed))
	// Initial rung: all candidates (or a sample if huge) at budget
	// maxBudget / eta^rungs.
	rungs := int(math.Floor(math.Log(float64(nCandidates)) / math.Log(eta)))
	if rungs < 1 {
		rungs = 1
	}
	budget := maxBudget
	for i := 0; i < rungs; i++ {
		budget /= eta
	}
	if budget < 1 {
		budget = 1
	}
	alive := rng.Perm(nCandidates)
	final := []Result{}
	for {
		results := make([]Result, 0, len(alive))
		for _, c := range alive {
			score, err := obj(c, budget)
			if err != nil {
				return nil, fmt.Errorf("search: candidate %d at budget %d: %w", c, budget, err)
			}
			results = append(results, Result{Candidate: c, Score: score, Budget: budget})
		}
		sortResults(results)
		if budget >= maxBudget || len(results) == 1 {
			final = results
			break
		}
		keep := len(results) / eta
		if keep < 1 {
			keep = 1
		}
		alive = alive[:0]
		for _, r := range results[:keep] {
			alive = append(alive, r.Candidate)
		}
		budget *= eta
		if budget > maxBudget {
			budget = maxBudget
		}
	}
	return final, nil
}

// Surrogate runs a simple model-guided search: after a random warm-up it
// fits a nearest-neighbour surrogate over a user-provided feature vector
// per candidate and preferentially evaluates candidates whose neighbours
// scored well (exploitation) with ε-greedy exploration.
func Surrogate(features [][]float64, evals, budget int, seed int64, obj Objective) ([]Result, error) {
	n := len(features)
	if n == 0 {
		return nil, fmt.Errorf("search: empty candidate space")
	}
	if evals > n {
		evals = n
	}
	rng := rand.New(rand.NewSource(seed))
	evaluated := map[int]float64{}
	var results []Result
	evalOne := func(c int) error {
		score, err := obj(c, budget)
		if err != nil {
			return err
		}
		evaluated[c] = score
		results = append(results, Result{Candidate: c, Score: score, Budget: budget})
		return nil
	}
	// Warm-up: a third of the budget at random.
	warm := evals / 3
	if warm < 1 {
		warm = 1
	}
	for _, c := range rng.Perm(n)[:warm] {
		if err := evalOne(c); err != nil {
			return nil, err
		}
	}
	// Guided phase.
	for len(evaluated) < evals {
		var pick int
		if rng.Float64() < 0.2 {
			pick = randomUnevaluated(rng, n, evaluated)
		} else {
			pick = bestPredicted(features, evaluated)
			if pick < 0 {
				pick = randomUnevaluated(rng, n, evaluated)
			}
		}
		if err := evalOne(pick); err != nil {
			return nil, err
		}
	}
	sortResults(results)
	return results, nil
}

func randomUnevaluated(rng *rand.Rand, n int, evaluated map[int]float64) int {
	for {
		c := rng.Intn(n)
		if _, done := evaluated[c]; !done {
			return c
		}
	}
}

// bestPredicted returns the unevaluated candidate with the highest
// 3-NN-predicted score, or -1 if nothing can be predicted.
func bestPredicted(features [][]float64, evaluated map[int]float64) int {
	best, bestScore := -1, math.Inf(-1)
	for c := range features {
		if _, done := evaluated[c]; done {
			continue
		}
		pred := knnPredict(features, evaluated, c, 3)
		if pred > bestScore {
			best, bestScore = c, pred
		}
	}
	return best
}

func knnPredict(features [][]float64, evaluated map[int]float64, c, k int) float64 {
	type neighbour struct {
		d     float64
		score float64
	}
	var ns []neighbour
	for e, score := range evaluated {
		var d float64
		for j := range features[c] {
			diff := features[c][j] - features[e][j]
			d += diff * diff
		}
		ns = append(ns, neighbour{d, score})
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].d < ns[j].d })
	if len(ns) > k {
		ns = ns[:k]
	}
	var sum float64
	for _, n := range ns {
		sum += n.score
	}
	if len(ns) == 0 {
		return math.Inf(-1)
	}
	return sum / float64(len(ns))
}
