package dsp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"edgepulse/internal/fastmath"
	"edgepulse/internal/fft"
	"edgepulse/internal/tensor"
)

func init() {
	Register("spectral-analysis", func(p map[string]float64) (Block, error) { return NewSpectral(p) })
	Register("raw", func(p map[string]float64) (Block, error) { return NewRaw(p) })
	Register("flatten", func(p map[string]float64) (Block, error) { return NewFlatten(p) })
}

// Spectral implements the spectral-analysis block used for vibration and
// motion workloads (predictive maintenance, activity recognition): per
// axis it emits RMS, skewness, kurtosis and the log power of the top FFT
// bins.
type Spectral struct {
	FFTSize int
	// NumPeaks is how many spectral power bins to emit per axis.
	NumPeaks int
	// ScaleAxes multiplies raw values before analysis.
	ScaleAxes float64

	// rt caches the FFT plan and pooled window/accumulator scratch.
	rt atomic.Pointer[spectralRT]
}

// spectralRT is the precomputed transform state of a spectral block.
type spectralRT struct {
	fftSize int
	plan    *fft.RealPlan
	pool    sync.Pool // *spectralScratch
}

// spectralScratch is one extraction's working state.
type spectralScratch struct {
	buf   []float32 // mean-removed window
	power []float32 // per-window power spectrum
	acc   []float64 // averaged spectrum accumulator
	fftSc *fft.RealScratch
}

func (s *Spectral) runtime() (*spectralRT, error) {
	if rt := s.rt.Load(); rt != nil && rt.fftSize == s.FFTSize {
		return rt, nil
	}
	plan, err := fft.NewRealPlan(s.FFTSize)
	if err != nil {
		return nil, err
	}
	rt := &spectralRT{fftSize: s.FFTSize, plan: plan}
	rt.pool.New = func() any {
		return &spectralScratch{
			buf:   make([]float32, plan.Size()),
			power: make([]float32, plan.Bins()),
			acc:   make([]float64, plan.Bins()),
			fftSc: plan.Scratch(),
		}
	}
	s.rt.Store(rt)
	return rt, nil
}

// NewSpectral builds a spectral-analysis block from a parameter map.
func NewSpectral(p map[string]float64) (*Spectral, error) {
	s := &Spectral{
		FFTSize:   int(getParam(p, "fft_length", 64)),
		NumPeaks:  int(getParam(p, "num_peaks", 16)),
		ScaleAxes: getParam(p, "scale_axes", 1),
	}
	if !fft.IsPow2(s.FFTSize) {
		return nil, fmt.Errorf("spectral: fft_length %d is not a power of two", s.FFTSize)
	}
	if s.NumPeaks <= 0 || s.NumPeaks > s.FFTSize/2 {
		return nil, fmt.Errorf("spectral: num_peaks %d out of range (1..%d)", s.NumPeaks, s.FFTSize/2)
	}
	return s, nil
}

// Name implements Block.
func (s *Spectral) Name() string { return "spectral-analysis" }

// Params implements Block.
func (s *Spectral) Params() map[string]float64 {
	return map[string]float64{
		"fft_length": float64(s.FFTSize),
		"num_peaks":  float64(s.NumPeaks),
		"scale_axes": s.ScaleAxes,
	}
}

// featuresPerAxis is RMS + skew + kurtosis + NumPeaks spectral powers.
func (s *Spectral) featuresPerAxis() int { return 3 + s.NumPeaks }

// OutputShape implements Block.
func (s *Spectral) OutputShape(sig Signal) (tensor.Shape, error) {
	if sig.Axes <= 0 {
		return nil, fmt.Errorf("spectral: signal has no axes")
	}
	if sig.Frames() < s.FFTSize {
		return nil, fmt.Errorf("spectral: need at least %d samples per axis, have %d", s.FFTSize, sig.Frames())
	}
	return tensor.Shape{sig.Axes * s.featuresPerAxis()}, nil
}

// Extract implements Block.
func (s *Spectral) Extract(sig Signal) (*tensor.F32, error) {
	shape, err := s.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	rt, err := s.runtime()
	if err != nil {
		return nil, err
	}
	out := tensor.NewF32(shape...)
	st := rt.pool.Get().(*spectralScratch)
	fpa := s.featuresPerAxis()
	for a := 0; a < sig.Axes; a++ {
		axis := sig.Axis(a)
		for i := range axis {
			axis[i] *= float32(s.ScaleAxes)
		}
		mean, std, skew, kurt := moments(axis)
		base := a * fpa
		out.Data[base+0] = std // RMS of the mean-removed signal
		out.Data[base+1] = skew
		out.Data[base+2] = kurt
		// Average power spectra over all full windows.
		nWin := len(axis) / s.FFTSize
		for i := range st.acc {
			st.acc[i] = 0
		}
		for w := 0; w < nWin; w++ {
			copy(st.buf, axis[w*s.FFTSize:(w+1)*s.FFTSize])
			for i := range st.buf {
				st.buf[i] -= mean
			}
			if err := rt.plan.PowerSpectrumInto(st.power, st.buf, st.fftSc); err != nil {
				return nil, err
			}
			for i, v := range st.power {
				st.acc[i] += float64(v)
			}
		}
		for i := 0; i < s.NumPeaks; i++ {
			// Skip the DC bin; log-compress the energies.
			v := st.acc[i+1] / float64(nWin)
			if fastmath.Enabled() {
				out.Data[base+3+i] = fastmath.Log10Fast(float32(v + 1e-12))
			} else {
				out.Data[base+3+i] = float32(math.Log10(v + 1e-12))
			}
		}
	}
	rt.pool.Put(st)
	return out, nil
}

// moments returns mean, standard deviation, skewness and excess kurtosis.
func moments(x []float32) (mean, std, skew, kurt float32) {
	n := float64(len(x))
	if n == 0 {
		return 0, 0, 0, 0
	}
	var m float64
	for _, v := range x {
		m += float64(v)
	}
	m /= n
	var m2, m3, m4 float64
	for _, v := range x {
		d := float64(v) - m
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	sd := math.Sqrt(m2)
	if sd < 1e-12 {
		return float32(m), 0, 0, 0
	}
	return float32(m), float32(sd), float32(m3 / (sd * sd * sd)), float32(m4/(m2*m2) - 3)
}

// Cost implements Block.
func (s *Spectral) Cost(sig Signal) Cost {
	n := int64(sig.Frames())
	if n == 0 {
		return Cost{}
	}
	nWin := n / int64(s.FFTSize)
	perAxis := Cost{
		FloatOps:       n * 6, // moments
		FFTButterflies: fftButterflies(s.FFTSize) * nWin,
		TranscOps:      int64(s.NumPeaks) + 2,
	}
	return perAxis.Scale(int64(sig.Axes))
}

// RAM implements Block.
func (s *Spectral) RAM(sig Signal) int64 {
	shape, err := s.OutputShape(sig)
	if err != nil {
		return 0
	}
	return int64(sig.Frames())*4 + int64(s.FFTSize)*24 + int64(shape.Elems())*4
}

// Raw passes the signal through with optional scaling and decimation —
// the "use the time series directly" block.
type Raw struct {
	Scale    float64
	Decimate int
}

// NewRaw builds a raw block (scale=1, decimate=1 by default).
func NewRaw(p map[string]float64) (*Raw, error) {
	r := &Raw{
		Scale:    getParam(p, "scale_axes", 1),
		Decimate: int(getParam(p, "decimate", 1)),
	}
	if r.Decimate < 1 {
		return nil, fmt.Errorf("raw: decimate must be >= 1")
	}
	return r, nil
}

// Name implements Block.
func (r *Raw) Name() string { return "raw" }

// Params implements Block.
func (r *Raw) Params() map[string]float64 {
	return map[string]float64{"scale_axes": r.Scale, "decimate": float64(r.Decimate)}
}

// OutputShape implements Block.
func (r *Raw) OutputShape(sig Signal) (tensor.Shape, error) {
	if len(sig.Data) == 0 {
		return nil, fmt.Errorf("raw: empty signal")
	}
	n := (len(sig.Data) + r.Decimate - 1) / r.Decimate
	return tensor.Shape{n}, nil
}

// Extract implements Block.
func (r *Raw) Extract(sig Signal) (*tensor.F32, error) {
	shape, err := r.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	out := tensor.NewF32(shape...)
	for i := 0; i < shape[0]; i++ {
		out.Data[i] = sig.Data[i*r.Decimate] * float32(r.Scale)
	}
	return out, nil
}

// Cost implements Block.
func (r *Raw) Cost(sig Signal) Cost {
	return Cost{FloatOps: int64(len(sig.Data) / r.Decimate)}
}

// RAM implements Block.
func (r *Raw) RAM(sig Signal) int64 {
	shape, err := r.OutputShape(sig)
	if err != nil {
		return 0
	}
	return int64(shape.Elems()) * 4
}

// Flatten emits windowed summary statistics per axis (min, max, mean,
// RMS, std), a cheap front end for slow-moving sensor data.
type Flatten struct {
	Scale float64
}

// NewFlatten builds a flatten block.
func NewFlatten(p map[string]float64) (*Flatten, error) {
	return &Flatten{Scale: getParam(p, "scale_axes", 1)}, nil
}

// Name implements Block.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Block.
func (f *Flatten) Params() map[string]float64 {
	return map[string]float64{"scale_axes": f.Scale}
}

// OutputShape implements Block.
func (f *Flatten) OutputShape(sig Signal) (tensor.Shape, error) {
	if sig.Axes <= 0 || sig.Frames() == 0 {
		return nil, fmt.Errorf("flatten: empty signal")
	}
	return tensor.Shape{sig.Axes * 5}, nil
}

// Extract implements Block.
func (f *Flatten) Extract(sig Signal) (*tensor.F32, error) {
	shape, err := f.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	out := tensor.NewF32(shape...)
	for a := 0; a < sig.Axes; a++ {
		axis := sig.Axis(a)
		min, max := axis[0], axis[0]
		var sum, sumSq float64
		for _, v := range axis {
			v *= float32(f.Scale)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += float64(v)
			sumSq += float64(v) * float64(v)
		}
		n := float64(len(axis))
		mean := sum / n
		rms := math.Sqrt(sumSq / n)
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		base := a * 5
		out.Data[base+0] = min * float32(f.Scale)
		out.Data[base+1] = max * float32(f.Scale)
		out.Data[base+2] = float32(mean)
		out.Data[base+3] = float32(rms)
		out.Data[base+4] = float32(math.Sqrt(variance))
	}
	return out, nil
}

// Cost implements Block.
func (f *Flatten) Cost(sig Signal) Cost {
	return Cost{FloatOps: int64(len(sig.Data)) * 4, TranscOps: int64(sig.Axes) * 2}
}

// RAM implements Block.
func (f *Flatten) RAM(sig Signal) int64 {
	return int64(sig.Frames())*4 + int64(sig.Axes*5)*4
}
