package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sine returns a mono signal with the given tone.
func sine(rate int, seconds float64, freq float64, amp float32) Signal {
	n := int(seconds * float64(rate))
	data := make([]float32, n)
	for i := range data {
		data[i] = amp * float32(math.Sin(2*math.Pi*freq*float64(i)/float64(rate)))
	}
	return Signal{Data: data, Rate: rate, Axes: 1}
}

func TestSignalAxis(t *testing.T) {
	s := Signal{Data: []float32{1, 10, 2, 20, 3, 30}, Axes: 2, Rate: 100}
	if s.Frames() != 3 {
		t.Fatalf("Frames = %d", s.Frames())
	}
	a0 := s.Axis(0)
	a1 := s.Axis(1)
	for i, want := range []float32{1, 2, 3} {
		if a0[i] != want {
			t.Errorf("axis0[%d] = %g", i, a0[i])
		}
	}
	for i, want := range []float32{10, 20, 30} {
		if a1[i] != want {
			t.Errorf("axis1[%d] = %g", i, a1[i])
		}
	}
}

func TestCostAddScale(t *testing.T) {
	a := Cost{FloatOps: 1, MACs: 2, FFTButterflies: 3, TranscOps: 4}
	b := a.Add(a).Scale(2)
	if b.FloatOps != 4 || b.MACs != 8 || b.FFTButterflies != 12 || b.TranscOps != 16 {
		t.Fatalf("got %+v", b)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"mfe": false, "mfcc": false, "spectral-analysis": false, "raw": false, "flatten": false, "image": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("block %q not registered", n)
		}
	}
	if _, err := New("nope", nil); err == nil {
		t.Error("New accepted unknown block")
	}
	b, err := New("mfe", map[string]float64{"num_filters": 20})
	if err != nil {
		t.Fatal(err)
	}
	if b.Params()["num_filters"] != 20 {
		t.Error("params not passed through")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("mfe", nil)
}

func TestMFEShapeAndRange(t *testing.T) {
	sig := sine(16000, 1.0, 440, 0.5)
	m, err := NewMFE(map[string]float64{"frame_length": 0.02, "frame_stride": 0.01, "num_filters": 40, "fft_length": 512})
	if err != nil {
		t.Fatal(err)
	}
	shape, err := m.OutputShape(sig)
	if err != nil {
		t.Fatal(err)
	}
	// (16000-320)/160+1 = 99 frames
	if shape[0] != 99 || shape[1] != 40 {
		t.Fatalf("shape = %v, want [99x40]", shape)
	}
	feat, err := m.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !feat.Shape.Equal(shape) {
		t.Fatalf("extract shape %v != declared %v", feat.Shape, shape)
	}
	for i, v := range feat.Data {
		if v < 0 || v > 1 {
			t.Fatalf("feature %d = %g outside [0,1]", i, v)
		}
	}
}

func TestMFEToneSelectsCorrectFilter(t *testing.T) {
	// A 2 kHz tone must put most energy in the filter covering 2 kHz,
	// not in the lowest or highest filters.
	sig := sine(16000, 0.5, 2000, 0.8)
	m, _ := NewMFE(map[string]float64{"num_filters": 32, "fft_length": 256})
	feat, err := m.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	cols := 32
	colEnergy := make([]float64, cols)
	rows := feat.Shape[0]
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			colEnergy[c] += float64(feat.Data[r*cols+c])
		}
	}
	best := 0
	for c := range colEnergy {
		if colEnergy[c] > colEnergy[best] {
			best = c
		}
	}
	if best < 5 || best > 28 {
		t.Errorf("2kHz tone peaked in filter %d, expected a mid filter", best)
	}
}

func TestMFEValidation(t *testing.T) {
	if _, err := NewMFE(map[string]float64{"fft_length": 300}); err == nil {
		t.Error("accepted non-pow2 fft")
	}
	if _, err := NewMFE(map[string]float64{"frame_length": -1}); err == nil {
		t.Error("accepted negative frame")
	}
	if _, err := NewMFE(map[string]float64{"num_filters": 0}); err == nil {
		t.Error("accepted zero filters")
	}
	m, _ := NewMFE(nil)
	if _, err := m.OutputShape(Signal{Data: make([]float32, 10), Rate: 16000, Axes: 1}); err == nil {
		t.Error("accepted too-short signal")
	}
	if _, err := m.OutputShape(Signal{Data: make([]float32, 100), Axes: 1}); err == nil {
		t.Error("accepted zero rate")
	}
	// Frames longer than the FFT length are truncated, not rejected.
	m2, _ := NewMFE(map[string]float64{"frame_length": 0.05, "fft_length": 256})
	if _, err := m2.Extract(sine(16000, 1, 100, 1)); err != nil {
		t.Errorf("truncating extract failed: %v", err)
	}
}

func TestMFCCShapeAndDeterminism(t *testing.T) {
	sig := sine(16000, 1.0, 700, 0.5)
	m, err := NewMFCC(map[string]float64{"frame_length": 0.02, "frame_stride": 0.01, "num_cepstral": 13, "num_filters": 32})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	if a.Shape[0] != 99 || a.Shape[1] != 13 {
		t.Fatalf("shape = %v", a.Shape)
	}
	b, _ := m.Extract(sig)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("extraction not deterministic")
		}
	}
}

func TestMFCCDistinguishesTones(t *testing.T) {
	m, _ := NewMFCC(nil)
	low, err := m.Extract(sine(16000, 0.5, 300, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Extract(sine(16000, 0.5, 4000, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	var dist float64
	for i := range low.Data {
		d := float64(low.Data[i] - high.Data[i])
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Errorf("MFCCs of 300Hz and 4kHz tones too close: %g", math.Sqrt(dist))
	}
}

func TestMFCCValidation(t *testing.T) {
	if _, err := NewMFCC(map[string]float64{"num_cepstral": 40, "num_filters": 13}); err == nil {
		t.Error("accepted coeffs > filters")
	}
	if _, err := NewMFCC(map[string]float64{"fft_length": 100}); err == nil {
		t.Error("accepted non-pow2 fft")
	}
	if _, err := NewMFCC(map[string]float64{"frame_stride": 0}); err == nil {
		t.Error("accepted zero stride")
	}
}

func TestMelScaleRoundTrip(t *testing.T) {
	f := func(hz float64) bool {
		hz = math.Abs(math.Mod(hz, 8000))
		back := melInverse(melScale(hz))
		return math.Abs(back-hz) < 1e-6*(1+hz)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMelFilterbankCoverage(t *testing.T) {
	filters := melFilterbank(40, 256, 16000, 0, 0)
	if len(filters) != 40 {
		t.Fatalf("got %d filters", len(filters))
	}
	// Every filter should have non-negative weights <= 1.
	for i, f := range filters {
		for j, w := range f.weights {
			if w < 0 || w > 1.0001 {
				t.Errorf("filter %d weight %d = %g", i, j, w)
			}
		}
	}
	// The union of filters should cover a good portion of the upper bins.
	covered := map[int]bool{}
	for _, f := range filters {
		for j := range f.weights {
			covered[f.start+j] = true
		}
	}
	if len(covered) < 100 {
		t.Errorf("filterbank covers only %d of 129 bins", len(covered))
	}
}

func TestSpectralFeatures(t *testing.T) {
	// 3-axis signal: one sine axis, one noisy axis, one constant axis.
	rate, n := 100, 512
	rng := rand.New(rand.NewSource(3))
	data := make([]float32, n*3)
	for i := 0; i < n; i++ {
		data[i*3+0] = float32(math.Sin(2 * math.Pi * 10 * float64(i) / float64(rate)))
		data[i*3+1] = float32(rng.NormFloat64())
		data[i*3+2] = 5
	}
	sig := Signal{Data: data, Rate: rate, Axes: 3}
	s, err := NewSpectral(map[string]float64{"fft_length": 64, "num_peaks": 8})
	if err != nil {
		t.Fatal(err)
	}
	feat, err := s.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	fpa := s.featuresPerAxis()
	if len(feat.Data) != 3*fpa {
		t.Fatalf("got %d features, want %d", len(feat.Data), 3*fpa)
	}
	// Constant axis: zero std.
	if feat.Data[2*fpa] != 0 {
		t.Errorf("constant axis std = %g, want 0", feat.Data[2*fpa])
	}
	// Sine axis std ~ 0.707.
	if math.Abs(float64(feat.Data[0])-0.707) > 0.05 {
		t.Errorf("sine axis std = %g, want ~0.707", feat.Data[0])
	}
}

func TestSpectralValidation(t *testing.T) {
	if _, err := NewSpectral(map[string]float64{"fft_length": 63}); err == nil {
		t.Error("accepted non-pow2")
	}
	if _, err := NewSpectral(map[string]float64{"num_peaks": 0}); err == nil {
		t.Error("accepted zero peaks")
	}
	if _, err := NewSpectral(map[string]float64{"num_peaks": 99, "fft_length": 64}); err == nil {
		t.Error("accepted peaks > fft/2")
	}
	s, _ := NewSpectral(nil)
	if _, err := s.OutputShape(Signal{Data: make([]float32, 10), Axes: 1, Rate: 100}); err == nil {
		t.Error("accepted short signal")
	}
}

func TestRawBlock(t *testing.T) {
	r, err := NewRaw(map[string]float64{"scale_axes": 2, "decimate": 2})
	if err != nil {
		t.Fatal(err)
	}
	sig := Signal{Data: []float32{1, 2, 3, 4, 5}, Rate: 10, Axes: 1}
	out, err := r.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 6, 10}
	if len(out.Data) != 3 {
		t.Fatalf("len = %d", len(out.Data))
	}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("out[%d] = %g, want %g", i, out.Data[i], want[i])
		}
	}
	if _, err := NewRaw(map[string]float64{"decimate": 0}); err == nil {
		t.Error("accepted decimate=0")
	}
}

func TestFlattenBlock(t *testing.T) {
	f, _ := NewFlatten(nil)
	sig := Signal{Data: []float32{1, 2, 3, 4}, Rate: 10, Axes: 1}
	out, err := f.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	// min=1 max=4 mean=2.5 rms=sqrt(7.5) std=sqrt(1.25)
	if out.Data[0] != 1 || out.Data[1] != 4 {
		t.Errorf("min/max = %g/%g", out.Data[0], out.Data[1])
	}
	if math.Abs(float64(out.Data[2])-2.5) > 1e-6 {
		t.Errorf("mean = %g", out.Data[2])
	}
	if math.Abs(float64(out.Data[3])-math.Sqrt(7.5)) > 1e-5 {
		t.Errorf("rms = %g", out.Data[3])
	}
	if math.Abs(float64(out.Data[4])-math.Sqrt(1.25)) > 1e-5 {
		t.Errorf("std = %g", out.Data[4])
	}
}

func TestImageBlockResize(t *testing.T) {
	// 4x4 RGB image downscaled to 2x2.
	src := Signal{Width: 4, Height: 4, Axes: 3, Data: make([]float32, 4*4*3)}
	for i := range src.Data {
		src.Data[i] = 128
	}
	im, err := NewImage(map[string]float64{"width": 2, "height": 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal([]int{2, 2, 3}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	for i, v := range out.Data {
		if math.Abs(float64(v)-128.0/255) > 1e-5 {
			t.Errorf("pixel %d = %g, want %g", i, v, 128.0/255)
		}
	}
}

func TestImageGrayscale(t *testing.T) {
	src := Signal{Width: 2, Height: 2, Axes: 3, Data: make([]float32, 12)}
	for p := 0; p < 4; p++ {
		src.Data[p*3+0] = 255 // pure red
	}
	im, _ := NewImage(map[string]float64{"width": 2, "height": 2, "grayscale": 1})
	out, err := im.Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal([]int{2, 2, 1}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	for _, v := range out.Data {
		if math.Abs(float64(v)-0.299) > 1e-4 {
			t.Errorf("gray = %g, want 0.299", v)
		}
	}
}

func TestImageUpscaleGradientMonotone(t *testing.T) {
	// Horizontal gradient must stay monotone after upscale.
	src := Signal{Width: 4, Height: 1, Axes: 1, Data: []float32{0, 85, 170, 255}}
	im, _ := NewImage(map[string]float64{"width": 8, "height": 1})
	out, err := im.Extract(src)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x < 8; x++ {
		if out.Data[x*3] < out.Data[(x-1)*3] {
			t.Errorf("gradient not monotone at %d: %g < %g", x, out.Data[x*3], out.Data[(x-1)*3])
		}
	}
}

func TestImageValidation(t *testing.T) {
	if _, err := NewImage(map[string]float64{"width": 0}); err == nil {
		t.Error("accepted zero width")
	}
	im, _ := NewImage(nil)
	if _, err := im.OutputShape(Signal{Width: 2, Height: 2, Axes: 4, Data: make([]float32, 16)}); err == nil {
		t.Error("accepted 4 channels")
	}
	if _, err := im.OutputShape(Signal{Width: 2, Height: 2, Axes: 3, Data: make([]float32, 5)}); err == nil {
		t.Error("accepted wrong data length")
	}
	if _, err := im.OutputShape(Signal{Axes: 3}); err == nil {
		t.Error("accepted missing dims")
	}
}

func TestCostsArePositive(t *testing.T) {
	sig := sine(16000, 1, 440, 1)
	img := Signal{Width: 64, Height: 64, Axes: 3, Data: make([]float32, 64*64*3)}
	blocks := []struct {
		b   Block
		sig Signal
	}{}
	mfe, _ := NewMFE(nil)
	mfcc, _ := NewMFCC(nil)
	spec, _ := NewSpectral(nil)
	raw, _ := NewRaw(nil)
	fl, _ := NewFlatten(nil)
	im, _ := NewImage(map[string]float64{"width": 32, "height": 32})
	blocks = append(blocks,
		struct {
			b   Block
			sig Signal
		}{mfe, sig}, struct {
			b   Block
			sig Signal
		}{mfcc, sig}, struct {
			b   Block
			sig Signal
		}{spec, sig}, struct {
			b   Block
			sig Signal
		}{raw, sig}, struct {
			b   Block
			sig Signal
		}{fl, sig}, struct {
			b   Block
			sig Signal
		}{im, img})
	for _, tc := range blocks {
		c := tc.b.Cost(tc.sig)
		total := c.FloatOps + c.MACs + c.FFTButterflies + c.TranscOps
		if total <= 0 {
			t.Errorf("%s: zero cost", tc.b.Name())
		}
		if tc.b.RAM(tc.sig) <= 0 {
			t.Errorf("%s: zero RAM", tc.b.Name())
		}
	}
}

func TestFrameCount(t *testing.T) {
	cases := []struct {
		n, fl, st, want int
	}{
		{16000, 320, 160, 99},
		{100, 200, 50, 0},
		{320, 320, 160, 1},
		{480, 320, 160, 2},
		{100, 0, 10, 0},
		{100, 10, 0, 0},
	}
	for _, c := range cases {
		if got := frameCount(c.n, c.fl, c.st); got != c.want {
			t.Errorf("frameCount(%d,%d,%d) = %d, want %d", c.n, c.fl, c.st, got, c.want)
		}
	}
}

func TestStandardizeColumns(t *testing.T) {
	data := []float32{1, 10, 2, 20, 3, 30}
	standardizeColumns(data, 3, 2)
	for c := 0; c < 2; c++ {
		var mean float64
		for r := 0; r < 3; r++ {
			mean += float64(data[r*2+c])
		}
		if math.Abs(mean/3) > 1e-5 {
			t.Errorf("col %d mean = %g", c, mean/3)
		}
	}
}

func BenchmarkMFCC1s16k(b *testing.B) {
	sig := sine(16000, 1, 440, 0.5)
	m, _ := NewMFCC(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Extract(sig)
	}
}

func BenchmarkMFE1s16k(b *testing.B) {
	sig := sine(16000, 1, 440, 0.5)
	m, _ := NewMFE(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Extract(sig)
	}
}

func BenchmarkImageResize96(b *testing.B) {
	src := Signal{Width: 160, Height: 120, Axes: 3, Data: make([]float32, 160*120*3)}
	im, _ := NewImage(map[string]float64{"width": 96, "height": 96})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		im.Extract(src)
	}
}
