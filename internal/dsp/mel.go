package dsp

import (
	"math"

	"edgepulse/internal/fastmath"
	"edgepulse/internal/fft"
)

// melScale converts a frequency in Hz to mels (HTK convention).
func melScale(hz float64) float64 {
	return 2595 * math.Log10(1+hz/700)
}

// melInverse converts mels back to Hz.
func melInverse(mel float64) float64 {
	return 700 * (math.Pow(10, mel/2595) - 1)
}

// melFilterbank builds numFilters triangular filters over an FFT of size
// fftSize at the given sample rate, spanning [lowHz, highHz]. Each filter
// is returned as (startBin, weights).
type melFilter struct {
	start   int
	weights []float32
}

func melFilterbank(numFilters, fftSize, rate int, lowHz, highHz float64) []melFilter {
	if highHz <= 0 || highHz > float64(rate)/2 {
		highHz = float64(rate) / 2
	}
	nBins := fftSize/2 + 1
	lowMel := melScale(lowHz)
	highMel := melScale(highHz)
	// numFilters+2 equally spaced points on the mel scale.
	points := make([]float64, numFilters+2)
	for i := range points {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(numFilters+1)
		points[i] = melInverse(mel) / (float64(rate) / 2) * float64(nBins-1)
	}
	filters := make([]melFilter, numFilters)
	for f := 0; f < numFilters; f++ {
		left, center, right := points[f], points[f+1], points[f+2]
		start := int(math.Ceil(left))
		end := int(math.Floor(right))
		if start < 0 {
			start = 0
		}
		if end > nBins-1 {
			end = nBins - 1
		}
		if end < start {
			filters[f] = melFilter{start: start, weights: nil}
			continue
		}
		w := make([]float32, end-start+1)
		for b := start; b <= end; b++ {
			x := float64(b)
			var v float64
			switch {
			case x < center && center > left:
				v = (x - left) / (center - left)
			case x >= center && right > center:
				v = (right - x) / (right - center)
			}
			if v < 0 {
				v = 0
			}
			w[b-start] = float32(v)
		}
		filters[f] = melFilter{start: start, weights: w}
	}
	return filters
}

// applyFilterbank computes the filterbank energies of a power spectrum.
func applyFilterbank(power []float32, filters []melFilter) []float32 {
	out := make([]float32, len(filters))
	applyFilterbankInto(out, power, filters)
	return out
}

// applyFilterbankInto computes filterbank energies into dst (len >=
// len(filters)) without allocating.
func applyFilterbankInto(dst, power []float32, filters []melFilter) {
	for i, f := range filters {
		var s float32
		for j, w := range f.weights {
			s += w * power[f.start+j]
		}
		dst[i] = s
	}
}

// filterbankMACs counts the multiply-accumulates of one filterbank
// application (for the cost model).
func filterbankMACs(filters []melFilter) int64 {
	var n int64
	for _, f := range filters {
		n += int64(len(f.weights))
	}
	return n
}

// fftButterflies returns the butterfly count of one radix-2 FFT of size n:
// (n/2)·log2(n).
func fftButterflies(n int) int64 {
	if n <= 1 {
		return 0
	}
	logn := 0
	for m := n; m > 1; m >>= 1 {
		logn++
	}
	return int64(n/2) * int64(logn)
}

// logSafe computes a noise-floored log10, matching embedded speech front
// ends that clamp tiny energies before the log.
func logSafe(v float32) float32 {
	const floor = 1e-12
	if v < floor {
		v = floor
	}
	if fastmath.Enabled() {
		return fastmath.Log10Fast(v)
	}
	return float32(math.Log10(float64(v)))
}

// powerFrames slices sig (single axis) into windowed power spectra.
// Returns one power spectrum per frame. Frames longer than fftSize are
// truncated to fftSize (the stride still advances by the configured
// amount, so frame count is unchanged).
func powerFrames(samples []float32, frameLen, stride, fftSize int, win fft.Window) ([][]float32, error) {
	n := frameCount(len(samples), frameLen, stride)
	eff := frameLen
	if eff > fftSize {
		eff = fftSize
	}
	coeffs := win.Coefficients(eff)
	frames := make([][]float32, n)
	buf := make([]float32, fftSize)
	for i := 0; i < n; i++ {
		off := i * stride
		for j := 0; j < fftSize; j++ {
			if j < eff {
				buf[j] = samples[off+j] * coeffs[j]
			} else {
				buf[j] = 0
			}
		}
		ps, err := fft.PowerSpectrum(buf)
		if err != nil {
			return nil, err
		}
		frames[i] = ps
	}
	return frames, nil
}
