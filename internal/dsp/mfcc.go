package dsp

import (
	"fmt"
	"math"
	"sync/atomic"

	"edgepulse/internal/fft"
	"edgepulse/internal/tensor"
)

// MFCC computes Mel-frequency cepstral coefficients: the MFE front end
// followed by a DCT-II and cepstral liftering. This is the preprocessing
// block used by the paper's keyword-spotting evaluation (Table 2).
type MFCC struct {
	FrameLength float64
	FrameStride float64
	NumFilters  int
	NumCoeffs   int
	FFTSize     int
	LowHz       float64
	HighHz      float64
	// CepLifter is the sinusoidal liftering coefficient (0 disables).
	CepLifter int

	// rt caches the precomputed window/filterbank/DCT/FFT-plan state for
	// the last sample rate seen, with pooled per-call scratch.
	rt atomic.Pointer[audioRT]
}

// NewMFCC builds an MFCC block from a parameter map with defaults
// matching the platform (13 coefficients, 32 filters, 256-point FFT).
func NewMFCC(p map[string]float64) (*MFCC, error) {
	m := &MFCC{
		FrameLength: getParam(p, "frame_length", 0.02),
		FrameStride: getParam(p, "frame_stride", 0.01),
		NumFilters:  int(getParam(p, "num_filters", 32)),
		NumCoeffs:   int(getParam(p, "num_cepstral", 13)),
		FFTSize:     int(getParam(p, "fft_length", 256)),
		LowHz:       getParam(p, "low_frequency", 0),
		HighHz:      getParam(p, "high_frequency", 0),
		CepLifter:   int(getParam(p, "cep_lifter", 22)),
	}
	if m.FrameLength <= 0 || m.FrameStride <= 0 {
		return nil, fmt.Errorf("mfcc: frame length/stride must be positive")
	}
	if m.NumCoeffs <= 0 || m.NumFilters < m.NumCoeffs {
		return nil, fmt.Errorf("mfcc: need 0 < num_cepstral (%d) <= num_filters (%d)", m.NumCoeffs, m.NumFilters)
	}
	if !fft.IsPow2(m.FFTSize) {
		return nil, fmt.Errorf("mfcc: fft_length %d is not a power of two", m.FFTSize)
	}
	return m, nil
}

// Name implements Block.
func (m *MFCC) Name() string { return "mfcc" }

// Params implements Block.
func (m *MFCC) Params() map[string]float64 {
	return map[string]float64{
		"frame_length":   m.FrameLength,
		"frame_stride":   m.FrameStride,
		"num_filters":    float64(m.NumFilters),
		"num_cepstral":   float64(m.NumCoeffs),
		"fft_length":     float64(m.FFTSize),
		"low_frequency":  m.LowHz,
		"high_frequency": m.HighHz,
		"cep_lifter":     float64(m.CepLifter),
	}
}

func (m *MFCC) frameSamples(rate int) (frameLen, stride int) {
	frameLen = int(math.Round(m.FrameLength * float64(rate)))
	stride = int(math.Round(m.FrameStride * float64(rate)))
	return frameLen, stride
}

// OutputShape implements Block.
func (m *MFCC) OutputShape(sig Signal) (tensor.Shape, error) {
	if sig.Rate <= 0 {
		return nil, fmt.Errorf("mfcc: signal has no sample rate")
	}
	frameLen, stride := m.frameSamples(sig.Rate)
	n := frameCount(sig.Frames(), frameLen, stride)
	if n == 0 {
		return nil, fmt.Errorf("mfcc: signal too short (%d samples, frame %d)", sig.Frames(), frameLen)
	}
	return tensor.Shape{n, m.NumCoeffs}, nil
}

// Extract implements Block. The window, mel filterbank, DCT matrix,
// lifter and FFT plan are precomputed once per sample rate, and all
// frame/spectrum buffers come from a scratch pool, so steady-state
// extraction allocates only the output tensor.
func (m *MFCC) Extract(sig Signal) (*tensor.F32, error) {
	shape, err := m.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	rt, err := runtime(&m.rt, audioKey{
		rate:        sig.Rate,
		frameLength: m.FrameLength,
		frameStride: m.FrameStride,
		numFilters:  m.NumFilters,
		fftSize:     m.FFTSize,
		lowHz:       m.LowHz,
		highHz:      m.HighHz,
		win:         fft.Hamming,
		numCoeffs:   m.NumCoeffs,
		cepLifter:   m.CepLifter,
	})
	if err != nil {
		return nil, err
	}
	samples := sig.Data
	if sig.Axes > 1 {
		samples = sig.Axis(0)
	}
	out := tensor.NewF32(shape...)
	st := rt.pool.Get().(*audioScratch)
	nf, nc := m.NumFilters, m.NumCoeffs
	for i := 0; i < shape[0]; i++ {
		if err := rt.powerFrame(samples, i*rt.stride, st); err != nil {
			return nil, err
		}
		applyFilterbankInto(st.work, st.power, rt.filters)
		for j, e := range st.work {
			st.work[j] = logSafe(e)
		}
		row := out.Data[i*nc : (i+1)*nc]
		for j := 0; j < nc; j++ {
			var s float64
			dctRow := rt.dct[j*nf : (j+1)*nf]
			for k, c := range dctRow {
				s += float64(st.work[k]) * c
			}
			row[j] = float32(s*rt.dctScale[j]) * rt.lifter[j]
		}
	}
	rt.pool.Put(st)
	// Standardize to zero mean / unit variance per coefficient so
	// features are well-conditioned for small networks.
	standardizeColumns(out.Data, shape[0], shape[1])
	return out, nil
}

// standardizeColumns normalizes each column of an (rows × cols) matrix to
// zero mean and unit variance. Columns that are (numerically) constant —
// e.g. every analysis frame of a stationary tone is identical — are left
// untouched: standardizing them would only amplify floating-point noise
// while erasing the one value that actually carries information.
func standardizeColumns(data []float32, rows, cols int) {
	for c := 0; c < cols; c++ {
		var mean, m2 float64
		for r := 0; r < rows; r++ {
			mean += float64(data[r*cols+c])
		}
		mean /= float64(rows)
		for r := 0; r < rows; r++ {
			d := float64(data[r*cols+c]) - mean
			m2 += d * d
		}
		std := math.Sqrt(m2 / float64(rows))
		if std <= 1e-4*(math.Abs(mean)+1) {
			continue
		}
		std += 1e-6
		for r := 0; r < rows; r++ {
			data[r*cols+c] = float32((float64(data[r*cols+c]) - mean) / std)
		}
	}
}

// Cost implements Block.
func (m *MFCC) Cost(sig Signal) Cost {
	frameLen, stride := m.frameSamples(sig.Rate)
	n := int64(frameCount(sig.Frames(), frameLen, stride))
	if n == 0 {
		return Cost{}
	}
	filters := melFilterbank(m.NumFilters, m.FFTSize, sig.Rate, m.LowHz, m.HighHz)
	perFrame := Cost{
		FloatOps:       int64(frameLen) + int64(m.FFTSize/2+1)*2,
		MACs:           filterbankMACs(filters) + int64(m.NumFilters*m.NumCoeffs), // filterbank + DCT
		FFTButterflies: fftButterflies(m.FFTSize),
		TranscOps:      int64(m.NumFilters) + int64(m.NumFilters*m.NumCoeffs)/8, // log + cos table amortized
	}
	c := perFrame.Scale(n)
	c.FloatOps += n * int64(m.NumCoeffs) * 4 // liftering + standardization
	return c
}

// RAM implements Block.
func (m *MFCC) RAM(sig Signal) int64 {
	shape, err := m.OutputShape(sig)
	if err != nil {
		return 0
	}
	fftBuf := int64(m.FFTSize) * 8 // split re/im scratch + power bins
	frameBuf := int64(m.FFTSize) * 4
	out := int64(shape.Elems()) * 4
	work := int64(m.NumFilters) * 8
	dctTab := int64(m.NumFilters*m.NumCoeffs) * 4
	return fftBuf + frameBuf + out + work + dctTab
}
