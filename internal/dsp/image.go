package dsp

import (
	"fmt"

	"edgepulse/internal/tensor"
)

func init() {
	Register("image", func(p map[string]float64) (Block, error) { return NewImage(p) })
}

// Image prepares camera data for vision models: bilinear resize to the
// target resolution, optional grayscale conversion, and scaling of pixel
// values into [0, 1]. Used by the paper's VWW (96×96) and image
// classification (32×32) workloads.
type Image struct {
	Width     int
	Height    int
	Grayscale bool
}

// NewImage builds an image block from a parameter map
// (width, height, grayscale ∈ {0,1}).
func NewImage(p map[string]float64) (*Image, error) {
	im := &Image{
		Width:     int(getParam(p, "width", 96)),
		Height:    int(getParam(p, "height", 96)),
		Grayscale: getParam(p, "grayscale", 0) != 0,
	}
	if im.Width <= 0 || im.Height <= 0 {
		return nil, fmt.Errorf("image: width/height must be positive")
	}
	return im, nil
}

// Name implements Block.
func (im *Image) Name() string { return "image" }

// Params implements Block.
func (im *Image) Params() map[string]float64 {
	g := 0.0
	if im.Grayscale {
		g = 1
	}
	return map[string]float64{
		"width":     float64(im.Width),
		"height":    float64(im.Height),
		"grayscale": g,
	}
}

// Channels returns the output channel count.
func (im *Image) Channels() int {
	if im.Grayscale {
		return 1
	}
	return 3
}

// OutputShape implements Block.
func (im *Image) OutputShape(sig Signal) (tensor.Shape, error) {
	if sig.Width <= 0 || sig.Height <= 0 {
		return nil, fmt.Errorf("image: signal has no dimensions")
	}
	if sig.Axes != 1 && sig.Axes != 3 {
		return nil, fmt.Errorf("image: unsupported channel count %d", sig.Axes)
	}
	if len(sig.Data) != sig.Width*sig.Height*sig.Axes {
		return nil, fmt.Errorf("image: data length %d != %dx%dx%d", len(sig.Data), sig.Height, sig.Width, sig.Axes)
	}
	return tensor.Shape{im.Height, im.Width, im.Channels()}, nil
}

// Extract implements Block.
func (im *Image) Extract(sig Signal) (*tensor.F32, error) {
	shape, err := im.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	out := tensor.NewF32(shape...)
	outC := im.Channels()
	sx := float64(sig.Width) / float64(im.Width)
	sy := float64(sig.Height) / float64(im.Height)
	for y := 0; y < im.Height; y++ {
		srcY := (float64(y) + 0.5) * sy
		for x := 0; x < im.Width; x++ {
			srcX := (float64(x) + 0.5) * sx
			var px [3]float32
			for c := 0; c < sig.Axes; c++ {
				px[c] = bilinear(sig, srcX, srcY, c)
			}
			if sig.Axes == 1 {
				px[1], px[2] = px[0], px[0]
			}
			base := (y*im.Width + x) * outC
			if im.Grayscale {
				out.Data[base] = (0.299*px[0] + 0.587*px[1] + 0.114*px[2]) / 255
			} else {
				for c := 0; c < 3; c++ {
					out.Data[base+c] = px[c] / 255
				}
			}
		}
	}
	return out, nil
}

// bilinear samples channel c of the source image at continuous pixel
// coordinates (x, y) with bilinear interpolation, clamped at borders.
func bilinear(sig Signal, x, y float64, c int) float32 {
	x -= 0.5
	y -= 0.5
	x0 := int(x)
	y0 := int(y)
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	get := func(xi, yi int) float32 {
		if xi < 0 {
			xi = 0
		}
		if yi < 0 {
			yi = 0
		}
		if xi >= sig.Width {
			xi = sig.Width - 1
		}
		if yi >= sig.Height {
			yi = sig.Height - 1
		}
		return sig.Data[(yi*sig.Width+xi)*sig.Axes+c]
	}
	top := get(x0, y0)*(1-fx) + get(x0+1, y0)*fx
	bot := get(x0, y0+1)*(1-fx) + get(x0+1, y0+1)*fx
	return top*(1-fy) + bot*fy
}

// Cost implements Block: 4-tap bilinear per output pixel per channel plus
// the normalization multiply.
func (im *Image) Cost(sig Signal) Cost {
	perPixel := int64(8*sig.Axes + im.Channels())
	return Cost{FloatOps: int64(im.Width*im.Height) * perPixel}
}

// RAM implements Block: output buffer only (source is streamed).
func (im *Image) RAM(sig Signal) int64 {
	return int64(im.Width*im.Height*im.Channels()) * 4
}
