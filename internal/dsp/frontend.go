package dsp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"edgepulse/internal/fft"
)

// audioKey fingerprints everything an audio front-end runtime depends
// on; a cached runtime is reused only while the key matches, so mutating
// a block's parameters (or feeding a new sample rate) rebuilds it.
type audioKey struct {
	rate        int
	frameLength float64
	frameStride float64
	numFilters  int
	fftSize     int
	lowHz       float64
	highHz      float64
	win         fft.Window
	// Cepstral stage (MFCC only; zero for MFE).
	numCoeffs int
	cepLifter int
}

// audioRT is the precomputed per-rate state of an audio front end: frame
// geometry, window coefficients, the sparse mel filterbank and a planned
// real FFT, plus a pool of per-call scratch. It is immutable after
// construction and safe to share across goroutines.
type audioRT struct {
	key      audioKey
	frameLen int // configured frame in samples
	stride   int
	eff      int // analysis window: min(frameLen, fftSize)
	window   []float32
	filters  []melFilter
	plan     *fft.RealPlan
	// Cepstral tables (MFCC only): dct[j*numFilters+i] = cos(π/n·(i+½)·j)
	// with the orthonormal scale kept separate so the accumulation
	// matches the reference DCT-II bit for bit.
	dct      []float64
	dctScale []float64
	lifter   []float32
	pool     sync.Pool // *audioScratch
}

// audioScratch is one call's working state.
type audioScratch struct {
	frame []float32 // windowed analysis frame
	power []float32 // plan.Bins() power spectrum
	work  []float32 // numFilters intermediate energies
	fftSc *fft.RealScratch
}

func newAudioRT(key audioKey) (*audioRT, error) {
	plan, err := fft.NewRealPlan(key.fftSize)
	if err != nil {
		return nil, err
	}
	rt := &audioRT{key: key, plan: plan}
	rt.frameLen = int(math.Round(key.frameLength * float64(key.rate)))
	rt.stride = int(math.Round(key.frameStride * float64(key.rate)))
	rt.eff = rt.frameLen
	if rt.eff > key.fftSize {
		rt.eff = key.fftSize
	}
	if rt.eff <= 0 || rt.stride <= 0 {
		return nil, fmt.Errorf("dsp: frame %d / stride %d samples invalid at %d Hz", rt.frameLen, rt.stride, key.rate)
	}
	rt.window = key.win.Coefficients(rt.eff)
	rt.filters = melFilterbank(key.numFilters, key.fftSize, key.rate, key.lowHz, key.highHz)
	if key.numCoeffs > 0 {
		n := key.numFilters
		rt.dct = make([]float64, key.numCoeffs*n)
		rt.dctScale = make([]float64, key.numCoeffs)
		scale0 := math.Sqrt(1 / float64(n))
		scale := math.Sqrt(2 / float64(n))
		for j := 0; j < key.numCoeffs; j++ {
			rt.dctScale[j] = scale
			if j == 0 {
				rt.dctScale[j] = scale0
			}
			for i := 0; i < n; i++ {
				rt.dct[j*n+i] = math.Cos(math.Pi / float64(n) * (float64(i) + 0.5) * float64(j))
			}
		}
		rt.lifter = make([]float32, key.numCoeffs)
		for i := range rt.lifter {
			if key.cepLifter > 0 {
				rt.lifter[i] = float32(1 + float64(key.cepLifter)/2*math.Sin(math.Pi*float64(i)/float64(key.cepLifter)))
			} else {
				rt.lifter[i] = 1
			}
		}
	}
	rt.pool.New = func() any {
		return &audioScratch{
			frame: make([]float32, rt.eff),
			power: make([]float32, plan.Bins()),
			work:  make([]float32, key.numFilters),
			fftSc: plan.Scratch(),
		}
	}
	return rt, nil
}

// powerFrame windows samples at frame offset off into the scratch and
// computes its power spectrum (left in s.power).
func (rt *audioRT) powerFrame(samples []float32, off int, s *audioScratch) error {
	for j := 0; j < rt.eff; j++ {
		s.frame[j] = samples[off+j] * rt.window[j]
	}
	return rt.plan.PowerSpectrumInto(s.power, s.frame, s.fftSc)
}

// runtime returns the cached runtime for key, building it on first use
// or whenever the key changes.
func runtime(cache *atomic.Pointer[audioRT], key audioKey) (*audioRT, error) {
	if rt := cache.Load(); rt != nil && rt.key == key {
		return rt, nil
	}
	rt, err := newAudioRT(key)
	if err != nil {
		return nil, err
	}
	cache.Store(rt)
	return rt, nil
}
