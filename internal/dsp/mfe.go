package dsp

import (
	"fmt"
	"math"
	"sync/atomic"

	"edgepulse/internal/fft"
	"edgepulse/internal/tensor"
)

func init() {
	Register("mfe", func(p map[string]float64) (Block, error) { return NewMFE(p) })
	Register("mfcc", func(p map[string]float64) (Block, error) { return NewMFCC(p) })
}

// MFE computes Mel-filterbank energy features (log mel spectrogram), the
// lighter-weight audio front end of the two offered by the platform
// (paper Table 3 explores both MFE and MFCC).
type MFE struct {
	// FrameLength and FrameStride are in seconds, matching the paper's
	// "MFE (0.02, 0.01, 40)" notation.
	FrameLength float64
	FrameStride float64
	NumFilters  int
	FFTSize     int
	LowHz       float64
	HighHz      float64
	// NoiseFloorDB clamps energies this many dB below the maximum.
	NoiseFloorDB float64

	// rt caches the precomputed window/filterbank/FFT-plan state for the
	// last sample rate seen, with pooled per-call scratch.
	rt atomic.Pointer[audioRT]
}

// NewMFE builds an MFE block from a parameter map with sensible defaults
// (frame_length=0.02, frame_stride=0.01, num_filters=40, fft_length=256).
func NewMFE(p map[string]float64) (*MFE, error) {
	m := &MFE{
		FrameLength:  getParam(p, "frame_length", 0.02),
		FrameStride:  getParam(p, "frame_stride", 0.01),
		NumFilters:   int(getParam(p, "num_filters", 40)),
		FFTSize:      int(getParam(p, "fft_length", 256)),
		LowHz:        getParam(p, "low_frequency", 0),
		HighHz:       getParam(p, "high_frequency", 0),
		NoiseFloorDB: getParam(p, "noise_floor_db", 52),
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *MFE) validate() error {
	if m.FrameLength <= 0 || m.FrameStride <= 0 {
		return fmt.Errorf("mfe: frame length/stride must be positive")
	}
	if m.NumFilters <= 0 {
		return fmt.Errorf("mfe: num_filters must be positive")
	}
	if !fft.IsPow2(m.FFTSize) {
		return fmt.Errorf("mfe: fft_length %d is not a power of two", m.FFTSize)
	}
	return nil
}

// Name implements Block.
func (m *MFE) Name() string { return "mfe" }

// Params implements Block.
func (m *MFE) Params() map[string]float64 {
	return map[string]float64{
		"frame_length":   m.FrameLength,
		"frame_stride":   m.FrameStride,
		"num_filters":    float64(m.NumFilters),
		"fft_length":     float64(m.FFTSize),
		"low_frequency":  m.LowHz,
		"high_frequency": m.HighHz,
		"noise_floor_db": m.NoiseFloorDB,
	}
}

// frameSamples converts the second-based config to sample counts. Frames
// longer than the FFT length are truncated to it, matching embedded audio
// front ends where fft_length caps the analysis window.
func (m *MFE) frameSamples(rate int) (frameLen, stride int) {
	frameLen = int(math.Round(m.FrameLength * float64(rate)))
	stride = int(math.Round(m.FrameStride * float64(rate)))
	return frameLen, stride
}

// OutputShape implements Block.
func (m *MFE) OutputShape(sig Signal) (tensor.Shape, error) {
	if sig.Rate <= 0 {
		return nil, fmt.Errorf("mfe: signal has no sample rate")
	}
	frameLen, stride := m.frameSamples(sig.Rate)
	n := frameCount(sig.Frames(), frameLen, stride)
	if n == 0 {
		return nil, fmt.Errorf("mfe: signal too short (%d samples, frame %d)", sig.Frames(), frameLen)
	}
	return tensor.Shape{n, m.NumFilters}, nil
}

// Extract implements Block: window → power spectrum → mel filterbank →
// log with noise floor normalization into [0, 1]. The window
// coefficients, mel filterbank and FFT plan are precomputed once per
// sample rate, and frame/spectrum buffers come from a scratch pool, so
// steady-state extraction allocates only the output tensor.
func (m *MFE) Extract(sig Signal) (*tensor.F32, error) {
	shape, err := m.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	rt, err := runtime(&m.rt, audioKey{
		rate:        sig.Rate,
		frameLength: m.FrameLength,
		frameStride: m.FrameStride,
		numFilters:  m.NumFilters,
		fftSize:     m.FFTSize,
		lowHz:       m.LowHz,
		highHz:      m.HighHz,
		win:         fft.Hamming,
	})
	if err != nil {
		return nil, err
	}
	samples := sig.Data
	if sig.Axes > 1 {
		samples = sig.Axis(0)
	}
	out := tensor.NewF32(shape...)
	st := rt.pool.Get().(*audioScratch)
	nf := m.NumFilters
	for i := 0; i < shape[0]; i++ {
		if err := rt.powerFrame(samples, i*rt.stride, st); err != nil {
			return nil, err
		}
		row := out.Data[i*nf : (i+1)*nf]
		applyFilterbankInto(row, st.power, rt.filters)
		for j, e := range row {
			row[j] = 10 * logSafe(e)
		}
	}
	rt.pool.Put(st)
	normalizeNoiseFloor(out.Data, m.NoiseFloorDB)
	return out, nil
}

// normalizeNoiseFloor maps dB values into [0,1] with a floor `floorDB`
// below the maximum, the same normalization the platform applies so that
// features are quantization-friendly.
func normalizeNoiseFloor(data []float32, floorDB float64) {
	if len(data) == 0 {
		return
	}
	max := data[0]
	for _, v := range data {
		if v > max {
			max = v
		}
	}
	lo := max - float32(floorDB)
	rangeInv := float32(1 / floorDB)
	for i, v := range data {
		x := (v - lo) * rangeInv
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		data[i] = x
	}
}

// Cost implements Block.
func (m *MFE) Cost(sig Signal) Cost {
	frameLen, stride := m.frameSamples(sig.Rate)
	n := int64(frameCount(sig.Frames(), frameLen, stride))
	if n == 0 {
		return Cost{}
	}
	filters := melFilterbank(m.NumFilters, m.FFTSize, sig.Rate, m.LowHz, m.HighHz)
	perFrame := Cost{
		FloatOps:       int64(frameLen) + int64(m.FFTSize/2+1)*2, // windowing + power
		MACs:           filterbankMACs(filters),
		FFTButterflies: fftButterflies(m.FFTSize),
		TranscOps:      int64(m.NumFilters), // log per filter
	}
	c := perFrame.Scale(n)
	c.FloatOps += n * int64(m.NumFilters) * 2 // normalization pass
	return c
}

// RAM implements Block: frame buffer + FFT working buffers + output.
func (m *MFE) RAM(sig Signal) int64 {
	shape, err := m.OutputShape(sig)
	if err != nil {
		return 0
	}
	fftBuf := int64(m.FFTSize) * 8    // split re/im scratch + power bins
	frameBuf := int64(m.FFTSize) * 4  // windowed frame
	out := int64(shape.Elems()) * 4   // feature matrix
	filterTab := int64(m.FFTSize) * 4 // filterbank weights (approx)
	return fftBuf + frameBuf + out + filterTab
}
