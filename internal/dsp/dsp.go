// Package dsp implements the digital signal processing blocks of the
// edgepulse pipeline: the feature extractors that sit between raw sensor
// data and the neural network (paper Sec. 4.2).
//
// Each block is pure and deterministic: the same raw signal and
// configuration always produce the same features, on the host and (in the
// real platform) on device. Every block also reports an operation-count
// Cost used by the device simulator to estimate on-target latency and a
// RAM footprint used by the memory profiler.
package dsp

import (
	"fmt"
	"sort"

	"edgepulse/internal/tensor"
)

// Signal is a raw input sample: interleaved multi-axis time series
// (audio, accelerometer, ...) or image pixel data.
type Signal struct {
	// Data holds the raw values. For time series the layout is
	// interleaved by axis: [a0x a0y a0z a1x a1y a1z ...]. For images the
	// layout is row-major [H][W][C] with values in [0, 255].
	Data []float32
	// Rate is the sampling frequency in Hz (time series only).
	Rate int
	// Axes is the number of interleaved channels (1 for mono audio).
	Axes int
	// Width and Height are set for image signals; zero otherwise.
	Width, Height int
}

// Frames returns the number of per-axis time steps in the signal.
func (s Signal) Frames() int {
	if s.Axes <= 0 {
		return 0
	}
	return len(s.Data) / s.Axes
}

// Axis extracts a single de-interleaved axis.
func (s Signal) Axis(i int) []float32 {
	n := s.Frames()
	out := make([]float32, n)
	for t := 0; t < n; t++ {
		out[t] = s.Data[t*s.Axes+i]
	}
	return out
}

// Cost is the operation count of one feature extraction, used by the
// device simulator to convert work into cycles on a specific target.
type Cost struct {
	// FloatOps counts scalar float operations (adds, multiplies, compares).
	FloatOps int64
	// MACs counts multiply-accumulate pairs (filterbank, DCT).
	MACs int64
	// FFTButterflies counts complex butterfly operations across all FFTs.
	FFTButterflies int64
	// TranscOps counts transcendental calls (log, sqrt, cos, exp).
	TranscOps int64
}

// Add returns the element-wise sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		FloatOps:       c.FloatOps + o.FloatOps,
		MACs:           c.MACs + o.MACs,
		FFTButterflies: c.FFTButterflies + o.FFTButterflies,
		TranscOps:      c.TranscOps + o.TranscOps,
	}
}

// Scale returns the cost multiplied by n (e.g. per-frame cost × frames).
func (c Cost) Scale(n int64) Cost {
	return Cost{
		FloatOps:       c.FloatOps * n,
		MACs:           c.MACs * n,
		FFTButterflies: c.FFTButterflies * n,
		TranscOps:      c.TranscOps * n,
	}
}

// Block is a DSP feature extraction block.
type Block interface {
	// Name returns the block type identifier, e.g. "mfcc".
	Name() string
	// Params returns the hyperparameter set for display and serialization.
	Params() map[string]float64
	// OutputShape returns the feature tensor shape for a signal
	// description (without running the extraction).
	OutputShape(sig Signal) (tensor.Shape, error)
	// Extract computes features for one signal.
	Extract(sig Signal) (*tensor.F32, error)
	// Cost estimates the operation count of Extract for a signal
	// description.
	Cost(sig Signal) Cost
	// RAM estimates the peak working memory of Extract in bytes,
	// including the output feature buffer.
	RAM(sig Signal) int64
}

// Registry maps block names to constructors from a parameter map. It backs
// impulse deserialization and the REST API's block configuration endpoint.
var registry = map[string]func(params map[string]float64) (Block, error){}

// Register adds a constructor for the named block type. It panics on
// duplicates, which indicates a programmer error at init time.
func Register(name string, ctor func(params map[string]float64) (Block, error)) {
	if _, dup := registry[name]; dup {
		panic("dsp: duplicate block registration: " + name)
	}
	registry[name] = ctor
}

// New constructs a registered block by name.
func New(name string, params map[string]float64) (Block, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dsp: unknown block %q", name)
	}
	return ctor(params)
}

// Names returns the registered block names, sorted so catalog responses
// are deterministic across processes.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Defaults returns the full default parameter map of a registered block
// type — its parameter schema — by constructing the block with no
// overrides and reading back the resolved hyperparameters.
func Defaults(name string) (map[string]float64, error) {
	b, err := New(name, nil)
	if err != nil {
		return nil, err
	}
	return b.Params(), nil
}

func getParam(params map[string]float64, key string, def float64) float64 {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}

// frameCount returns how many analysis frames fit in n samples with the
// given frame length and stride (both in samples).
func frameCount(n, frameLen, stride int) int {
	if n < frameLen || frameLen <= 0 || stride <= 0 {
		return 0
	}
	return (n-frameLen)/stride + 1
}
