package dsp

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"edgepulse/internal/fft"
	"edgepulse/internal/tensor"
)

// refMFE replicates the pre-plan MFE pipeline (complex128 FFT via
// powerFrames, per-call filterbank) as the golden reference.
func refMFE(m *MFE, sig Signal) (*tensor.F32, error) {
	shape, err := m.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	frameLen, stride := m.frameSamples(sig.Rate)
	samples := sig.Data
	if sig.Axes > 1 {
		samples = sig.Axis(0)
	}
	frames, err := powerFrames(samples, frameLen, stride, m.FFTSize, fft.Hamming)
	if err != nil {
		return nil, err
	}
	filters := melFilterbank(m.NumFilters, m.FFTSize, sig.Rate, m.LowHz, m.HighHz)
	out := tensor.NewF32(shape...)
	for i, ps := range frames {
		energies := applyFilterbank(ps, filters)
		for j, e := range energies {
			out.Data[i*m.NumFilters+j] = 10 * logSafe(e)
		}
	}
	normalizeNoiseFloor(out.Data, m.NoiseFloorDB)
	return out, nil
}

// refMFCC replicates the pre-plan MFCC pipeline with the float64 DCT.
func refMFCC(m *MFCC, sig Signal) (*tensor.F32, error) {
	shape, err := m.OutputShape(sig)
	if err != nil {
		return nil, err
	}
	frameLen, stride := m.frameSamples(sig.Rate)
	samples := sig.Data
	if sig.Axes > 1 {
		samples = sig.Axis(0)
	}
	frames, err := powerFrames(samples, frameLen, stride, m.FFTSize, fft.Hamming)
	if err != nil {
		return nil, err
	}
	filters := melFilterbank(m.NumFilters, m.FFTSize, sig.Rate, m.LowHz, m.HighHz)
	lifter := make([]float32, m.NumCoeffs)
	for i := range lifter {
		if m.CepLifter > 0 {
			lifter[i] = float32(1 + float64(m.CepLifter)/2*math.Sin(math.Pi*float64(i)/float64(m.CepLifter)))
		} else {
			lifter[i] = 1
		}
	}
	out := tensor.NewF32(shape...)
	logE := make([]float32, m.NumFilters)
	for i, ps := range frames {
		energies := applyFilterbank(ps, filters)
		for j, e := range energies {
			logE[j] = logSafe(e)
		}
		coeffs := fft.DCTII(logE, m.NumCoeffs)
		for j, c := range coeffs {
			out.Data[i*m.NumCoeffs+j] = c * lifter[j]
		}
	}
	standardizeColumns(out.Data, shape[0], shape[1])
	return out, nil
}

// noiseSignal builds a deterministic broadband test signal (noise plus
// chirpy tones) so no feature column is degenerate.
func noiseSignal(rng *rand.Rand, n, rate, axes int) Signal {
	data := make([]float32, n*axes)
	for i := range data {
		t := float64(i/axes) / float64(rate)
		data[i] = float32(rng.NormFloat64()*0.2 +
			0.5*math.Sin(2*math.Pi*(300+200*t)*t) +
			0.3*math.Sin(2*math.Pi*1700*t))
	}
	return Signal{Data: data, Rate: rate, Axes: axes}
}

// TestMFEGoldenAgainstReference proves the precomputed-plan extraction
// matches the historical complex128 pipeline within float32 tolerance.
func TestMFEGoldenAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sig := noiseSignal(rng, 16000, 16000, 1)
	m, err := NewMFE(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refMFE(m, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape.Equal(want.Shape) {
		t.Fatalf("shape %v != %v", got.Shape, want.Shape)
	}
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-3 {
			t.Fatalf("elem %d: got %g want %g (|d|=%g)", i, got.Data[i], want.Data[i], d)
		}
	}
}

func TestMFCCGoldenAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	sig := noiseSignal(rng, 16000, 16000, 1)
	m, err := NewMFCC(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Extract(sig)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refMFCC(m, sig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 2e-3 {
			t.Fatalf("elem %d: got %g want %g (|d|=%g)", i, got.Data[i], want.Data[i], d)
		}
	}
}

// TestExtractSteadyStateAllocs pins the per-extraction allocation budget
// after warmup: only the output tensor should be allocated.
func TestExtractSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sig := noiseSignal(rng, 16000, 16000, 1)
	mfe, _ := NewMFE(nil)
	mfcc, _ := NewMFCC(nil)
	for _, tc := range []struct {
		name  string
		block Block
	}{{"mfe", mfe}, {"mfcc", mfcc}} {
		if _, err := tc.block.Extract(sig); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := tc.block.Extract(sig); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 10 {
			t.Errorf("%s Extract allocates %v per run, want <= 10", tc.name, allocs)
		}
	}
}

// TestExtractConcurrentSharedBlock runs concurrent extractions on one
// shared block (as concurrent classify requests do) and checks results
// against the serial answer: pooled scratch must not alias across calls.
func TestExtractConcurrentSharedBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	sigs := make([]Signal, 4)
	wants := make([]*tensor.F32, len(sigs))
	m, _ := NewMFE(nil)
	for i := range sigs {
		sigs[i] = noiseSignal(rng, 8000, 16000, 1)
		w, err := m.Extract(sigs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				k := (g + iter) % len(sigs)
				got, err := m.Extract(sigs[k])
				if err != nil {
					select {
					case fail <- err.Error():
					default:
					}
					return
				}
				for i := range wants[k].Data {
					if got.Data[i] != wants[k].Data[i] {
						select {
						case fail <- "concurrent extraction diverged from serial":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(fail)
	if msg, ok := <-fail; ok {
		t.Fatal(msg)
	}
}

// TestRuntimeRebuildOnRateOrParamChange ensures the cached runtime is
// keyed on sample rate and parameters, not constructed once and reused
// blindly.
func TestRuntimeRebuildOnRateOrParamChange(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m, _ := NewMFE(nil)
	sig16 := noiseSignal(rng, 16000, 16000, 1)
	if _, err := m.Extract(sig16); err != nil {
		t.Fatal(err)
	}
	sig8 := noiseSignal(rng, 8000, 8000, 1)
	got, err := m.Extract(sig8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refMFE(m, sig8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-3 {
			t.Fatalf("after rate change, elem %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
	// Mutating a parameter must invalidate the cached runtime too.
	m.NumFilters = 20
	got2, err := m.Extract(sig8)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Shape[1] != 20 {
		t.Fatalf("stale runtime: shape %v after NumFilters change", got2.Shape)
	}
}
