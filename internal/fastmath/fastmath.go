// Package fastmath provides opt-in polynomial approximations of the
// transcendental functions on the inference and DSP hot paths (exp,
// log10, tanh, sigmoid), mirroring the fixed-point/approximation
// trade-offs embedded speech front ends make: a Cephes-style float32
// polynomial is 3-10x cheaper than the float64 libm call and accurate
// to a few ULP — far below the quantization noise of an int8 pipeline.
//
// The mode is disabled by default: every gated call site falls back to
// the exact math package routine, keeping golden DSP and softmax
// outputs bit-identical unless a deployment explicitly opts in via
// SetEnabled(true). The *Fast functions are the raw approximations,
// exposed for error-bound tests and for callers that want them
// unconditionally.
package fastmath

import (
	"math"
	"sync/atomic"
)

// enabled gates the approximate paths; default off.
var enabled atomic.Bool

// Enabled reports whether fast-math approximations are active.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches the gated call sites between the polynomial
// approximations (true) and the exact math package routines (false).
func SetEnabled(on bool) { enabled.Store(on) }

// Float32 range-reduction constants (Cephes cephes_expf/logf).
const (
	log2e    = 1.44269504088896341
	ln2Hi    = 0.693359375
	ln2Lo    = -2.12194440e-4
	sqrtHalf = 0.707106781186547524
	log10e   = 0.434294482 // log10(e), float32 precision
)

// ExpFast computes exp(x) with a degree-5 polynomial after ln2 range
// reduction. Max observed relative error is ~2 ULP over the finite
// float32 exp domain; overflow saturates to +Inf, underflow to 0.
func ExpFast(x float32) float32 {
	if x != x {
		return x
	}
	if x > 88.72 {
		return float32(math.Inf(1))
	}
	if x < -87.33 {
		return 0
	}
	// n = round(x / ln 2), r = x - n ln 2 in two parts. Round half away
	// from zero via int32 truncation — any consistent rounding keeps r
	// inside the polynomial's range.
	z := x * log2e
	if z >= 0 {
		z = float32(int32(z + 0.5))
	} else {
		z = float32(int32(z - 0.5))
	}
	r := x - z*ln2Hi - z*ln2Lo
	// exp(r) = 1 + r + r^2 P(r)
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	p = p*r*r + r + 1
	// Scale by 2^n via exponent bits.
	return p * math.Float32frombits(uint32(int32(z)+127)<<23)
}

// Log10Fast computes log10(x) via a degree-8 polynomial on the reduced
// mantissa (Cephes logf scaled by log10 e). Accuracy is a few ULP of
// the natural log; x <= 0 and non-finite inputs defer to math.Log10.
func Log10Fast(x float32) float32 {
	if !(x > 0) || math.IsInf(float64(x), 1) {
		return float32(math.Log10(float64(x)))
	}
	// Decompose x = m * 2^e with m in [sqrt(1/2), sqrt(2)).
	bits := math.Float32bits(x)
	e := int32(bits>>23) - 126
	m := math.Float32frombits(bits&0x007FFFFF | 0x3F000000) // [0.5, 1)
	if e == -126 {                                          // subnormal: renormalize through float64
		return float32(math.Log10(float64(x)))
	}
	if m < sqrtHalf {
		e--
		m += m
	}
	m -= 1
	z := m * m
	p := float32(7.0376836292e-2)
	p = p*m - 1.1514610310e-1
	p = p*m + 1.1676998740e-1
	p = p*m - 1.2420140846e-1
	p = p*m + 1.4249322787e-1
	p = p*m - 1.6668057665e-1
	p = p*m + 2.0000714765e-1
	p = p*m - 2.4999993993e-1
	p = p*m + 3.3333331174e-1
	y := m * z * p
	fe := float32(e)
	y += fe * ln2Lo
	y -= 0.5 * z
	ln := m + y + fe*ln2Hi
	return ln * log10e
}

// TanhFast computes tanh(x): an odd degree-11 polynomial below 0.625,
// the exp identity above. Relative error stays within a few ULP.
func TanhFast(x float32) float32 {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	if ax >= 9 {
		if x != x {
			return x
		}
		if x > 0 {
			return 1
		}
		return -1
	}
	if ax < 0.625 {
		z := x * x
		p := float32(-5.70498872745e-3)
		p = p*z + 2.06390887954e-2
		p = p*z - 5.37397155531e-2
		p = p*z + 1.33314422036e-1
		p = p*z - 3.33332819422e-1
		return p*z*x + x
	}
	t := 1 - 2/(ExpFast(2*ax)+1)
	if x < 0 {
		return -t
	}
	return t
}

// SigmoidFast computes 1/(1+exp(-x)) with ExpFast.
func SigmoidFast(x float32) float32 {
	return 1 / (1 + ExpFast(-x))
}
