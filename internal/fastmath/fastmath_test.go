package fastmath

import (
	"math"
	"testing"
)

// relErr returns |got-ref| / max(|ref|, floor): a relative error with an
// absolute floor so near-zero references don't blow the ratio up.
func relErr(got float32, ref, floor float64) float64 {
	d := math.Abs(float64(got) - ref)
	den := math.Abs(ref)
	if den < floor {
		den = floor
	}
	return d / den
}

// TestExpFastErrorBound sweeps the finite exp domain and requires the
// polynomial to stay within a few float32 ULP of math.Exp.
func TestExpFastErrorBound(t *testing.T) {
	const bound = 5e-7
	worst := 0.0
	for x := -87.0; x <= 88.0; x += 0.0025 {
		xf := float32(x)
		ref := math.Exp(float64(xf))
		if e := relErr(ExpFast(xf), ref, 1e-30); e > worst {
			worst = e
			if e > bound {
				t.Fatalf("ExpFast(%v): rel err %.3g > %.3g", xf, e, bound)
			}
		}
	}
	t.Logf("ExpFast max rel err over [-87, 88]: %.3g", worst)
	// Saturation and specials.
	if v := ExpFast(120); !math.IsInf(float64(v), 1) {
		t.Fatalf("ExpFast(120) = %v, want +Inf", v)
	}
	if v := ExpFast(-120); v != 0 {
		t.Fatalf("ExpFast(-120) = %v, want 0", v)
	}
	if v := ExpFast(float32(math.NaN())); v == v {
		t.Fatalf("ExpFast(NaN) = %v, want NaN", v)
	}
	if v := ExpFast(0); v != 1 {
		t.Fatalf("ExpFast(0) = %v, want 1", v)
	}
}

// TestLog10FastErrorBound sweeps magnitudes from 1e-30 to 1e30 plus a
// dense band around 1 where the log passes through zero.
func TestLog10FastErrorBound(t *testing.T) {
	const absBound = 2e-7 // log10 result is O(1..30); near 1 it is ~0
	check := func(x float32) {
		ref := math.Log10(float64(x))
		got := Log10Fast(x)
		if d := math.Abs(float64(got) - ref); d > absBound+2e-7*math.Abs(ref) {
			t.Fatalf("Log10Fast(%v) = %v, want %v (err %.3g)", x, got, ref, d)
		}
	}
	for dec := -30; dec <= 30; dec++ {
		base := math.Pow(10, float64(dec))
		for _, m := range []float64{1, 1.3, 2.5, 4.99, 7.07, 9.9} {
			check(float32(base * m))
		}
	}
	for x := 0.5; x <= 2.0; x += 0.0005 {
		check(float32(x))
	}
	// Domain edges defer to math.Log10.
	if v := Log10Fast(0); !math.IsInf(float64(v), -1) {
		t.Fatalf("Log10Fast(0) = %v, want -Inf", v)
	}
	if v := Log10Fast(-1); v == v {
		t.Fatalf("Log10Fast(-1) = %v, want NaN", v)
	}
	if v := Log10Fast(float32(math.Inf(1))); !math.IsInf(float64(v), 1) {
		t.Fatalf("Log10Fast(+Inf) = %v, want +Inf", v)
	}
}

// TestTanhFastErrorBound covers the polynomial branch, the exp-identity
// branch, the saturation region and the branch seam at 0.625.
func TestTanhFastErrorBound(t *testing.T) {
	const bound = 1e-6
	for x := -12.0; x <= 12.0; x += 0.001 {
		xf := float32(x)
		ref := math.Tanh(float64(xf))
		if e := relErr(TanhFast(xf), ref, 1e-10); e > bound {
			t.Fatalf("TanhFast(%v): rel err %.3g > %.3g", xf, e, bound)
		}
	}
	if v := TanhFast(50); v != 1 {
		t.Fatalf("TanhFast(50) = %v, want 1", v)
	}
	if v := TanhFast(-50); v != -1 {
		t.Fatalf("TanhFast(-50) = %v, want -1", v)
	}
	if v := TanhFast(0); v != 0 {
		t.Fatalf("TanhFast(0) = %v, want 0", v)
	}
}

// TestSigmoidFastErrorBound sweeps the numerically interesting band.
func TestSigmoidFastErrorBound(t *testing.T) {
	const bound = 1e-6
	for x := -30.0; x <= 30.0; x += 0.001 {
		xf := float32(x)
		ref := 1 / (1 + math.Exp(-float64(xf)))
		if e := relErr(SigmoidFast(xf), ref, 1e-12); e > bound {
			t.Fatalf("SigmoidFast(%v): rel err %.3g > %.3g", xf, e, bound)
		}
	}
}

// TestEnabledDefaultsOff pins the opt-in contract: a fresh process must
// run the exact math paths until a caller flips the switch.
func TestEnabledDefaultsOff(t *testing.T) {
	if Enabled() {
		t.Fatal("fast-math must default to disabled")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) did not take")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
}

var sinkF32 float32

func BenchmarkExpFast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF32 = ExpFast(float32(i%32) - 16)
	}
}

func BenchmarkExpStdlib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF32 = float32(math.Exp(float64(float32(i%32) - 16)))
	}
}

func BenchmarkLog10Fast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF32 = Log10Fast(float32(i%1000) + 0.5)
	}
}

func BenchmarkLog10Stdlib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF32 = float32(math.Log10(float64(float32(i%1000) + 0.5)))
	}
}
