// Package device models the embedded hardware targets of the paper's
// evaluation (Table 1). Each Target carries the board's memory capacities
// and a calibrated cycle-cost model that encodes its architectural
// features: hardware FPU (or lack of it — the Pi Pico's Cortex-M0+ pays a
// large soft-float penalty), DSP/SIMD extensions usable by CMSIS-NN-style
// int8 kernels, and clock speed.
//
// The cycle model stands in for the physical boards and for the Renode
// emulation the platform uses for its estimates (paper Sec. 4.4); see
// DESIGN.md for the substitution rationale.
package device

import (
	"fmt"
	"sort"
)

// Target describes one deployment platform.
type Target struct {
	// ID is the stable identifier used by APIs and CLIs.
	ID string
	// Name is the marketing name shown in tables.
	Name string
	// CPU is the processor core.
	CPU string
	// ClockHz is the core clock.
	ClockHz int64
	// FlashBytes and RAMBytes are the capacities from Table 1.
	FlashBytes int64
	RAMBytes   int64
	// HasFPU indicates hardware single-precision float support.
	HasFPU bool
	// HasDSPExt indicates SIMD/DSP instructions exploitable by int8
	// kernels (CMSIS-NN on Cortex-M4).
	HasDSPExt bool

	// Cycle cost model. All values are cycles per unit of work.
	CyclesPerMACF32    float64 // float32 multiply-accumulate (NN kernels)
	CyclesPerMACI8     float64 // int8 MAC with int32 accumulate
	CyclesPerFloatOp   float64 // scalar float add/mul/compare (DSP)
	CyclesPerButterfly float64 // complex FFT butterfly
	CyclesPerTransc    float64 // log/exp/cos/sqrt call
	// KernelCallCycles is fixed overhead per op invocation (loop set-up,
	// bounds computation).
	KernelCallCycles float64
	// InterpreterDispatchCycles is the extra per-op cost of walking the
	// TFLM interpreter graph; the EON compiler eliminates it.
	InterpreterDispatchCycles float64
}

// Millis converts a cycle count to milliseconds on this target.
func (t Target) Millis(cycles int64) float64 {
	return float64(cycles) / float64(t.ClockHz) * 1000
}

// String implements fmt.Stringer.
func (t Target) String() string {
	return fmt.Sprintf("%s (%s @ %d MHz, %d kB flash, %d kB RAM)",
		t.Name, t.CPU, t.ClockHz/1_000_000, t.FlashBytes/1024, t.RAMBytes/1024)
}

// The paper's three evaluation platforms (Table 1), with cycle models
// calibrated so that the latency relationships of Table 2 reproduce:
// CMSIS-NN int8 gives ~9× over float on the M4, the ESP32's FPU and
// clock make float competitive (and int8 barely 2× float), and the
// FPU-less M0+ pays a ~5× soft-float penalty.
var builtins = []Target{
	{
		ID: "nano-33-ble-sense", Name: "Nano 33 BLE Sense", CPU: "Arm Cortex-M4",
		ClockHz: 64_000_000, FlashBytes: 1 << 20, RAMBytes: 256 << 10,
		HasFPU: true, HasDSPExt: true,
		CyclesPerMACF32: 68, CyclesPerMACI8: 7.6,
		CyclesPerFloatOp: 2.5, CyclesPerButterfly: 78, CyclesPerTransc: 90,
		KernelCallCycles: 800, InterpreterDispatchCycles: 1800,
	},
	{
		ID: "esp-eye", Name: "ESP-EYE (ESP32)", CPU: "Tensilica LX6",
		ClockHz: 160_000_000, FlashBytes: 4 << 20, RAMBytes: 8 << 20,
		HasFPU: true, HasDSPExt: false,
		CyclesPerMACF32: 38, CyclesPerMACI8: 18,
		CyclesPerFloatOp: 6, CyclesPerButterfly: 420, CyclesPerTransc: 150,
		KernelCallCycles: 1000, InterpreterDispatchCycles: 2200,
	},
	{
		ID: "pi-pico", Name: "Ras. Pi Pico (RP2040)", CPU: "Arm Cortex-M0+",
		ClockHz: 133_000_000, FlashBytes: 16 << 20, RAMBytes: 264 << 10,
		HasFPU: false, HasDSPExt: false,
		CyclesPerMACF32: 290, CyclesPerMACI8: 56,
		CyclesPerFloatOp: 18, CyclesPerButterfly: 620, CyclesPerTransc: 400,
		KernelCallCycles: 900, InterpreterDispatchCycles: 2000,
	},
	{
		ID: "linux-x86", Name: "Linux x86-64", CPU: "x86-64",
		ClockHz: 2_400_000_000, FlashBytes: 1 << 33, RAMBytes: 1 << 33,
		HasFPU: true, HasDSPExt: true,
		CyclesPerMACF32: 1.2, CyclesPerMACI8: 0.8,
		CyclesPerFloatOp: 0.7, CyclesPerButterfly: 4, CyclesPerTransc: 12,
		KernelCallCycles: 200, InterpreterDispatchCycles: 400,
	},
}

// Get returns the target with the given ID.
func Get(id string) (Target, error) {
	for _, t := range builtins {
		if t.ID == id {
			return t, nil
		}
	}
	return Target{}, fmt.Errorf("device: unknown target %q", id)
}

// MustGet is Get but panics on unknown IDs (for static tables in benches).
func MustGet(id string) Target {
	t, err := Get(id)
	if err != nil {
		panic(err)
	}
	return t
}

// All returns the registered targets sorted by ID.
func All() []Target {
	out := append([]Target(nil), builtins...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EvaluationBoards returns the paper's three Table 1 platforms in paper
// order.
func EvaluationBoards() []Target {
	return []Target{
		MustGet("nano-33-ble-sense"),
		MustGet("esp-eye"),
		MustGet("pi-pico"),
	}
}
