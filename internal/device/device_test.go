package device

import (
	"strings"
	"testing"
)

func TestGetKnownTargets(t *testing.T) {
	for _, id := range []string{"nano-33-ble-sense", "esp-eye", "pi-pico", "linux-x86"} {
		tgt, err := Get(id)
		if err != nil {
			t.Fatalf("Get(%q): %v", id, err)
		}
		if tgt.ClockHz <= 0 || tgt.RAMBytes <= 0 || tgt.FlashBytes <= 0 {
			t.Errorf("%s has invalid capacities", id)
		}
		if tgt.CyclesPerMACF32 <= 0 || tgt.CyclesPerMACI8 <= 0 {
			t.Errorf("%s has invalid cycle model", id)
		}
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Error("Get accepted unknown id")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	MustGet("nope")
}

func TestTable1Capacities(t *testing.T) {
	// Values from the paper's Table 1.
	nano := MustGet("nano-33-ble-sense")
	if nano.ClockHz != 64_000_000 || nano.FlashBytes != 1<<20 || nano.RAMBytes != 256<<10 {
		t.Errorf("nano: %+v", nano)
	}
	esp := MustGet("esp-eye")
	if esp.ClockHz != 160_000_000 || esp.FlashBytes != 4<<20 || esp.RAMBytes != 8<<20 {
		t.Errorf("esp: %+v", esp)
	}
	pico := MustGet("pi-pico")
	if pico.ClockHz != 133_000_000 || pico.RAMBytes != 264<<10 {
		t.Errorf("pico: %+v", pico)
	}
}

func TestArchitecturalFacts(t *testing.T) {
	nano := MustGet("nano-33-ble-sense")
	pico := MustGet("pi-pico")
	esp := MustGet("esp-eye")
	if !nano.HasFPU || !nano.HasDSPExt {
		t.Error("M4 should have FPU and DSP extensions")
	}
	if pico.HasFPU {
		t.Error("M0+ has no FPU")
	}
	// CMSIS-NN effect: int8 much cheaper than float on the M4.
	if nano.CyclesPerMACF32/nano.CyclesPerMACI8 < 5 {
		t.Error("M4 int8 speedup should be large")
	}
	// ESP32 without int8 SIMD: modest speedup.
	if esp.CyclesPerMACF32/esp.CyclesPerMACI8 > 4 {
		t.Error("ESP32 int8 speedup should be modest")
	}
	// Soft float penalty on the M0+.
	if pico.CyclesPerMACF32 < 3*nano.CyclesPerMACF32 {
		t.Error("M0+ soft float should be much slower than M4 hardware float")
	}
}

func TestMillis(t *testing.T) {
	nano := MustGet("nano-33-ble-sense")
	if got := nano.Millis(64_000_000); got != 1000 {
		t.Errorf("Millis = %g, want 1000", got)
	}
	if got := nano.Millis(64_000); got != 1 {
		t.Errorf("Millis = %g, want 1", got)
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	all := All()
	if len(all) < 4 {
		t.Fatalf("only %d targets", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Error("All() not sorted")
		}
	}
}

func TestEvaluationBoardsOrder(t *testing.T) {
	boards := EvaluationBoards()
	if len(boards) != 3 {
		t.Fatalf("%d boards", len(boards))
	}
	want := []string{"nano-33-ble-sense", "esp-eye", "pi-pico"}
	for i, b := range boards {
		if b.ID != want[i] {
			t.Errorf("board %d = %s, want %s", i, b.ID, want[i])
		}
	}
}

func TestString(t *testing.T) {
	s := MustGet("pi-pico").String()
	if !strings.Contains(s, "Pico") || !strings.Contains(s, "133 MHz") {
		t.Errorf("String = %q", s)
	}
}
