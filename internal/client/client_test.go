package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

// newStudio boots the full platform behind httptest and returns an
// unauthenticated client for it.
func newStudio(t *testing.T, opts ...api.Option) *Client {
	t.Helper()
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 2, MaxWorkers: 4, ScaleInterval: 10 * time.Millisecond})
	t.Cleanup(sched.Shutdown)
	srv := httptest.NewServer(api.NewServer(reg, sched, opts...).Handler())
	t.Cleanup(srv.Close)
	return New(srv.URL)
}

func TestClientFullPipeline(t *testing.T) {
	ctx := context.Background()
	c := newStudio(t)

	user, err := c.CreateUser(ctx, "tester")
	if err != nil {
		t.Fatal(err)
	}
	if user.APIKey == "" {
		t.Fatal("no api key")
	}
	c = c.WithAPIKey(user.APIKey)

	proj, err := c.CreateProject(ctx, "kws")
	if err != nil {
		t.Fatal(err)
	}

	// Ingest a small signed dataset.
	ds, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.03, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "dev", DeviceType: "TEST",
			IntervalMS: 1000.0 / 8000.0,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, proj.HMACKey, 1670000000)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.UploadSample(ctx, proj.ID, UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Rebalance(ctx, proj.ID, 0.25); err != nil {
		t.Fatal(err)
	}
	list, err := c.Samples(ctx, proj.ID, "", Page{})
	if err != nil {
		t.Fatal(err)
	}
	if list.Total != 20 || len(list.Samples) != 20 {
		t.Fatalf("samples: total %d, window %d", list.Total, len(list.Samples))
	}
	paged, err := c.Samples(ctx, proj.ID, "", Page{Limit: 5, Offset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(paged.Samples) != 5 || paged.Offset != 10 {
		t.Fatalf("paged: %+v", paged.Page)
	}

	// Impulse + training through the typed surface.
	if _, err := c.SetImpulse(ctx, proj.ID, core.Config{
		Version: core.ConfigVersion,
		Name:    "kws",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Type: "mfe", Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Classes: []string{"noise", "yes"},
	}); err != nil {
		t.Fatal(err)
	}
	imp, err := c.Impulse(ctx, proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Trained {
		t.Fatal("impulse trained before training")
	}

	accepted, err := c.Train(ctx, proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       10,
		LearningRate: 0.005,
		Quantize:     true,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Status != v1.JobFinished {
		t.Fatalf("wait: %+v", done)
	}
	resultResp, err := c.JobResult(ctx, accepted.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if resultResp.Kind != "training" {
		t.Fatalf("result kind %q", resultResp.Kind)
	}
	res, err := resultResp.TrainResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.6 || !res.Quantized {
		t.Fatalf("train result: %+v", res)
	}

	// Classify, profile, deploy.
	clip, err := ds.Get(ds.List("")[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := c.Classify(ctx, proj.ID, clip.Signal.Data, false)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Label == "" || len(cls.Classification) != 2 {
		t.Fatalf("classify: %+v", cls)
	}
	prof, err := c.Profile(ctx, proj.ID, "nano-33-ble-sense")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Float32 == nil || prof.Float32.TotalMS <= 0 || prof.Int8 == nil {
		t.Fatalf("profile: %+v", prof)
	}
	dep, err := c.Deployment(ctx, proj.ID, "cpp", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Files) < 4 {
		t.Fatalf("cpp files: %d", len(dep.Files))
	}
	blob, err := c.DeploymentEIM(ctx, proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 100 || string(blob[:4]) != "EPIM" {
		t.Fatalf("EIM blob: %d bytes", len(blob))
	}

	// Versioning.
	snap, err := c.Snapshot(ctx, proj.ID, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version.DatasetVersion == "" {
		t.Fatalf("snapshot: %+v", snap)
	}
	versions, err := c.Versions(ctx, proj.ID, Page{})
	if err != nil {
		t.Fatal(err)
	}
	if len(versions.Versions) != 1 {
		t.Fatalf("versions: %+v", versions)
	}

	// Server metrics are visible through the client too.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.Scheduler.Completed == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestClientAPIError(t *testing.T) {
	ctx := context.Background()
	c := newStudio(t)

	// Unauthenticated access surfaces the typed envelope.
	_, err := c.Projects(ctx, Page{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type: %v", err)
	}
	if apiErr.Status != http.StatusUnauthorized || apiErr.Code != v1.CodeUnauthorized || apiErr.RequestID == "" {
		t.Fatalf("api error: %+v", apiErr)
	}

	user, err := c.CreateUser(ctx, "tester")
	if err != nil {
		t.Fatal(err)
	}
	auth := c.WithAPIKey(user.APIKey)
	if _, err := auth.Project(ctx, 999); !errors.As(err, &apiErr) || apiErr.Code != v1.CodeNotFound {
		t.Fatalf("not found: %v", err)
	}
	if _, err := auth.Rebalance(ctx, 999, 0.5); !errors.As(err, &apiErr) || apiErr.Code != v1.CodeNotFound {
		t.Fatalf("rebalance on unknown project: %v", err)
	}
}

func TestClientRetriesRateLimit(t *testing.T) {
	// A stub that 429s twice then succeeds exercises the retry loop
	// without coupling the test to limiter timing.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"success":false,"error":{"code":"rate_limited","message":"slow down"}}`)
			return
		}
		fmt.Fprint(w, `{"success":true,"devices":[]}`)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(3))
	out, err := c.Devices(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success || calls.Load() != 3 {
		t.Fatalf("success=%v calls=%d", out.Success, calls.Load())
	}

	// With retries exhausted the typed error comes back.
	calls.Store(-100)
	_, err = New(srv.URL, WithRetries(0)).Devices(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != v1.CodeRateLimited {
		t.Fatalf("exhausted retries: %v", err)
	}
}
