// Package client is the first-class Go client for the edgepulse REST
// API — the programmatic surface the paper's Sec. 4.9 describes for
// automating data collection, training and deployment. It speaks the
// versioned /api/v1 contract using the typed DTOs of internal/api/v1,
// decodes the structured error envelope into *APIError, retries
// transient failures (429/502/503, honoring Retry-After), and replaces
// busy-polling with the server's long-poll job wait endpoint.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/resilience"
)

// ErrCircuitOpen is returned without issuing a request while the
// client's circuit breaker (WithCircuitBreaker) is open.
var ErrCircuitOpen = resilience.ErrCircuitOpen

// APIError is the decoded error envelope of a non-2xx response.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable code (v1.Code*).
	Code string
	// Message is the human-readable description.
	Message string
	// RequestID correlates the failure with server logs.
	RequestID string
	// RetryAfter is the server-suggested wait from the Retry-After
	// header (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("api error %d (%s): %s [request %s]", e.Status, e.Code, e.Message, e.RequestID)
	}
	return fmt.Sprintf("api error %d (%s): %s", e.Status, e.Code, e.Message)
}

// Option customizes a Client.
type Option func(*Client)

// WithAPIKey sets the x-api-key header on every request.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithHTTPClient substitutes the transport (default http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times transient failures (429, 502, 503 and
// transport errors on GET) are retried. Default 2; 0 disables.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithCircuitBreaker trips the client open after threshold consecutive
// hard failures (transport errors and 5xx — rate limiting doesn't
// count), failing calls fast with ErrCircuitOpen until cooldown passes
// and a probe request succeeds. threshold <= 0 disables the breaker.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		if threshold <= 0 {
			c.breaker = nil
			return
		}
		c.breaker = &resilience.Breaker{Threshold: threshold, Cooldown: cooldown}
	}
}

// WithRetryBudget caps how many retries the client may spend beyond
// what successful calls earn back, so a hard outage degrades to roughly
// one attempt per call instead of multiplying load by 1+retries.
// max <= 0 disables the budget.
func WithRetryBudget(max float64) Option {
	return func(c *Client) {
		if max <= 0 {
			c.budget = nil
			return
		}
		c.budget = &resilience.RetryBudget{Max: max}
	}
}

// WithEndpoints adds alternate base URLs (e.g. a second gateway). The
// client sticks to one endpoint until it fails with a transport error
// or 502/503, then rotates to the next for the retry and for all
// subsequent calls — combined with WithCircuitBreaker/WithRetryBudget
// this is the multi-endpoint awareness a clustered deployment needs.
func WithEndpoints(urls ...string) Option {
	return func(c *Client) { c.alternates = append(c.alternates, urls...) }
}

// Client talks to one edgepulse studio server (or gateway), optionally
// rotating across alternates on failure.
type Client struct {
	baseURL    string
	alternates []string
	apiKey     string
	hc         *http.Client
	retries    int
	breaker    *resilience.Breaker
	budget     *resilience.RetryBudget
	// ep is the endpoint ring cursor, shared by WithAPIKey copies so
	// every view of the client agrees on which endpoint is healthy.
	ep *epCursor
}

// epCursor tracks which endpoint of the ring is in use.
type epCursor struct {
	mu sync.Mutex
	i  int // 0 = baseURL, i > 0 = alternates[i-1]
}

// New builds a client for a server base URL like "http://localhost:4800".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: baseURL,
		hc:      http.DefaultClient,
		retries: 2,
		ep:      &epCursor{},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// endpoint returns the base URL currently in use.
func (c *Client) endpoint() string {
	c.ep.mu.Lock()
	defer c.ep.mu.Unlock()
	if c.ep.i == 0 || c.ep.i > len(c.alternates) {
		return c.baseURL
	}
	return c.alternates[c.ep.i-1]
}

// rotateEndpoint advances the ring after an endpoint-level failure, so
// the retry — and every later call — targets the next endpoint.
func (c *Client) rotateEndpoint() {
	if len(c.alternates) == 0 {
		return
	}
	c.ep.mu.Lock()
	c.ep.i = (c.ep.i + 1) % (len(c.alternates) + 1)
	c.ep.mu.Unlock()
}

// WithAPIKey returns a copy of the client authenticated as key — handy
// after bootstrapping a user with an unauthenticated client.
func (c *Client) WithAPIKey(key string) *Client {
	cp := *c
	cp.apiKey = key
	return &cp
}

// Page selects a pagination window on list calls. The zero value uses
// server defaults.
type Page struct {
	Limit  int
	Offset int
}

func (p Page) query() url.Values {
	q := url.Values{}
	if p.Limit > 0 {
		q.Set("limit", strconv.Itoa(p.Limit))
	}
	if p.Offset > 0 {
		q.Set("offset", strconv.Itoa(p.Offset))
	}
	return q
}

// do issues one API request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, body []byte, contentType string, out any) error {
	raw, err := c.doBytes(ctx, method, path, q, body, contentType)
	if err != nil {
		return err
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: bad response body: %w", err)
		}
	}
	return nil
}

// doBytes issues one API request with the retry/backoff machinery and
// returns the raw success body; non-2xx responses come back as
// *APIError. body bytes are replayed on retry.
func (c *Client) doBytes(ctx context.Context, method, path string, q url.Values, body []byte, contentType string) ([]byte, error) {
	rel := v1.Prefix + path
	if len(q) > 0 {
		rel += "?" + q.Encode()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		// Resolved per attempt: endpoint rotation redirects retries.
		u := c.endpoint() + rel
		if c.breaker != nil {
			if err := c.breaker.Allow(); err != nil {
				if lastErr != nil {
					return nil, fmt.Errorf("%w (last failure: %w)", err, lastErr)
				}
				return nil, err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, err
		}
		if c.apiKey != "" {
			req.Header.Set("x-api-key", c.apiKey)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		raw, apiErr, err := c.roundTrip(req)
		c.recordOutcome(apiErr, err)
		if err == nil && apiErr == nil {
			if c.budget != nil {
				c.budget.Credit()
			}
			return raw, nil
		}
		if err != nil {
			lastErr = err
			// The endpoint itself failed: later calls (and any retry)
			// go to the next one in the ring.
			c.rotateEndpoint()
			// Transport errors: retry only idempotent requests.
			if method != http.MethodGet || attempt >= c.retries {
				return nil, lastErr
			}
		} else {
			lastErr = apiErr
			if apiErr.Status == http.StatusBadGateway || apiErr.Status == http.StatusServiceUnavailable {
				c.rotateEndpoint()
			}
			if !retryable(method, apiErr.Status) || attempt >= c.retries {
				return nil, lastErr
			}
		}
		// A retry is load the server didn't ask for: spend budget first,
		// so a hard outage degrades to ~one attempt per call.
		if c.budget != nil && !c.budget.Spend() {
			return nil, lastErr
		}
		apiErr, _ = lastErr.(*APIError)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(RetryDelay(attempt, apiErr)):
		}
	}
}

// recordOutcome feeds the circuit breaker. Only hard failures count
// against it: transport errors and 5xx. Rate limiting (429) is the
// server working as designed, and 4xx is the caller's bug — neither
// says the server is down.
func (c *Client) recordOutcome(apiErr *APIError, err error) {
	if c.breaker == nil {
		return
	}
	failure := err != nil || (apiErr != nil && apiErr.Status >= 500)
	c.breaker.Record(!failure)
}

// roundTrip performs one HTTP exchange. A non-2xx status yields an
// *APIError; transport problems yield err.
func (c *Client) roundTrip(req *http.Request) ([]byte, *APIError, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode >= 400 {
		return raw, parseAPIError(resp.StatusCode, resp.Header, raw), nil
	}
	return raw, nil, nil
}

// parseAPIError decodes a non-2xx response into *APIError: the
// structured envelope when present, otherwise a status-derived code
// (e.g. a proxy error page) so callers can still branch on it. The
// Retry-After header is captured either way.
func parseAPIError(status int, header http.Header, body []byte) *APIError {
	apiErr := &APIError{Status: status, Code: codeForStatus(status), Message: string(body)}
	if secs, err := strconv.Atoi(header.Get("Retry-After")); err == nil && secs > 0 {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	var envelope v1.ErrorResponse
	if json.Unmarshal(body, &envelope) == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
		apiErr.RequestID = envelope.Error.RequestID
	}
	return apiErr
}

// codeForStatus maps an HTTP status to the closest stable error code,
// used when a non-2xx response carries no parseable envelope.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return v1.CodeBadRequest
	case http.StatusUnauthorized:
		return v1.CodeUnauthorized
	case http.StatusForbidden:
		return v1.CodeForbidden
	case http.StatusNotFound:
		return v1.CodeNotFound
	case http.StatusMethodNotAllowed:
		return v1.CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return v1.CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return v1.CodeRateLimited
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return v1.CodeUnavailable
	default:
		return v1.CodeInternal
	}
}

// retryable reports whether a failed request may be replayed. A 429
// means the server refused before doing any work, so any method is
// safe; 502/503 can arrive after the origin already acted (e.g. via a
// proxy), so only idempotent GETs are replayed.
func retryable(method string, status int) bool {
	if status == http.StatusTooManyRequests {
		return true
	}
	if method != http.MethodGet {
		return false
	}
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable
}

// retryBackoff is the one jittered-exponential schedule shared by every
// retry loop that talks to the studio API: request retries here, the
// NDJSON feed resume loop, and the daemon's spool re-upload.
var retryBackoff = resilience.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}

// RetryDelay returns how long to wait before retry number attempt
// (0-based). A server-suggested Retry-After wins (capped at 5s so a
// misconfigured header can't stall the client); otherwise the shared
// jittered exponential schedule applies.
func RetryDelay(attempt int, apiErr *APIError) time.Duration {
	if apiErr != nil && apiErr.RetryAfter > 0 {
		if apiErr.RetryAfter > 5*time.Second {
			return 5 * time.Second
		}
		return apiErr.RetryAfter
	}
	return retryBackoff.Delay(attempt)
}

func (c *Client) get(ctx context.Context, path string, q url.Values, out any) error {
	return c.do(ctx, http.MethodGet, path, q, nil, "", out)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, nil, body, "application/json", out)
}

// --- Users & discovery ---

// CreateUser bootstraps an account and returns its API key.
func (c *Client) CreateUser(ctx context.Context, name string) (*v1.CreateUserResponse, error) {
	var out v1.CreateUserResponse
	if err := c.postJSON(ctx, "/users", v1.CreateUserRequest{Name: name}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Devices lists the supported deployment targets.
func (c *Client) Devices(ctx context.Context) (*v1.DevicesResponse, error) {
	var out v1.DevicesResponse
	if err := c.get(ctx, "/devices", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Blocks fetches the impulse design catalog: every registered DSP and
// learn block type with its parameter schema.
func (c *Client) Blocks(ctx context.Context) (*v1.BlocksResponse, error) {
	var out v1.BlocksResponse
	if err := c.get(ctx, "/blocks", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics returns the server's operational counters.
func (c *Client) Metrics(ctx context.Context) (*v1.MetricsResponse, error) {
	var out v1.MetricsResponse
	if err := c.get(ctx, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready queries the readiness probe at GET /readyz. Unlike the other
// calls it decodes the body for both the ready (200) and degraded
// (503) cases — the probe returns its envelope either way — so a load
// harness can poll a booting or draining target without treating a
// not-yet-ready answer as a hard failure.
func (c *Client) Ready(ctx context.Context) (*v1.ReadyResponse, error) {
	var out v1.ReadyResponse
	err := c.get(ctx, "/readyz", nil, &out)
	if err == nil {
		return &out, nil
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
		if json.Unmarshal([]byte(apiErr.Message), &out) == nil {
			return &out, nil
		}
	}
	return nil, err
}

// ClusterStatus queries a gateway for the shard map with per-node
// health and replication lag. GET /api/v1/cluster/status.
func (c *Client) ClusterStatus(ctx context.Context) (*v1.ClusterStatusResponse, error) {
	var out v1.ClusterStatusResponse
	if err := c.get(ctx, "/cluster/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Projects ---

// CreateProject creates a project owned by the authenticated user.
func (c *Client) CreateProject(ctx context.Context, name string) (*v1.CreateProjectResponse, error) {
	var out v1.CreateProjectResponse
	if err := c.postJSON(ctx, "/projects", v1.CreateProjectRequest{Name: name}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Projects lists projects the authenticated user can access.
func (c *Client) Projects(ctx context.Context, page Page) (*v1.ProjectsResponse, error) {
	var out v1.ProjectsResponse
	if err := c.get(ctx, "/projects", page.query(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PublicProjects lists published projects; no authentication required.
func (c *Client) PublicProjects(ctx context.Context, page Page) (*v1.ProjectsResponse, error) {
	var out v1.ProjectsResponse
	if err := c.get(ctx, "/projects/public", page.query(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Project fetches one project.
func (c *Client) Project(ctx context.Context, id int) (*v1.ProjectResponse, error) {
	var out v1.ProjectResponse
	if err := c.get(ctx, fmt.Sprintf("/projects/%d", id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetPublic toggles a project's public visibility.
func (c *Client) SetPublic(ctx context.Context, id int, public bool) (*v1.SetPublicResponse, error) {
	var out v1.SetPublicResponse
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/public", id), v1.SetPublicRequest{Public: public}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AddCollaborator grants a user access to the project.
func (c *Client) AddCollaborator(ctx context.Context, id int, userID string) error {
	return c.postJSON(ctx, fmt.Sprintf("/projects/%d/collaborators", id), v1.AddCollaboratorRequest{UserID: userID}, nil)
}

// --- Data ---

// UploadParams describes one sample upload.
type UploadParams struct {
	// Label is required.
	Label string
	// Name defaults to "upload" server-side.
	Name string
	// Format is one of "wav", "csv", "image", "acquisition" (default).
	Format string
}

// UploadSample ingests one raw sample body (signed acquisition JSON,
// WAV, CSV or image bytes depending on Format).
func (c *Client) UploadSample(ctx context.Context, projectID int, p UploadParams, body []byte) (*v1.UploadResponse, error) {
	q := url.Values{}
	q.Set("label", p.Label)
	if p.Name != "" {
		q.Set("name", p.Name)
	}
	if p.Format != "" {
		q.Set("format", p.Format)
	}
	contentType := "application/octet-stream"
	if p.Format == "" || p.Format == "acquisition" {
		contentType = "application/json"
	}
	var out v1.UploadResponse
	if err := c.do(ctx, http.MethodPost, fmt.Sprintf("/projects/%d/data", projectID), q, body, contentType, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Samples lists the project's dataset. category filters by
// "training"/"testing" ("" = all).
func (c *Client) Samples(ctx context.Context, projectID int, category string, page Page) (*v1.ListDataResponse, error) {
	q := page.query()
	if category != "" {
		q.Set("category", category)
	}
	var out v1.ListDataResponse
	if err := c.get(ctx, fmt.Sprintf("/projects/%d/data", projectID), q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteSample removes one sample.
func (c *Client) DeleteSample(ctx context.Context, projectID int, sampleID string) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/projects/%d/data/%s", projectID, url.PathEscape(sampleID)), nil, nil, "", nil)
}

// Rebalance re-splits the dataset into train/test.
func (c *Client) Rebalance(ctx context.Context, projectID int, testFraction float64) (*v1.RebalanceResponse, error) {
	var out v1.RebalanceResponse
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/rebalance", projectID), v1.RebalanceRequest{TestFraction: testFraction}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Impulse ---

// SetImpulse uploads an impulse design. cfg is any value marshaling to
// the core impulse config JSON (e.g. core.Config or json.RawMessage).
func (c *Client) SetImpulse(ctx context.Context, projectID int, cfg any) (*v1.SetImpulseResponse, error) {
	var out v1.SetImpulseResponse
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/impulse", projectID), cfg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Impulse fetches the current impulse design and training state.
func (c *Client) Impulse(ctx context.Context, projectID int) (*v1.GetImpulseResponse, error) {
	var out v1.GetImpulseResponse
	if err := c.get(ctx, fmt.Sprintf("/projects/%d/impulse", projectID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Jobs ---

// Train submits an async training job.
func (c *Client) Train(ctx context.Context, projectID int, req v1.TrainRequest) (*v1.JobAccepted, error) {
	var out v1.JobAccepted
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/train", projectID), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tuner submits an async EON-Tuner search job.
func (c *Client) Tuner(ctx context.Context, projectID int, req v1.TunerRequest) (*v1.JobAccepted, error) {
	var out v1.JobAccepted
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/tuner", projectID), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches a job's status and logs.
func (c *Client) Job(ctx context.Context, jobID string) (*v1.JobResponse, error) {
	var out v1.JobResponse
	if err := c.get(ctx, "/jobs/"+url.PathEscape(jobID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a finished job's structured output.
func (c *Client) JobResult(ctx context.Context, jobID string) (*v1.JobResultResponse, error) {
	var out v1.JobResultResponse
	if err := c.get(ctx, "/jobs/"+url.PathEscape(jobID)+"/result", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob blocks until the job reaches a terminal state, long-polling
// the server's wait endpoint instead of busy-looping on status. It
// returns the terminal job view; cancel ctx to stop waiting.
func (c *Client) WaitJob(ctx context.Context, jobID string) (*v1.JobWaitResponse, error) {
	q := url.Values{}
	q.Set("timeout_ms", "30000")
	for {
		var out v1.JobWaitResponse
		if err := c.get(ctx, "/jobs/"+url.PathEscape(jobID)+"/wait", q, &out); err != nil {
			return nil, err
		}
		if out.Done {
			return &out, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// --- Inference, profiling, deployment ---

// Classify runs inference on one raw feature window.
func (c *Client) Classify(ctx context.Context, projectID int, features []float32, quantized bool) (*v1.ClassifyResponse, error) {
	var out v1.ClassifyResponse
	req := v1.ClassifyRequest{Features: features, Quantized: quantized}
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/classify", projectID), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClassifyBatch runs inference on several raw feature windows in one
// request (at most v1.MaxClassifyBatch), amortizing transport and
// server-side warm-up. Results are ordered like the windows.
func (c *Client) ClassifyBatch(ctx context.Context, projectID int, windows [][]float32, quantized bool) (*v1.ClassifyBatchResponse, error) {
	var out v1.ClassifyBatchResponse
	req := v1.ClassifyBatchRequest{Windows: windows, Quantized: quantized}
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/classify/batch", projectID), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Profile estimates latency and memory on a target device ("" = server
// default target).
func (c *Client) Profile(ctx context.Context, projectID int, target string) (*v1.ProfileResponse, error) {
	q := url.Values{}
	if target != "" {
		q.Set("target", target)
	}
	var out v1.ProfileResponse
	if err := c.get(ctx, fmt.Sprintf("/projects/%d/profile", projectID), q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Deployment builds a source-library deployment ("cpp", "arduino",
// "wasm"). Use DeploymentEIM for the binary model format.
func (c *Client) Deployment(ctx context.Context, projectID int, kind string, quantized bool) (*v1.DeploymentResponse, error) {
	q := url.Values{}
	if kind != "" {
		q.Set("type", kind)
	}
	if quantized {
		q.Set("quantized", "true")
	}
	var out v1.DeploymentResponse
	if err := c.get(ctx, fmt.Sprintf("/projects/%d/deployment", projectID), q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeploymentEIM downloads the binary EIM model artifact.
func (c *Client) DeploymentEIM(ctx context.Context, projectID int) ([]byte, error) {
	q := url.Values{}
	q.Set("type", "eim")
	return c.doBytes(ctx, http.MethodGet, fmt.Sprintf("/projects/%d/deployment", projectID), q, nil, "")
}

// --- Versioning ---

// Snapshot captures a project version.
func (c *Client) Snapshot(ctx context.Context, projectID int, note string) (*v1.SnapshotResponse, error) {
	var out v1.SnapshotResponse
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/versions", projectID), v1.SnapshotRequest{Note: note}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Versions lists a project's snapshots.
func (c *Client) Versions(ctx context.Context, projectID int, page Page) (*v1.VersionsResponse, error) {
	var out v1.VersionsResponse
	if err := c.get(ctx, fmt.Sprintf("/projects/%d/versions", projectID), page.query(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}
