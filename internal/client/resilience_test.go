package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer answers every request with the configured status until
// healed, then 200 with an empty JSON object.
type flakyServer struct {
	status atomic.Int64
	hits   atomic.Int64
}

func newFlakyServer(t *testing.T, status int) (*flakyServer, *Client, func(...Option) *Client) {
	t.Helper()
	f := &flakyServer{}
	f.status.Store(int64(status))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		if st := int(f.status.Load()); st != http.StatusOK {
			http.Error(w, `{"success":false}`, st)
			return
		}
		w.Write([]byte(`{"success":true}`))
	}))
	t.Cleanup(srv.Close)
	mk := func(opts ...Option) *Client { return New(srv.URL, opts...) }
	return f, mk(), mk
}

func TestClientCircuitBreakerOpensOn5xx(t *testing.T) {
	ctx := context.Background()
	f, _, mk := newFlakyServer(t, http.StatusInternalServerError)
	c := mk(WithRetries(0), WithCircuitBreaker(3, time.Hour))

	// Three consecutive hard failures trip the breaker...
	for i := 0; i < 3; i++ {
		if _, err := c.Devices(ctx); err == nil {
			t.Fatal("expected 500 error")
		}
	}
	hits := f.hits.Load()
	// ...after which calls fail fast without touching the network.
	_, err := c.Devices(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if f.hits.Load() != hits {
		t.Fatal("open breaker still issued a request")
	}
}

func TestClientCircuitBreakerRecoversViaProbe(t *testing.T) {
	ctx := context.Background()
	f, _, mk := newFlakyServer(t, http.StatusInternalServerError)
	c := mk(WithRetries(0), WithCircuitBreaker(2, 20*time.Millisecond))

	for i := 0; i < 2; i++ {
		c.Devices(ctx)
	}
	if _, err := c.Devices(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not open: %v", err)
	}

	// Server heals; after the cooldown one probe goes through, succeeds,
	// and the breaker closes for everyone.
	f.status.Store(http.StatusOK)
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Devices(ctx); err != nil {
		t.Fatalf("probe after cooldown: %v", err)
	}
	if _, err := c.Devices(ctx); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

func TestClientRateLimitDoesNotTripBreaker(t *testing.T) {
	ctx := context.Background()
	_, _, mk := newFlakyServer(t, http.StatusTooManyRequests)
	c := mk(WithRetries(0), WithCircuitBreaker(2, time.Hour))

	// 429 is the server coping, not the server down: any number of them
	// must leave the breaker closed.
	for i := 0; i < 10; i++ {
		if _, err := c.Devices(ctx); errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker opened on rate limiting after %d calls", i)
		}
	}
}

func TestClientRetryBudgetBoundsRetries(t *testing.T) {
	ctx := context.Background()
	f, _, mk := newFlakyServer(t, http.StatusServiceUnavailable)
	// Each GET would retry 3 times; a budget of 2 allows only two
	// retries in total before hard failures stop being amplified.
	c := mk(WithRetries(3), WithRetryBudget(2))

	if _, err := c.Devices(ctx); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := c.Devices(ctx); err == nil {
		t.Fatal("expected failure")
	}
	// 2 calls × (1 attempt + retries) with only 2 retry tokens between
	// them: 4 requests total instead of 8.
	if got := f.hits.Load(); got != 4 {
		t.Fatalf("server saw %d requests, want 4 (budget-capped)", got)
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	if d := RetryDelay(0, &APIError{RetryAfter: 3 * time.Second}); d != 3*time.Second {
		t.Fatalf("Retry-After 3s: got %s", d)
	}
	// A misconfigured header is capped so the client cannot be stalled.
	if d := RetryDelay(0, &APIError{RetryAfter: time.Hour}); d != 5*time.Second {
		t.Fatalf("capped Retry-After: got %s", d)
	}
	// Without a server hint the shared jittered schedule applies.
	d := RetryDelay(0, nil)
	if d < 80*time.Millisecond || d > 120*time.Millisecond {
		t.Fatalf("attempt 0 delay %s outside jittered 100ms band", d)
	}
	if d := RetryDelay(10, &APIError{}); d > 2200*time.Millisecond {
		t.Fatalf("delay %s above jittered cap", d)
	}
}
