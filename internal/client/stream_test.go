package client

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/jobs"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/project"
)

// newStreamStudio boots the platform with one project that already has
// a (randomly initialized) trained impulse, skipping the training job.
func newStreamStudio(t *testing.T) (*Client, int) {
	t.Helper()
	reg := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 2, ScaleInterval: 10 * time.Millisecond})
	t.Cleanup(sched.Shutdown)
	srv := httptest.NewServer(api.NewServer(reg, sched).Handler())
	t.Cleanup(srv.Close)
	c := New(srv.URL)
	ctx := context.Background()
	user, err := c.CreateUser(ctx, "streamer")
	if err != nil {
		t.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "live")
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.GetProject(proj.ID)
	if err != nil {
		t.Fatal(err)
	}

	imp := core.New("client-stream-test")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 250, StrideMS: 125, FrequencyHz: 4000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = []string{"high", "low"}
	shape, err := imp.FeatureShape()
	if err != nil {
		t.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.InitWeights(model, 3); err != nil {
		t.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	p.SetImpulse(imp)
	return c, proj.ID
}

func TestClientStreamSession(t *testing.T) {
	ctx := context.Background()
	c, projectID := newStreamStudio(t)

	sess, err := c.OpenStream(ctx, projectID, v1.StreamOpenRequest{Threshold: 0.4, Smooth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID() == "" || sess.Info.WindowSamples != 1000 || sess.Info.StrideSamples != 500 {
		t.Fatalf("session info %+v", sess.Info)
	}

	// Tail events concurrently while pushing; the feed ends with the
	// close below.
	type tailResult struct {
		events []v1.StreamEvent
		err    error
	}
	done := make(chan tailResult, 1)
	go func() {
		var events []v1.StreamEvent
		err := sess.Events(ctx, 0, func(e v1.StreamEvent) error {
			events = append(events, e)
			return nil
		})
		done <- tailResult{events, err}
	}()

	samples := make([]float32, 2000)
	for i := range samples {
		samples[i] = 0.5 * float32(math.Sin(2*math.Pi*700*float64(i)/4000))
	}
	// Push in uneven chunks; windows land at frames 0, 500, 1000.
	for _, chunk := range [][]float32{samples[:900], samples[900:1300], samples[1300:]} {
		if _, err := sess.Push(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}

	closed, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Stats.FramesIn != 2000 || closed.Stats.Windows != 3 {
		t.Fatalf("close stats %+v", closed.Stats)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	var results int
	for i, ev := range res.events {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d seq %d", i, ev.Seq)
		}
		if ev.Type == "result" {
			results++
		}
	}
	if results != 3 {
		t.Fatalf("%d results, want 3 (%+v)", results, res.events)
	}
	if last := res.events[len(res.events)-1]; !last.Terminal() {
		t.Fatalf("feed did not end terminally: %+v", last)
	}

	// The closed session's feed replays from any cursor (reconnect-style
	// resume against the retained log).
	var replay []v1.StreamEvent
	if err := sess.Events(ctx, 2, func(e v1.StreamEvent) error {
		replay = append(replay, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(res.events)-2 || replay[0].Seq != 3 {
		t.Fatalf("replay after seq 2: %d events, first %+v", len(replay), replay[0])
	}

	// Pushing after close surfaces the typed conflict error.
	var apiErr *APIError
	if _, err := sess.Push(ctx, samples[:500]); !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("push after close: %v", err)
	}
}

func TestClientOpenStreamUntrained(t *testing.T) {
	ctx := context.Background()
	c, projectID := newStreamStudio(t)
	bare, err := c.CreateProject(ctx, "untrained")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.OpenStream(ctx, bare.ID, v1.StreamOpenRequest{}); !errors.As(err, &apiErr) || apiErr.Code != v1.CodeBadRequest {
		t.Fatalf("open on untrained project: %v", err)
	}
	_ = projectID
}
