package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
)

// feedEvent is satisfied by every NDJSON feed DTO (job events, stream
// session events): the consumer needs to recognize the terminal line.
type feedEvent interface {
	Terminal() bool
}

// streamFeed consumes a resumable NDJSON event feed at path, invoking fn
// for every event after fromSeq in order, without gaps or duplicates.
// Dropped connections resume transparently via the Last-Event-Id header;
// seqOf extracts each event's cursor. It returns nil once the terminal
// event has been delivered, fn's error if fn fails, or the
// transport/API error once the no-progress resume budget is exhausted.
func streamFeed[T feedEvent](ctx context.Context, c *Client, path string, fromSeq int64, seqOf func(T) int64, fn func(T) error) error {
	last := fromSeq
	failures := 0
	for {
		before := last
		terminal, err := feedOnce(ctx, c, path, &last, seqOf, fn)
		switch {
		case terminal:
			return nil
		case err != nil && ctx.Err() != nil:
			return ctx.Err()
		default:
			// err != nil: transport/API failure. err == nil: clean EOF
			// without a terminal event (the server-side subscriber was
			// recycled). Both resume from the last delivered seq, with a
			// bounded budget for attempts that make no progress.
			var stop *callbackError
			if errors.As(err, &stop) {
				return stop.err
			}
			// Permanent API failures (404, 401, ...) fail fast, like the
			// request path's retryable() gate; only rate limiting and
			// upstream unavailability are worth resuming through.
			var apiErr *APIError
			if errors.As(err, &apiErr) && !retryable(http.MethodGet, apiErr.Status) {
				return err
			}
			if last > before {
				failures = 0
				continue
			}
			failures++
			if failures > streamMaxResumes {
				if err == nil {
					err = fmt.Errorf("client: event feed %s kept ending without progress", path)
				}
				return err
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(RetryDelay(failures, apiErr)):
			}
		}
	}
}

// feedOnce opens one streaming connection and pumps events until the
// stream ends, advancing *last past every delivered event.
func feedOnce[T feedEvent](ctx context.Context, c *Client, path string, last *int64, seqOf func(T) int64, fn func(T) error) (terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+v1.Prefix+path, nil)
	if err != nil {
		return false, err
	}
	if c.apiKey != "" {
		req.Header.Set("x-api-key", c.apiKey)
	}
	req.Header.Set("Last-Event-Id", strconv.FormatInt(*last, 10))
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return false, parseAPIError(resp.StatusCode, resp.Header, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev T
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("client: bad event line: %w", err)
		}
		if seqOf(ev) <= *last {
			continue // duplicate from an overlapping resume
		}
		*last = seqOf(ev)
		if err := fn(ev); err != nil {
			return false, &callbackError{err: err}
		}
		if ev.Terminal() {
			return true, nil
		}
	}
	return false, sc.Err()
}

// --- Streaming inference sessions ---

// StreamSession is a live inference session opened with OpenStream. Info
// carries the session geometry: push Info.Axes-interleaved float32
// samples at Info.Rate Hz; results arrive every Info.StrideSamples
// frames over windows of Info.WindowSamples.
type StreamSession struct {
	c         *Client
	projectID int
	// Info is the server's admission response.
	Info v1.StreamOpenResponse
}

// OpenStream opens a live inference session against the project's
// trained impulse (POST /api/v1/projects/{id}/stream).
func (c *Client) OpenStream(ctx context.Context, projectID int, req v1.StreamOpenRequest) (*StreamSession, error) {
	var out v1.StreamOpenResponse
	if err := c.postJSON(ctx, fmt.Sprintf("/projects/%d/stream", projectID), req, &out); err != nil {
		return nil, err
	}
	return &StreamSession{c: c, projectID: projectID, Info: out}, nil
}

// ID returns the server-assigned session identifier.
func (s *StreamSession) ID() string { return s.Info.SessionID }

// Push appends one batch of samples. Backpressure (HTTP 429) is retried
// with the server's Retry-After by the client's standard retry
// machinery; len(samples) must be a multiple of Info.Axes.
func (s *StreamSession) Push(ctx context.Context, samples []float32) (*v1.StreamPushResponse, error) {
	var out v1.StreamPushResponse
	path := fmt.Sprintf("/projects/%d/stream/%s/frames", s.projectID, url.PathEscape(s.Info.SessionID))
	if err := s.c.postJSON(ctx, path, v1.StreamPushRequest{Samples: samples}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events tails the session's event feed, invoking fn for every event
// after fromSeq in order — rolling results, debounced detections and
// state transitions — resuming dropped connections transparently. It
// returns nil once the session's terminal event has been delivered.
func (s *StreamSession) Events(ctx context.Context, fromSeq int64, fn func(v1.StreamEvent) error) error {
	path := fmt.Sprintf("/projects/%d/stream/%s/events", s.projectID, url.PathEscape(s.Info.SessionID))
	return streamFeed(ctx, s.c, path, fromSeq, func(e v1.StreamEvent) int64 { return e.Seq }, fn)
}

// Close ends the session (DELETE), waits server-side for queued frames
// to flush, and returns the final session stats.
func (s *StreamSession) Close(ctx context.Context) (*v1.StreamCloseResponse, error) {
	var out v1.StreamCloseResponse
	path := fmt.Sprintf("/projects/%d/stream/%s", s.projectID, url.PathEscape(s.Info.SessionID))
	if err := s.c.do(ctx, http.MethodDelete, path, nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}
