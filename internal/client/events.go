package client

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
)

// CancelJob requests cooperative cancellation of a job
// (DELETE /api/v1/jobs/{job}). Cancelled is false in the response when
// the job had already reached a terminal state.
func (c *Client) CancelJob(ctx context.Context, jobID string) (*v1.CancelJobResponse, error) {
	var out v1.CancelJobResponse
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(jobID), nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobEvents long-polls the job's event log for events after fromSeq
// (mode=poll), waiting up to timeout server-side for the first one
// (0 = server default). Use StreamJobEvents for the chunked live feed;
// this is the fallback for environments that buffer streamed responses.
func (c *Client) JobEvents(ctx context.Context, jobID string, fromSeq int64, timeout time.Duration) (*v1.JobEventsResponse, error) {
	q := url.Values{}
	q.Set("mode", "poll")
	q.Set("from", strconv.FormatInt(fromSeq, 10))
	if timeout > 0 {
		q.Set("timeout_ms", strconv.FormatInt(int64(timeout/time.Millisecond), 10))
	}
	var out v1.JobEventsResponse
	if err := c.get(ctx, "/jobs/"+url.PathEscape(jobID)+"/events", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// streamMaxResumes bounds consecutive no-progress reconnect attempts of
// StreamJobEvents before it gives up.
const streamMaxResumes = 3

// StreamJobEvents consumes the job's live event feed
// (GET /api/v1/jobs/{job}/events, newline-delimited JSON), invoking fn
// for every event after fromSeq in order, without gaps or duplicates.
// Dropped connections resume transparently via the Last-Event-Id
// header. It returns nil once the terminal state event has been
// delivered, fn's error if fn fails, or the transport/API error after
// the resume budget is exhausted. Cancel ctx to stop early.
func (c *Client) StreamJobEvents(ctx context.Context, jobID string, fromSeq int64, fn func(v1.JobEvent) error) error {
	path := "/jobs/" + url.PathEscape(jobID) + "/events"
	return streamFeed(ctx, c, path, fromSeq, func(e v1.JobEvent) int64 { return e.Seq }, fn)
}

// callbackError wraps an error returned by the caller's fn so the
// resume loop can distinguish it from transport failures.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
