package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	v1 "edgepulse/internal/api/v1"
)

// CancelJob requests cooperative cancellation of a job
// (DELETE /api/v1/jobs/{job}). Cancelled is false in the response when
// the job had already reached a terminal state.
func (c *Client) CancelJob(ctx context.Context, jobID string) (*v1.CancelJobResponse, error) {
	var out v1.CancelJobResponse
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+url.PathEscape(jobID), nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobEvents long-polls the job's event log for events after fromSeq
// (mode=poll), waiting up to timeout server-side for the first one
// (0 = server default). Use StreamJobEvents for the chunked live feed;
// this is the fallback for environments that buffer streamed responses.
func (c *Client) JobEvents(ctx context.Context, jobID string, fromSeq int64, timeout time.Duration) (*v1.JobEventsResponse, error) {
	q := url.Values{}
	q.Set("mode", "poll")
	q.Set("from", strconv.FormatInt(fromSeq, 10))
	if timeout > 0 {
		q.Set("timeout_ms", strconv.FormatInt(int64(timeout/time.Millisecond), 10))
	}
	var out v1.JobEventsResponse
	if err := c.get(ctx, "/jobs/"+url.PathEscape(jobID)+"/events", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// streamMaxResumes bounds consecutive no-progress reconnect attempts of
// StreamJobEvents before it gives up.
const streamMaxResumes = 3

// StreamJobEvents consumes the job's live event feed
// (GET /api/v1/jobs/{job}/events, newline-delimited JSON), invoking fn
// for every event after fromSeq in order, without gaps or duplicates.
// Dropped connections resume transparently via the Last-Event-Id
// header. It returns nil once the terminal state event has been
// delivered, fn's error if fn fails, or the transport/API error after
// the resume budget is exhausted. Cancel ctx to stop early.
func (c *Client) StreamJobEvents(ctx context.Context, jobID string, fromSeq int64, fn func(v1.JobEvent) error) error {
	last := fromSeq
	failures := 0
	for {
		before := last
		terminal, err := c.streamOnce(ctx, jobID, &last, fn)
		switch {
		case terminal:
			return nil
		case err != nil && ctx.Err() != nil:
			return ctx.Err()
		default:
			// err != nil: transport/API failure. err == nil: clean EOF
			// without a terminal event (the server-side subscriber was
			// recycled). Both resume from the last delivered seq, with
			// a bounded budget for attempts that make no progress.
			var stop *callbackError
			if errors.As(err, &stop) {
				return stop.err
			}
			// Permanent API failures (404, 401, ...) fail fast, like
			// the request path's retryable() gate; only rate limiting
			// and upstream unavailability are worth resuming through.
			var apiErr *APIError
			if errors.As(err, &apiErr) && !retryable(http.MethodGet, apiErr.Status) {
				return err
			}
			if last > before {
				failures = 0
				continue
			}
			failures++
			if failures > streamMaxResumes {
				if err == nil {
					err = fmt.Errorf("client: event stream for %s kept ending without progress", jobID)
				}
				return err
			}
			wait := backoff(failures)
			// Honor the server's Retry-After suggestion when it gave one.
			if apiErr != nil && apiErr.RetryAfter > 0 && apiErr.RetryAfter < 5*time.Second {
				wait = apiErr.RetryAfter
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		}
	}
}

// callbackError wraps an error returned by the caller's fn so the
// resume loop can distinguish it from transport failures.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

// streamOnce opens one streaming connection and pumps events until the
// stream ends. It advances *last past every delivered event.
func (c *Client) streamOnce(ctx context.Context, jobID string, last *int64, fn func(v1.JobEvent) error) (terminal bool, err error) {
	u := c.baseURL + v1.Prefix + "/jobs/" + url.PathEscape(jobID) + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	if c.apiKey != "" {
		req.Header.Set("x-api-key", c.apiKey)
	}
	req.Header.Set("Last-Event-Id", strconv.FormatInt(*last, 10))
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return false, parseAPIError(resp.StatusCode, resp.Header, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev v1.JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("client: bad event line: %w", err)
		}
		if ev.Seq <= *last {
			continue // duplicate from an overlapping resume
		}
		*last = ev.Seq
		if err := fn(ev); err != nil {
			return false, &callbackError{err: err}
		}
		if ev.Terminal() {
			return true, nil
		}
	}
	return false, sc.Err()
}
