package firmware

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/ingest"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

// toneDevice simulates a microphone hearing a constant 440 Hz tone.
func toneDevice() *Device {
	return &Device{
		Name:    "aa:bb:cc:dd:ee:ff",
		Type:    "NANO33BLE",
		Sensors: []ingest.Sensor{{Name: "audio", Units: "wav"}},
		RateHz:  8000,
		HMACKey: "fleet-key",
		Sample: func(n int) [][]float64 {
			rows := make([][]float64, n)
			for i := range rows {
				rows[i] = []float64{0.5 * math.Sin(2*math.Pi*440*float64(i)/8000)}
			}
			return rows
		},
	}
}

func TestATLiveness(t *testing.T) {
	d := toneDevice()
	out, err := d.Execute("AT")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "OK" {
		t.Fatalf("AT -> %q", out)
	}
}

func TestATInfo(t *testing.T) {
	d := toneDevice()
	out, err := d.Execute("AT+INFO?")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Device: aa:bb:cc:dd:ee:ff", "Type: NANO33BLE", "Firmware:", "Sensor: audio", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("info missing %q:\n%s", want, out)
		}
	}
}

func TestATSampleProducesVerifiableDocument(t *testing.T) {
	d := toneDevice()
	out, err := d.Execute("AT+SAMPLE=100")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[len(lines)-1] != "OK" {
		t.Fatalf("no OK: %q", out)
	}
	doc := strings.Join(lines[:len(lines)-1], "\n")
	// The emitted document verifies against the fleet key and carries the
	// sampled tone.
	p, err := ingest.Verify([]byte(doc), "fleet-key")
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(p.Values) != 800 { // 100ms at 8kHz
		t.Fatalf("%d values", len(p.Values))
	}
	if p.DeviceName != "aa:bb:cc:dd:ee:ff" {
		t.Error("device name lost")
	}
	// Tampered key fails.
	if _, err := ingest.Verify([]byte(doc), "other-key"); err == nil {
		t.Error("verified with wrong key")
	}
}

func TestATErrors(t *testing.T) {
	d := toneDevice()
	for _, cmd := range []string{"AT+SAMPLE=abc", "AT+SAMPLE=-5", "AT+WARP", "AT+RUNIMPULSECONT=x"} {
		out, err := d.Execute(cmd)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "ERROR") {
			t.Errorf("%s -> %q, want ERROR", cmd, out)
		}
	}
	// RUNIMPULSE without a deployed impulse.
	out, _ := d.Execute("AT+RUNIMPULSE")
	if !strings.Contains(out, "ERROR: no impulse deployed") {
		t.Errorf("runimpulse: %q", out)
	}
}

func TestATRunImpulse(t *testing.T) {
	// Deploy a trained impulse to the simulated firmware.
	ds, err := synth.KWSDataset(2, 12, 8000, 0.5, 0.03, 7)
	if err != nil {
		t.Fatal(err)
	}
	imp := core.New("fw-kws")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, _ := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, _ := imp.FeatureShape()
	model, _ := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	nn.InitWeights(model, 8)
	imp.AttachClassifier(model)
	if _, err := imp.Train(ds, trainer.Config{Epochs: 6, LearningRate: 0.005, Seed: 9}); err != nil {
		t.Fatal(err)
	}

	// The device "hears" a keyword.
	rng := rand.New(rand.NewSource(10))
	kw, _ := synth.Keyword(imp.Classes[len(imp.Classes)-1], 8000, 0.5, 0.02, rng)
	pos := 0
	d := toneDevice()
	d.Impulse = imp
	d.Sample = func(n int) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{float64(kw.Data[(pos+i)%len(kw.Data)])}
		}
		pos += n
		return rows
	}
	out, err := d.Execute("AT+RUNIMPULSE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Predictions") || !strings.Contains(out, "OK") {
		t.Fatalf("runimpulse output:\n%s", out)
	}
	for _, c := range imp.Classes {
		if !strings.Contains(out, c+":") {
			t.Errorf("missing class %s in output:\n%s", c, out)
		}
	}
	// Continuous mode emits n windows.
	out, err = d.Execute("AT+RUNIMPULSECONT=3")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "Predictions"); got != 3 {
		t.Fatalf("%d windows, want 3", got)
	}
}

func TestServeOverStream(t *testing.T) {
	d := toneDevice()
	in := strings.NewReader("AT\nAT+INFO?\nAT+SAMPLE=50\n")
	var outBuf strings.Builder
	rw := struct {
		*strings.Reader
		*strings.Builder
	}{in, &outBuf}
	if err := d.Serve(rw); err != nil {
		t.Fatal(err)
	}
	out := outBuf.String()
	if strings.Count(out, "OK") != 3 {
		t.Fatalf("expected 3 OKs:\n%s", out)
	}
}

func TestDeviceValidate(t *testing.T) {
	cases := []func(*Device){
		func(d *Device) { d.Name = "" },
		func(d *Device) { d.Sensors = nil },
		func(d *Device) { d.RateHz = 0 },
		func(d *Device) { d.Sample = nil },
	}
	for i, mutate := range cases {
		d := toneDevice()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: validated broken device", i)
		}
	}
}
