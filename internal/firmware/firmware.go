// Package firmware simulates the device side of the platform: the
// precompiled firmware binaries the paper describes (Sec. 4.6), which
// "present a simple set of AT commands for usage over a serial port".
// A Device wraps a sensor source and, optionally, a deployed impulse; its
// Serve loop speaks the AT protocol over any io.ReadWriter (a serial
// port in production, a pipe in tests), producing HMAC-signed acquisition
// documents for ingestion and running on-device inference.
//
// Supported commands:
//
//	AT                    liveness check -> OK
//	AT+INFO?              device name, type, sensors, firmware version
//	AT+SAMPLE=<ms>        sample the sensor and print a signed JSON
//	                      acquisition document
//	AT+RUNIMPULSE         sample one window and classify it
//	AT+RUNIMPULSECONT=<n> classify n consecutive windows
package firmware

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/ingest"
)

// Version is the simulated firmware revision reported by AT+INFO?.
const Version = "edgepulse-fw-1.0.0"

// Sampler produces n time steps of sensor data (one row per step, one
// column per sensor axis).
type Sampler func(n int) [][]float64

// Device is one simulated board.
type Device struct {
	// Name is the device identifier (e.g. a MAC address).
	Name string
	// Type is the board type string (e.g. "NANO33BLE").
	Type string
	// Sensors describes the sampled channels.
	Sensors []ingest.Sensor
	// RateHz is the sampling frequency.
	RateHz int
	// HMACKey signs acquisition documents for ingestion.
	HMACKey string
	// Sample produces sensor data.
	Sample Sampler
	// Impulse, when set, enables AT+RUNIMPULSE (a deployed firmware).
	Impulse *core.Impulse
}

// Validate checks the device configuration.
func (d *Device) Validate() error {
	if d.Name == "" || d.Type == "" {
		return fmt.Errorf("firmware: device needs name and type")
	}
	if len(d.Sensors) == 0 {
		return fmt.Errorf("firmware: device has no sensors")
	}
	if d.RateHz <= 0 {
		return fmt.Errorf("firmware: invalid sample rate %d", d.RateHz)
	}
	if d.Sample == nil {
		return fmt.Errorf("firmware: device has no sampler")
	}
	return nil
}

// Serve processes AT commands line by line until EOF.
func (d *Device) Serve(rw io.ReadWriter) error {
	if err := d.Validate(); err != nil {
		return err
	}
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := d.execute(line, rw); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Execute runs a single AT command and returns its output (exported for
// in-process use).
func (d *Device) Execute(cmd string) (string, error) {
	var b strings.Builder
	if err := d.execute(strings.TrimSpace(cmd), &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (d *Device) execute(line string, w io.Writer) error {
	upper := strings.ToUpper(line)
	switch {
	case upper == "AT":
		fmt.Fprintln(w, "OK")
	case upper == "AT+INFO?":
		fmt.Fprintf(w, "Device: %s\nType: %s\nFirmware: %s\nRate: %d Hz\n", d.Name, d.Type, Version, d.RateHz)
		for _, s := range d.Sensors {
			fmt.Fprintf(w, "Sensor: %s (%s)\n", s.Name, s.Units)
		}
		if d.Impulse != nil {
			fmt.Fprintf(w, "Impulse: %s\n", d.Impulse.Describe())
		}
		fmt.Fprintln(w, "OK")
	case strings.HasPrefix(upper, "AT+SAMPLE="):
		ms, err := strconv.Atoi(line[len("AT+SAMPLE="):])
		if err != nil || ms <= 0 {
			fmt.Fprintln(w, "ERROR: bad sample length")
			return nil
		}
		doc, err := d.sampleDocument(ms)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			return nil
		}
		fmt.Fprintf(w, "%s\nOK\n", doc)
	case upper == "AT+RUNIMPULSE":
		return d.runImpulse(w, 1)
	case strings.HasPrefix(upper, "AT+RUNIMPULSECONT="):
		n, err := strconv.Atoi(line[len("AT+RUNIMPULSECONT="):])
		if err != nil || n <= 0 {
			fmt.Fprintln(w, "ERROR: bad window count")
			return nil
		}
		return d.runImpulse(w, n)
	default:
		fmt.Fprintln(w, "ERROR: unknown command")
	}
	return nil
}

// sampleDocument samples ms milliseconds and signs the acquisition doc.
func (d *Device) sampleDocument(ms int) ([]byte, error) {
	n := ms * d.RateHz / 1000
	if n <= 0 {
		return nil, fmt.Errorf("window too short at %d Hz", d.RateHz)
	}
	values := d.Sample(n)
	return ingest.SignJSON(ingest.Payload{
		DeviceName: d.Name,
		DeviceType: d.Type,
		IntervalMS: 1000 / float64(d.RateHz),
		Sensors:    d.Sensors,
		Values:     values,
	}, d.HMACKey, 0)
}

// runImpulse samples window(s) and classifies them on-device.
func (d *Device) runImpulse(w io.Writer, windows int) error {
	if d.Impulse == nil {
		fmt.Fprintln(w, "ERROR: no impulse deployed")
		return nil
	}
	winSamples := d.Impulse.Input.WindowSamples()
	axes := len(d.Sensors)
	for i := 0; i < windows; i++ {
		rows := d.Sample(winSamples)
		flat := make([]float32, 0, len(rows)*axes)
		for _, row := range rows {
			for a := 0; a < axes; a++ {
				if a < len(row) {
					flat = append(flat, float32(row[a]))
				} else {
					flat = append(flat, 0)
				}
			}
		}
		sig := dsp.Signal{Data: flat, Rate: d.RateHz, Axes: axes}
		res, err := d.Impulse.Classify(sig)
		if err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			return nil
		}
		fmt.Fprintf(w, "Predictions (window %d):\n", i)
		classes := make([]string, 0, len(res.Scores))
		for c := range res.Scores {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Fprintf(w, "    %s: %.5f\n", c, res.Scores[c])
		}
		if d.Impulse.Anomaly != nil {
			fmt.Fprintf(w, "    anomaly score: %.3f\n", res.AnomalyScore)
		}
	}
	fmt.Fprintln(w, "OK")
	return nil
}
