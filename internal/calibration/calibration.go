// Package calibration implements performance calibration (paper
// Sec. 4.4): post-processing tuning for impulses that detect events in
// streaming data. Given the raw per-window scores of a trained model over
// a stream with known ground-truth events, a genetic algorithm searches
// post-processing configurations (threshold, score averaging, detection
// suppression) and suggests operating points trading off false acceptance
// rate (FAR) against false rejection rate (FRR).
package calibration

import (
	"fmt"
	"math"

	"edgepulse/internal/ga"
	"edgepulse/internal/synth"
)

// PostProcessing is one detection configuration.
type PostProcessing struct {
	// Threshold on the smoothed score to declare a detection.
	Threshold float32
	// AveragingWindows is the moving-average length over window scores.
	AveragingWindows int
	// SuppressionWindows is the refractory period after a detection.
	SuppressionWindows int
}

// Outcome reports detection quality for one configuration.
type Outcome struct {
	// FalseAcceptsPerHour is the FAR normalized to stream hours.
	FalseAcceptsPerHour float64
	// FalseRejectionRate is the fraction of true events missed.
	FalseRejectionRate float64
	// Detections counts triggers (true + false).
	Detections int
}

// Stream bundles the classifier's raw output over a calibration stream.
type Stream struct {
	// Scores holds the target-class probability of each window.
	Scores []float32
	// WindowStarts holds the window start offsets in samples.
	WindowStarts []int
	// Rate is the stream sample rate in Hz.
	Rate int
	// TotalSamples is the stream length.
	TotalSamples int
	// Events are the ground-truth occurrences.
	Events []synth.Event
}

// Validate checks structural consistency.
func (s Stream) Validate() error {
	if len(s.Scores) == 0 || len(s.Scores) != len(s.WindowStarts) {
		return fmt.Errorf("calibration: %d scores vs %d window starts", len(s.Scores), len(s.WindowStarts))
	}
	if s.Rate <= 0 || s.TotalSamples <= 0 {
		return fmt.Errorf("calibration: missing rate or length")
	}
	return nil
}

// Apply runs the post-processing over the stream and scores it against
// ground truth. A detection is credited to an event when it fires inside
// the event span (with half-a-window tolerance after the end); each event
// counts at most once. Uncredited detections are false accepts.
func Apply(s Stream, pp PostProcessing) Outcome {
	if pp.AveragingWindows < 1 {
		pp.AveragingWindows = 1
	}
	if pp.SuppressionWindows < 0 {
		pp.SuppressionWindows = 0
	}
	tolerance := 0
	if len(s.WindowStarts) > 1 {
		tolerance = (s.WindowStarts[1] - s.WindowStarts[0]) * 2
	}
	hit := make([]bool, len(s.Events))
	var falseAccepts, detections int
	suppress := 0
	var window []float32
	for i, score := range s.Scores {
		window = append(window, score)
		if len(window) > pp.AveragingWindows {
			window = window[1:]
		}
		if suppress > 0 {
			suppress--
			continue
		}
		var sum float32
		for _, v := range window {
			sum += v
		}
		smoothed := sum / float32(len(window))
		if smoothed < pp.Threshold {
			continue
		}
		detections++
		suppress = pp.SuppressionWindows
		at := s.WindowStarts[i]
		matched := false
		for e, ev := range s.Events {
			if hit[e] {
				continue
			}
			if at >= ev.StartSample-tolerance && at <= ev.EndSample+tolerance {
				hit[e] = true
				matched = true
				break
			}
		}
		if !matched {
			falseAccepts++
		}
	}
	misses := 0
	for _, h := range hit {
		if !h {
			misses++
		}
	}
	hours := float64(s.TotalSamples) / float64(s.Rate) / 3600
	out := Outcome{Detections: detections}
	if hours > 0 {
		out.FalseAcceptsPerHour = float64(falseAccepts) / hours
	}
	if len(s.Events) > 0 {
		out.FalseRejectionRate = float64(misses) / float64(len(s.Events))
	}
	return out
}

// Suggestion is one calibrated operating point.
type Suggestion struct {
	Config  PostProcessing
	Outcome Outcome
}

// decode maps a genome to a post-processing configuration.
func decode(g ga.Genome) PostProcessing {
	return PostProcessing{
		Threshold:          float32(0.3 + 0.69*g[0]),
		AveragingWindows:   1 + int(g[1]*9.99),
		SuppressionWindows: int(g[2] * 20.99),
	}
}

// Calibrate searches post-processing space with a genetic algorithm at
// several FAR-vs-FRR weightings and returns the Pareto-optimal operating
// points (lowest-FAR first), mirroring the platform's performance
// calibration suggestions.
func Calibrate(s Stream, seed int64) ([]Suggestion, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// The FAR normalizer: one false accept per minute is terrible.
	const farScale = 60
	weights := []float64{0.15, 0.3, 0.5, 0.7, 0.85}
	var candidates []Suggestion
	for wi, w := range weights {
		problem := ga.Problem{
			Genes: 3,
			Fitness: func(g ga.Genome) float64 {
				out := Apply(s, decode(g))
				farNorm := out.FalseAcceptsPerHour / farScale
				if farNorm > 1 {
					farNorm = 1 + math.Log(farNorm)
				}
				return -(w*out.FalseRejectionRate + (1-w)*farNorm)
			},
		}
		res := ga.Optimize(problem, ga.Config{
			Population: 30, Generations: 15, Seed: seed + int64(wi),
		})
		// Keep the top few genomes per weighting.
		for i := 0; i < 3 && i < len(res.FinalPopulation); i++ {
			pp := decode(res.FinalPopulation[i])
			candidates = append(candidates, Suggestion{Config: pp, Outcome: Apply(s, pp)})
		}
	}
	// Pareto filtering over (FAR, FRR).
	points := make([][2]float64, len(candidates))
	for i, c := range candidates {
		points[i] = [2]float64{c.Outcome.FalseAcceptsPerHour, c.Outcome.FalseRejectionRate}
	}
	front := ga.ParetoFront(points)
	out := make([]Suggestion, 0, len(front))
	seen := map[[2]float64]bool{}
	for _, i := range front {
		key := points[i]
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, candidates[i])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("calibration: search produced no configurations")
	}
	return out, nil
}
