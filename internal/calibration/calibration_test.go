package calibration

import (
	"math/rand"
	"testing"

	"edgepulse/internal/synth"
)

// syntheticStream fabricates window scores for a stream: high scores
// inside events, low noise elsewhere, with a few spurious spikes.
func syntheticStream(seed int64) Stream {
	rng := rand.New(rand.NewSource(seed))
	rate := 8000
	totalSeconds := 120
	strideSamples := 2000 // 250 ms
	total := rate * totalSeconds
	var events []synth.Event
	for e := 0; e < 6; e++ {
		start := (e*20 + 5) * rate // every 20 s
		events = append(events, synth.Event{Label: "yes", StartSample: start, EndSample: start + rate})
	}
	var scores []float32
	var starts []int
	evIdx := func(at int) int {
		for i, ev := range events {
			if at >= ev.StartSample && at <= ev.EndSample {
				return i
			}
		}
		return -1
	}
	for at := 0; at+rate <= total; at += strideSamples {
		var s float32
		if evIdx(at) >= 0 {
			s = 0.85 + float32(rng.Float64()*0.14)
		} else {
			s = float32(rng.Float64() * 0.35)
			if rng.Float64() < 0.01 { // occasional spurious spike
				s = 0.9
			}
		}
		scores = append(scores, s)
		starts = append(starts, at)
	}
	return Stream{Scores: scores, WindowStarts: starts, Rate: rate, TotalSamples: total, Events: events}
}

func TestApplyPerfectDetector(t *testing.T) {
	s := syntheticStream(1)
	out := Apply(s, PostProcessing{Threshold: 0.8, AveragingWindows: 2, SuppressionWindows: 8})
	if out.FalseRejectionRate > 0.2 {
		t.Errorf("FRR %.2f too high for easy stream", out.FalseRejectionRate)
	}
	if out.FalseAcceptsPerHour > 40 {
		t.Errorf("FAR %.1f/h too high", out.FalseAcceptsPerHour)
	}
	if out.Detections == 0 {
		t.Error("no detections")
	}
}

func TestApplyThresholdTradeoff(t *testing.T) {
	s := syntheticStream(2)
	loose := Apply(s, PostProcessing{Threshold: 0.31, AveragingWindows: 1})
	strict := Apply(s, PostProcessing{Threshold: 0.99, AveragingWindows: 1})
	// Loose threshold: no rejections but many false accepts.
	if loose.FalseRejectionRate > strict.FalseRejectionRate {
		t.Errorf("loose FRR %.2f > strict FRR %.2f", loose.FalseRejectionRate, strict.FalseRejectionRate)
	}
	if loose.FalseAcceptsPerHour < strict.FalseAcceptsPerHour {
		t.Errorf("loose FAR %.1f < strict FAR %.1f", loose.FalseAcceptsPerHour, strict.FalseAcceptsPerHour)
	}
	// Strict threshold misses everything.
	if strict.FalseRejectionRate < 0.9 {
		t.Errorf("strict FRR %.2f, want ~1", strict.FalseRejectionRate)
	}
}

func TestAveragingSuppressesSpikes(t *testing.T) {
	s := syntheticStream(3)
	raw := Apply(s, PostProcessing{Threshold: 0.7, AveragingWindows: 1, SuppressionWindows: 4})
	smoothed := Apply(s, PostProcessing{Threshold: 0.7, AveragingWindows: 4, SuppressionWindows: 4})
	if smoothed.FalseAcceptsPerHour > raw.FalseAcceptsPerHour {
		t.Errorf("averaging increased FAR: %.1f > %.1f", smoothed.FalseAcceptsPerHour, raw.FalseAcceptsPerHour)
	}
}

func TestSuppressionLimitsDetections(t *testing.T) {
	s := syntheticStream(4)
	none := Apply(s, PostProcessing{Threshold: 0.5, AveragingWindows: 1, SuppressionWindows: 0})
	heavy := Apply(s, PostProcessing{Threshold: 0.5, AveragingWindows: 1, SuppressionWindows: 15})
	if heavy.Detections >= none.Detections {
		t.Errorf("suppression did not reduce detections: %d >= %d", heavy.Detections, none.Detections)
	}
}

func TestCalibrateParetoFront(t *testing.T) {
	s := syntheticStream(5)
	suggestions, err := Calibrate(s, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	// Pareto front: sorted by FAR ascending, FRR must be non-increasing.
	for i := 1; i < len(suggestions); i++ {
		if suggestions[i].Outcome.FalseAcceptsPerHour < suggestions[i-1].Outcome.FalseAcceptsPerHour {
			t.Fatal("suggestions not sorted by FAR")
		}
		if suggestions[i].Outcome.FalseRejectionRate > suggestions[i-1].Outcome.FalseRejectionRate+1e-9 {
			t.Fatal("pareto violation: higher FAR and higher FRR")
		}
	}
	// The best suggestion should be quite good on this easy stream.
	best := suggestions[len(suggestions)-1] // highest FAR end = lowest FRR
	if best.Outcome.FalseRejectionRate > 0.35 {
		t.Errorf("best FRR %.2f", best.Outcome.FalseRejectionRate)
	}
}

func TestStreamValidation(t *testing.T) {
	if err := (Stream{}).Validate(); err == nil {
		t.Error("accepted empty stream")
	}
	s := syntheticStream(7)
	s.WindowStarts = s.WindowStarts[:1]
	if err := s.Validate(); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := Calibrate(Stream{}, 1); err == nil {
		t.Error("calibrated empty stream")
	}
}

func TestApplyDefaultsNormalized(t *testing.T) {
	s := syntheticStream(8)
	// Zero/negative settings are clamped, not crashed.
	out := Apply(s, PostProcessing{Threshold: 0.5, AveragingWindows: 0, SuppressionWindows: -3})
	if out.Detections == 0 {
		t.Error("clamped config produced nothing")
	}
}
