// Package deploy packages a designed impulse for its deployment targets
// (paper Sec. 4.6): a standalone C++ library (EON-compiled model plus DSP
// configuration), an Arduino library, a WebAssembly bundle, and the EIM
// format — a self-contained binary artifact that the eim package can
// execute behind a socket protocol, as on Linux targets.
package deploy

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"edgepulse/internal/core"
	"edgepulse/internal/eon"
	"edgepulse/internal/tflm"
)

// Artifact is one deployment bundle: a set of generated files.
type Artifact struct {
	// Kind identifies the target ("cpp", "arduino", "wasm").
	Kind string
	// Files maps relative paths to contents.
	Files map[string][]byte
}

// FileNames returns the artifact's paths in sorted order.
func (a Artifact) FileNames() []string {
	out := make([]string, 0, len(a.Files))
	for n := range a.Files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// modelFile picks the requested precision from the impulse.
func modelFile(imp *core.Impulse, quantized bool) (*tflm.ModelFile, error) {
	if quantized {
		if imp.QModel == nil {
			return nil, fmt.Errorf("deploy: impulse has no quantized model (run Quantize first)")
		}
		return tflm.ModelFileFromQuant(imp.QModel), nil
	}
	if imp.Model == nil {
		return nil, fmt.Errorf("deploy: impulse has no trained model")
	}
	return tflm.ModelFileFromFloat(imp.Model), nil
}

// dspHeader renders the DSP block graph configuration as a C header:
// per-block type/param defines plus the offset table locating each
// block's output inside the composite feature vector. Single-block
// impulses additionally keep the legacy unnumbered defines.
func dspHeader(imp *core.Impulse) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated DSP configuration for impulse %q. Do not edit.\n", imp.Name)
	b.WriteString("#ifndef EP_DSP_CONFIG_H\n#define EP_DSP_CONFIG_H\n\n")
	fmt.Fprintf(&b, "#define EP_DSP_BLOCK_COUNT %d\n", len(imp.DSP))
	layout, _ := imp.Layout()
	writeParams := func(prefix string, params map[string]float64) {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "#define %s%s %g\n", prefix, strings.ToUpper(k), params[k])
		}
	}
	for i, inst := range imp.DSP {
		fmt.Fprintf(&b, "\n#define EP_DSP_BLOCK_%d_TYPE \"%s\"\n", i, inst.Block.Name())
		fmt.Fprintf(&b, "#define EP_DSP_BLOCK_%d_NAME \"%s\"\n", i, inst.Name)
		if layout != nil {
			seg := layout.Segments[i]
			fmt.Fprintf(&b, "#define EP_DSP_BLOCK_%d_OFFSET %d\n", i, seg.Offset)
			fmt.Fprintf(&b, "#define EP_DSP_BLOCK_%d_SIZE %d\n", i, seg.Len)
		}
		if len(inst.Axes) > 0 {
			axes := make([]string, len(inst.Axes))
			for j, a := range inst.Axes {
				axes[j] = fmt.Sprint(a)
			}
			fmt.Fprintf(&b, "#define EP_DSP_BLOCK_%d_AXES {%s}\n", i, strings.Join(axes, ", "))
		}
		writeParams(fmt.Sprintf("EP_DSP_%d_", i), inst.Block.Params())
	}
	if len(imp.DSP) == 1 {
		fmt.Fprintf(&b, "\n#define EP_DSP_BLOCK \"%s\"\n", imp.DSP[0].Block.Name())
		writeParams("EP_DSP_", imp.DSP[0].Block.Params())
	}
	shape, _ := imp.FeatureShape()
	fmt.Fprintf(&b, "\n#define EP_FEATURE_COUNT %d\n", shape.Elems())
	fmt.Fprintf(&b, "\n#endif // EP_DSP_CONFIG_H\n")
	return []byte(b.String())
}

// classesHeader renders the label list as a C header.
func classesHeader(imp *core.Impulse) []byte {
	var b strings.Builder
	b.WriteString("// Generated label list. Do not edit.\n")
	fmt.Fprintf(&b, "#define EP_CLASS_COUNT %d\n", len(imp.Classes))
	b.WriteString("static const char *ep_classes[] = {")
	for i, c := range imp.Classes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", c)
	}
	b.WriteString("};\n")
	return []byte(b.String())
}

// CPPLibrary generates the standalone C++ inferencing library: the
// EON-compiled model, the DSP configuration, the label table and a
// run_classifier entry point.
func CPPLibrary(imp *core.Impulse, quantized bool) (Artifact, error) {
	if err := imp.Validate(); err != nil {
		return Artifact{}, err
	}
	mf, err := modelFile(imp, quantized)
	if err != nil {
		return Artifact{}, err
	}
	cpp, err := eon.EmitCPP(mf, sanitize(imp.Name))
	if err != nil {
		return Artifact{}, err
	}
	name := sanitize(imp.Name)
	files := map[string][]byte{
		"edgepulse/" + name + "_model.h":   []byte(cpp.Header),
		"edgepulse/" + name + "_model.cpp": []byte(cpp.Source),
		"edgepulse/dsp_config.h":           dspHeader(imp),
		"edgepulse/model_metadata.h":       classesHeader(imp),
		"edgepulse/run_classifier.h":       []byte(runClassifierHeader(name)),
	}
	return Artifact{Kind: "cpp", Files: files}, nil
}

func runClassifierHeader(name string) string {
	return fmt.Sprintf(`// Generated SDK entry point. Do not edit.
#ifndef EP_RUN_CLASSIFIER_H
#define EP_RUN_CLASSIFIER_H

#include "dsp_config.h"
#include "%s_model.h"

typedef struct {
    float value[EP_CLASS_COUNT];
    float anomaly;
    int dsp_us;
    int classification_us;
} ep_result_t;

int run_classifier(const float *raw, int raw_len, ep_result_t *result);

#endif // EP_RUN_CLASSIFIER_H
`, name)
}

// ArduinoLibrary wraps the C++ library in an Arduino package layout with
// library.properties and an example sketch.
func ArduinoLibrary(imp *core.Impulse, quantized bool) (Artifact, error) {
	cpp, err := CPPLibrary(imp, quantized)
	if err != nil {
		return Artifact{}, err
	}
	name := sanitize(imp.Name)
	files := map[string][]byte{}
	for p, c := range cpp.Files {
		files["src/"+p] = c
	}
	files["library.properties"] = []byte(fmt.Sprintf(
		"name=%s_inferencing\nversion=1.0.0\nauthor=edgepulse\nsentence=Edge inferencing library for %s\nparagraph=Generated by the edgepulse platform.\ncategory=Data Processing\narchitectures=*\n",
		name, imp.Name))
	files["examples/static_buffer/static_buffer.ino"] = []byte(fmt.Sprintf(`// Minimal example: classify a static feature buffer.
#include <%s_inferencing.h>

static const float features[EP_FEATURE_COUNT] = {0};

void setup() {
    Serial.begin(115200);
}

void loop() {
    ep_result_t result;
    run_classifier(features, EP_FEATURE_COUNT, &result);
    for (int i = 0; i < EP_CLASS_COUNT; i++) {
        Serial.print(ep_classes[i]);
        Serial.print(": ");
        Serial.println(result.value[i]);
    }
    delay(1000);
}
`, name))
	return Artifact{Kind: "arduino", Files: files}, nil
}

// WASM generates a WebAssembly deployment bundle: the serialized model
// plus a JavaScript loader exposing classify().
func WASM(imp *core.Impulse, quantized bool) (Artifact, error) {
	if err := imp.Validate(); err != nil {
		return Artifact{}, err
	}
	mf, err := modelFile(imp, quantized)
	if err != nil {
		return Artifact{}, err
	}
	blob, err := tflm.Marshal(mf)
	if err != nil {
		return Artifact{}, err
	}
	classes, _ := json.Marshal(imp.Classes)
	loader := fmt.Sprintf(`// Generated WebAssembly loader for impulse %q.
// The model binary (edgepulse_model.eptm) is instantiated by the runtime;
// classify(features) returns {label, scores}.
export const classes = %s;
export async function loadModel(fetchImpl) {
  const buf = await (await fetchImpl("edgepulse_model.eptm")).arrayBuffer();
  return { buf, classes };
}
`, imp.Name, classes)
	return Artifact{Kind: "wasm", Files: map[string][]byte{
		"edgepulse_model.eptm": blob,
		"edgepulse.js":         []byte(loader),
	}}, nil
}

func sanitize(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "impulse"
	}
	return b.String()
}

// EIM is the executable model format for Linux-class targets: one binary
// blob containing the impulse design and its model(s), consumable by the
// eim package's runner.
const eimMagic = "EPIM"

// BuildEIM serializes the impulse (config + float model + optional int8
// model) into an EIM blob.
func BuildEIM(imp *core.Impulse) ([]byte, error) {
	if err := imp.Validate(); err != nil {
		return nil, err
	}
	if imp.Model == nil {
		return nil, fmt.Errorf("deploy: impulse has no trained model")
	}
	cfg, err := json.Marshal(imp.Config())
	if err != nil {
		return nil, err
	}
	floatBlob, err := tflm.Marshal(tflm.ModelFileFromFloat(imp.Model))
	if err != nil {
		return nil, err
	}
	var quantBlob []byte
	if imp.QModel != nil {
		quantBlob, err = tflm.Marshal(tflm.ModelFileFromQuant(imp.QModel))
		if err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	buf.WriteString(eimMagic)
	writeChunk(&buf, cfg)
	writeChunk(&buf, floatBlob)
	writeChunk(&buf, quantBlob)
	return buf.Bytes(), nil
}

func writeChunk(buf *bytes.Buffer, data []byte) {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(data)))
	buf.Write(l[:])
	buf.Write(data)
}

func readChunk(data []byte) ([]byte, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("deploy: truncated EIM chunk header")
	}
	n := binary.LittleEndian.Uint32(data)
	if uint32(len(data)-4) < n {
		return nil, nil, fmt.Errorf("deploy: EIM chunk length %d exceeds data", n)
	}
	return data[4 : 4+n], data[4+n:], nil
}

// ParseEIM reconstructs a runnable impulse from an EIM blob.
func ParseEIM(data []byte) (*core.Impulse, error) {
	if len(data) < 4 || string(data[:4]) != eimMagic {
		return nil, fmt.Errorf("deploy: not an EIM file")
	}
	rest := data[4:]
	cfgBytes, rest, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	floatBlob, rest, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	quantBlob, _, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	cfg, err := core.ParseConfig(cfgBytes)
	if err != nil {
		return nil, err
	}
	imp, err := core.FromConfig(cfg)
	if err != nil {
		return nil, err
	}
	mf, err := tflm.Unmarshal(floatBlob)
	if err != nil {
		return nil, err
	}
	if mf.Float == nil {
		return nil, fmt.Errorf("deploy: EIM float section holds no float model")
	}
	if err := imp.AttachClassifier(mf.Float); err != nil {
		return nil, err
	}
	if len(quantBlob) > 0 {
		qmf, err := tflm.Unmarshal(quantBlob)
		if err != nil {
			return nil, err
		}
		if qmf.Quant == nil {
			return nil, fmt.Errorf("deploy: EIM quant section holds no int8 model")
		}
		imp.QModel = qmf.Quant
	}
	return imp, nil
}
