package deploy

import (
	"math"
	"strings"
	"testing"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

// deployableImpulse returns a small trained + quantized impulse.
func deployableImpulse(t testing.TB) (*core.Impulse, *data.Dataset) {
	t.Helper()
	ds, err := synth.KWSDataset(2, 10, 8000, 0.5, 0.03, 1)
	if err != nil {
		t.Fatal(err)
	}
	imp := core.New("KWS Demo")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		t.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, _ := imp.FeatureShape()
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	if err != nil {
		t.Fatal(err)
	}
	nn.InitWeights(model, 2)
	if err := imp.AttachClassifier(model); err != nil {
		t.Fatal(err)
	}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 4, LearningRate: 0.005, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := imp.Quantize(ds); err != nil {
		t.Fatal(err)
	}
	return imp, ds
}

func TestCPPLibraryContents(t *testing.T) {
	imp, _ := deployableImpulse(t)
	art, err := CPPLibrary(imp, false)
	if err != nil {
		t.Fatal(err)
	}
	if art.Kind != "cpp" {
		t.Fatal("kind")
	}
	names := art.FileNames()
	want := []string{
		"edgepulse/dsp_config.h",
		"edgepulse/kws_demo_model.cpp",
		"edgepulse/kws_demo_model.h",
		"edgepulse/model_metadata.h",
		"edgepulse/run_classifier.h",
	}
	if len(names) != len(want) {
		t.Fatalf("files: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("file %d = %s, want %s", i, names[i], want[i])
		}
	}
	dspCfg := string(art.Files["edgepulse/dsp_config.h"])
	if !strings.Contains(dspCfg, "EP_DSP_BLOCK \"mfe\"") || !strings.Contains(dspCfg, "EP_DSP_NUM_FILTERS 16") {
		t.Errorf("dsp config:\n%s", dspCfg)
	}
	meta := string(art.Files["edgepulse/model_metadata.h"])
	if !strings.Contains(meta, "EP_CLASS_COUNT 2") {
		t.Errorf("metadata:\n%s", meta)
	}
	runner := string(art.Files["edgepulse/run_classifier.h"])
	if !strings.Contains(runner, "int run_classifier(") {
		t.Error("missing run_classifier declaration")
	}
}

func TestCPPLibraryQuantized(t *testing.T) {
	imp, _ := deployableImpulse(t)
	art, err := CPPLibrary(imp, true)
	if err != nil {
		t.Fatal(err)
	}
	src := string(art.Files["edgepulse/kws_demo_model.cpp"])
	if !strings.Contains(src, "int8_t") {
		t.Error("quantized source has no int8 arrays")
	}
	// Untrained/unquantized impulses are rejected.
	imp.QModel = nil
	if _, err := CPPLibrary(imp, true); err == nil {
		t.Error("accepted missing quantized model")
	}
}

func TestArduinoLibraryLayout(t *testing.T) {
	imp, _ := deployableImpulse(t)
	art, err := ArduinoLibrary(imp, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := art.Files["library.properties"]; !ok {
		t.Error("missing library.properties")
	}
	if _, ok := art.Files["examples/static_buffer/static_buffer.ino"]; !ok {
		t.Error("missing example sketch")
	}
	found := false
	for name := range art.Files {
		if strings.HasPrefix(name, "src/edgepulse/") {
			found = true
		}
	}
	if !found {
		t.Error("sources not nested under src/")
	}
	props := string(art.Files["library.properties"])
	if !strings.Contains(props, "name=kws_demo_inferencing") {
		t.Errorf("properties:\n%s", props)
	}
}

func TestWASMBundle(t *testing.T) {
	imp, _ := deployableImpulse(t)
	art, err := WASM(imp, false)
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := art.Files["edgepulse_model.eptm"]
	if !ok || len(blob) == 0 {
		t.Fatal("missing model blob")
	}
	js := string(art.Files["edgepulse.js"])
	if !strings.Contains(js, "export async function loadModel") {
		t.Error("loader missing export")
	}
}

func TestEIMRoundTrip(t *testing.T) {
	imp, ds := deployableImpulse(t)
	blob, err := BuildEIM(imp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseEIM(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != imp.Name || len(back.Classes) != 2 {
		t.Fatalf("reconstructed: %+v", back.Config())
	}
	if back.QModel == nil {
		t.Fatal("quantized model lost")
	}
	// The reconstructed impulse classifies identically.
	agree := 0
	var tests []*data.Sample
	for _, h := range ds.List(data.Testing) {
		s, err := ds.Get(h.ID)
		if err != nil {
			t.Fatal(err)
		}
		tests = append(tests, s)
	}
	for _, s := range tests {
		a, err := imp.Classify(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Classify(s.Signal)
		if err != nil {
			t.Fatal(err)
		}
		if a.Label == b.Label {
			agree++
		}
		for cl := range a.Scores {
			if math.Abs(float64(a.Scores[cl]-b.Scores[cl])) > 1e-5 {
				t.Fatalf("scores diverge for %s: %v vs %v", cl, a.Scores, b.Scores)
			}
		}
	}
	if agree != len(tests) {
		t.Fatalf("agreement %d/%d", agree, len(tests))
	}
}

func TestEIMWithoutQuantized(t *testing.T) {
	imp, _ := deployableImpulse(t)
	imp.QModel = nil
	blob, err := BuildEIM(imp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseEIM(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.QModel != nil {
		t.Fatal("phantom quantized model")
	}
}

func TestParseEIMGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XX"),
		[]byte("NOPE"),
		[]byte("EPIM"),
		[]byte("EPIM\xff\xff\xff\xff"),
		[]byte("EPIM\x02\x00\x00\x00{}"),
	}
	for i, c := range cases {
		if _, err := ParseEIM(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBuildEIMValidation(t *testing.T) {
	imp := core.New("untrained")
	if _, err := BuildEIM(imp); err == nil {
		t.Error("accepted unconfigured impulse")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"KWS Demo": "kws_demo",
		"a-b.c":    "a_b_c",
		"UPPER":    "upper",
		"":         "impulse",
		"123 go":   "123_go",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
