// Package edgepulse is a from-scratch Go reproduction of "Edge Impulse:
// An MLOps Platform for Tiny Machine Learning" (MLSys 2023): an
// end-to-end TinyML MLOps platform with signed data ingestion, DSP
// feature extraction, neural network training, int8 quantization, an
// EON-style model compiler, device latency/memory simulation, AutoML
// (EON Tuner), performance calibration, deployment packaging and a
// versioned REST API with a typed Go client — all in stdlib-only Go.
//
// Layout:
//
//   - internal/core       — the impulse (input → DSP → learn dataflow)
//   - internal/dsp, fft   — feature extraction blocks
//   - internal/nn, models, trainer — networks and training
//   - internal/quant, tflm, eon    — int8 quantization and the two engines
//   - internal/device, renode, profiler — on-device estimation
//   - internal/tuner, search, ga, calibration — AutoML and tuning
//   - internal/data, ingest, cbor, wav — the data plane; data serves
//     lazy, header-indexed datasets that stream signals on demand
//   - internal/store    — the durable segmented dataset storage engine
//     and crash-safe upload spool (byte-level spec in docs/STORAGE.md)
//   - internal/project, jobs, api — the MLOps service layer; api/v1
//     declares the typed DTO contract of the versioned REST surface
//   - internal/stream   — the live streaming inference plane: sessions,
//     ring buffers, rolling classification, debounced detections
//   - internal/client   — the first-class Go client for the v1 API,
//     used by cmd/ei-cli and cmd/ei-daemon (see docs/API.md)
//   - internal/resilience, faults — the daemon-wide resilience layer:
//     admission gate, deadline budgets, health/readiness, job
//     watchdog, shared retry primitives, and the build-tag-free
//     chaos fault-injection registry
//   - internal/deploy, eim — deployment artifacts and the EIM runner
//   - internal/bench, report — the paper's tables and figures
//   - internal/fleet, e2e — the verification plane: the macro load
//     harness (synthetic device fleets, SLO gates, committed FLEET_*
//     records; see docs/LOADTEST.md) and the end-to-end suite that
//     boots real platform instances and asserts the platform contract
//
// Entry points: cmd/ei-studio (REST server), cmd/ei-cli (client),
// cmd/ei-daemon (device bridge), cmd/ei-run (EIM runner), cmd/ei-bench
// (regenerate the paper's evaluation), cmd/ei-fleet (macro load
// harness), cmd/ei-ratchet (CI gate over the committed BENCH_*/FLEET_*
// series). See README.md for a quickstart and docs/ARCHITECTURE.md for
// the package map and data flow.
package edgepulse

// Version identifies this reproduction build.
const Version = "1.0.0"
