// Accuracy gates for the opt-in fast-math mode: enabling the polynomial
// transcendentals must not change what the pipeline predicts, only how
// fast it computes. The gates run the existing example workloads (KWS
// DS-CNN inference in float and int8, MFE/MFCC feature extraction) with
// fast-math on and off and bound the drift.
package edgepulse_test

import (
	"math"
	"math/rand"
	"testing"

	"edgepulse/internal/dsp"
	"edgepulse/internal/fastmath"
	"edgepulse/internal/tensor"
)

// TestFastMathModelAccuracyGate runs the KWS model across random inputs
// with fast-math toggled. Class probabilities must agree to ~1e-4 and
// the predicted class must be identical whenever the exact top-2 margin
// is above the noise floor.
func TestFastMathModelAccuracyGate(t *testing.T) {
	defer fastmath.SetEnabled(false)
	m, qm, _ := kwsModelAndQuant(t)
	rng := rand.New(rand.NewSource(11))
	const (
		trials   = 30
		probTol  = 1e-4
		tieFloor = 3 * probTol
	)
	for trial := 0; trial < trials; trial++ {
		in := tensor.NewF32(49, 10)
		for i := range in.Data {
			in.Data[i] = float32(rng.NormFloat64())
		}
		fastmath.SetEnabled(false)
		exactFloat := m.Forward(in)
		exactInt8 := qm.Forward(in)
		fastmath.SetEnabled(true)
		fastFloat := m.Forward(in)
		fastInt8 := qm.Forward(in)
		fastmath.SetEnabled(false)
		comparePredictions(t, "float", exactFloat, fastFloat, probTol, tieFloor)
		comparePredictions(t, "int8", exactInt8, fastInt8, probTol, tieFloor)
	}
}

// comparePredictions bounds the per-class probability drift and requires
// argmax agreement unless the exact distribution is within a tie margin.
func comparePredictions(t *testing.T, path string, exact, fast *tensor.F32, probTol, tieFloor float64) {
	t.Helper()
	argmax := func(p *tensor.F32) int {
		best := 0
		for i, v := range p.Data {
			if v > p.Data[best] {
				best = i
			}
		}
		return best
	}
	for i := range exact.Data {
		if d := math.Abs(float64(exact.Data[i] - fast.Data[i])); d > probTol {
			t.Fatalf("%s: class %d prob drift %.3g > %.3g (exact %v, fast %v)",
				path, i, d, probTol, exact.Data[i], fast.Data[i])
		}
	}
	ae, af := argmax(exact), argmax(fast)
	if ae != af {
		margin := float64(exact.Data[ae] - exact.Data[af])
		if margin > tieFloor {
			t.Fatalf("%s: predicted class flipped %d -> %d with exact margin %.3g",
				path, ae, af, margin)
		}
	}
}

// TestFastMathDSPAccuracyGate runs the MFE and MFCC front ends over a
// synthetic multi-tone signal with fast-math toggled and bounds the
// feature drift (the log-mel path goes through the gated log10).
func TestFastMathDSPAccuracyGate(t *testing.T) {
	defer fastmath.SetEnabled(false)
	rng := rand.New(rand.NewSource(5))
	sig := dsp.Signal{Data: make([]float32, 16000), Rate: 16000, Axes: 1}
	for i := range sig.Data {
		ts := float64(i) / 16000
		sig.Data[i] = float32(0.5*math.Sin(2*math.Pi*440*ts) +
			0.2*math.Sin(2*math.Pi*1830*ts) +
			0.05*rng.NormFloat64())
	}
	for _, name := range []string{"mfe", "mfcc"} {
		t.Run(name, func(t *testing.T) {
			var block dsp.Block
			var err error
			if name == "mfe" {
				block, err = dsp.NewMFE(nil)
			} else {
				block, err = dsp.NewMFCC(nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			fastmath.SetEnabled(false)
			exact, err := block.Extract(sig)
			if err != nil {
				t.Fatal(err)
			}
			fastmath.SetEnabled(true)
			fast, err := block.Extract(sig)
			fastmath.SetEnabled(false)
			if err != nil {
				t.Fatal(err)
			}
			if len(exact.Data) != len(fast.Data) {
				t.Fatalf("feature length changed: %d vs %d", len(exact.Data), len(fast.Data))
			}
			const tol = 1e-3 // features are log-energies, O(1..10)
			for i := range exact.Data {
				d := math.Abs(float64(exact.Data[i] - fast.Data[i]))
				if d > tol*math.Max(1, math.Abs(float64(exact.Data[i]))) {
					t.Fatalf("feature %d drift %.3g (exact %v, fast %v)", i, d, exact.Data[i], fast.Data[i])
				}
			}
		})
	}
}
