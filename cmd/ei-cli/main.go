// Command ei-cli is the uploader/automation client for an ei-studio
// server, mirroring the platform's CLI tooling (paper Sec. 4.1): it signs
// sensor data with the project's HMAC key and drives training jobs over
// the REST API.
//
// Usage:
//
//	ei-cli -server http://localhost:4800 bootstrap <username>
//	ei-cli -key KEY create-project <name>
//	ei-cli -key KEY upload -project 1 -label yes -hmac HMACKEY file.wav
//	ei-cli -key KEY train -project 1 -epochs 10
//	ei-cli -key KEY job -id job-1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"edgepulse/internal/ingest"
	"edgepulse/internal/wav"
)

func main() {
	server := flag.String("server", "http://localhost:4800", "studio server URL")
	key := flag.String("key", "", "API key")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cli := &client{server: *server, key: *key}
	var err error
	switch args[0] {
	case "bootstrap":
		err = cli.bootstrap(args[1:])
	case "create-project":
		err = cli.createProject(args[1:])
	case "upload":
		err = cli.upload(args[1:])
	case "train":
		err = cli.train(args[1:])
	case "job":
		err = cli.job(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ei-cli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ei-cli [-server URL] [-key KEY] <bootstrap|create-project|upload|train|job> ...")
	os.Exit(2)
}

type client struct {
	server string
	key    string
}

func (c *client) do(method, path string, body []byte, contentType string) (map[string]any, error) {
	req, err := http.NewRequest(method, c.server+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.key != "" {
		req.Header.Set("x-api-key", c.key)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("bad response (%d): %s", resp.StatusCode, raw)
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("%v", out["error"])
	}
	return out, nil
}

func (c *client) bootstrap(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bootstrap <username>")
	}
	body, _ := json.Marshal(map[string]string{"name": args[0]})
	out, err := c.do("POST", "/api/users", body, "application/json")
	if err != nil {
		return err
	}
	fmt.Printf("user %s created; API key: %s\n", out["id"], out["api_key"])
	return nil
}

func (c *client) createProject(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: create-project <name>")
	}
	body, _ := json.Marshal(map[string]string{"name": args[0]})
	out, err := c.do("POST", "/api/projects", body, "application/json")
	if err != nil {
		return err
	}
	fmt.Printf("project %v created; HMAC key: %s\n", out["id"], out["hmac_key"])
	return nil
}

func (c *client) upload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	label := fs.String("label", "", "sample label")
	hmacKey := fs.String("hmac", "", "project HMAC key (signs the payload)")
	fs.Parse(args)
	if *projectID == 0 || *label == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: upload -project N -label L -hmac KEY file.wav")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := filepath.Base(path)
	if strings.HasSuffix(path, ".wav") {
		// Decode locally and push as a signed acquisition document, the
		// same path a device daemon uses.
		audio, err := wav.Decode(f)
		if err != nil {
			return err
		}
		values := make([][]float64, len(audio.Samples)/audio.Channels)
		for i := range values {
			row := make([]float64, audio.Channels)
			for ch := 0; ch < audio.Channels; ch++ {
				row[ch] = float64(audio.Samples[i*audio.Channels+ch])
			}
			values[i] = row
		}
		sensors := make([]ingest.Sensor, audio.Channels)
		for ch := range sensors {
			sensors[ch] = ingest.Sensor{Name: fmt.Sprintf("audio%d", ch), Units: "wav"}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "ei-cli", DeviceType: "CLI_UPLOADER",
			IntervalMS: 1000 / float64(audio.Rate),
			Sensors:    sensors, Values: values,
		}, *hmacKey, 0)
		if err != nil {
			return err
		}
		out, err := c.do("POST", fmt.Sprintf("/api/projects/%d/data?label=%s&name=%s&format=acquisition",
			*projectID, *label, name), doc, "application/json")
		if err != nil {
			return err
		}
		fmt.Printf("uploaded %s as sample %v\n", name, out["sample_id"])
		return nil
	}
	// CSV and images pass through raw.
	format := "csv"
	if strings.HasSuffix(path, ".png") || strings.HasSuffix(path, ".jpg") || strings.HasSuffix(path, ".jpeg") {
		format = "image"
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	out, err := c.do("POST", fmt.Sprintf("/api/projects/%d/data?label=%s&name=%s&format=%s",
		*projectID, *label, name, format), raw, "application/octet-stream")
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %s as sample %v\n", name, out["sample_id"])
	return nil
}

func (c *client) train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	epochs := fs.Int("epochs", 10, "training epochs")
	lr := fs.Float64("lr", 0.005, "learning rate (0 = auto)")
	modelType := fs.String("model", "conv1d", "model type (conv1d, dscnn, mlp, cnn2d)")
	quantize := fs.Bool("quantize", true, "quantize to int8 after training")
	fs.Parse(args)
	if *projectID == 0 {
		return fmt.Errorf("usage: train -project N [-epochs E] [-model conv1d]")
	}
	body, _ := json.Marshal(map[string]any{
		"model":         map[string]any{"type": *modelType},
		"epochs":        *epochs,
		"learning_rate": *lr,
		"quantize":      *quantize,
	})
	out, err := c.do("POST", fmt.Sprintf("/api/projects/%d/train", *projectID), body, "application/json")
	if err != nil {
		return err
	}
	fmt.Printf("training started: job %v (poll with: ei-cli job -id %v)\n", out["job_id"], out["job_id"])
	return nil
}

func (c *client) job(args []string) error {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	id := fs.String("id", "", "job id")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("usage: job -id job-N")
	}
	out, err := c.do("GET", "/api/jobs/"+*id, nil, "")
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %v\n", *id, out["status"])
	if logs, ok := out["logs"].([]any); ok {
		for _, l := range logs {
			fmt.Println(" ", l)
		}
	}
	if out["status"] == "finished" {
		if res, err := c.do("GET", "/api/jobs/"+*id+"/result", nil, ""); err == nil {
			pretty, _ := json.MarshalIndent(res["result"], "  ", "  ")
			fmt.Printf("  result: %s\n", pretty)
		}
	}
	return nil
}
