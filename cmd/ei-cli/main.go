// Command ei-cli is the uploader/automation client for an ei-studio
// server, mirroring the platform's CLI tooling (paper Sec. 4.1): it signs
// sensor data with the project's HMAC key and drives training jobs over
// the versioned REST API through the typed internal/client library.
//
// Usage:
//
//	ei-cli -server http://localhost:4800 bootstrap <username>
//	ei-cli blocks
//	ei-cli -key KEY create-project <name>
//	ei-cli -key KEY upload -project 1 -label yes -hmac HMACKEY file.wav
//	ei-cli -key KEY data list -project 1 [-category training] [-limit 50 -offset 0]
//	ei-cli -key KEY data rebalance -project 1 [-fraction 0.2]
//	ei-cli -key KEY data rm -project 1 -id SAMPLEID
//	ei-cli -key KEY impulse -project 1 -file design.json
//	ei-cli -key KEY impulse -project 1 -get
//	ei-cli -key KEY train -project 1 -epochs 10 [-wait|-watch]
//	ei-cli -key KEY job -id job-1 [-wait]
//	ei-cli -key KEY jobs watch -id job-1
//	ei-cli -key KEY jobs cancel -id job-1
//	ei-cli -key KEY classify -project 1 [-quantized] [-stride-ms 250] file.wav
//	ei-cli -key KEY stream -project 1 [-threshold 0.6 -smooth 2] file.wav
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/ingest"
	"edgepulse/internal/wav"
)

func main() {
	server := flag.String("server", "http://localhost:4800", "studio server URL")
	key := flag.String("key", "", "API key")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := client.New(*server, client.WithAPIKey(*key))
	ctx := context.Background()
	var err error
	switch args[0] {
	case "bootstrap":
		err = bootstrap(ctx, c, args[1:])
	case "create-project":
		err = createProject(ctx, c, args[1:])
	case "upload":
		err = upload(ctx, c, args[1:])
	case "data":
		err = dataCmd(ctx, c, args[1:])
	case "blocks":
		err = blocks(ctx, c)
	case "impulse":
		err = impulse(ctx, c, args[1:])
	case "train":
		err = train(ctx, c, args[1:])
	case "job":
		err = job(ctx, c, args[1:])
	case "jobs":
		err = jobsCmd(ctx, c, args[1:])
	case "classify":
		err = classifyCmd(ctx, c, args[1:])
	case "stream":
		err = streamCmd(ctx, c, args[1:])
	case "cluster":
		err = clusterCmd(ctx, c, args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ei-cli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ei-cli [-server URL] [-key KEY] <bootstrap|create-project|upload|data|blocks|impulse|train|job|jobs|classify|stream|cluster> ...")
	os.Exit(2)
}

// clusterCmd inspects a gateway: `ei-cli -server http://gateway cluster
// status` prints the shard map with per-node readiness detail and
// follower replication lag.
func clusterCmd(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 || args[0] != "status" {
		return fmt.Errorf("usage: cluster status")
	}
	st, err := c.ClusterStatus(ctx)
	if err != nil {
		return err
	}
	for _, shard := range st.Shards {
		fmt.Printf("shard %d\n", shard.Shard)
		printNode("primary", shard.Primary)
		for _, f := range shard.Followers {
			printNode("follower", f)
		}
	}
	return nil
}

func printNode(kind string, n v1.ClusterNodeStatus) {
	state := "ready"
	switch {
	case n.Name == "":
		fmt.Printf("  %-9s (none configured)\n", kind)
		return
	case n.Draining:
		state = "draining"
	case !n.Ready:
		state = "DOWN"
	}
	fmt.Printf("  %-9s %-14s %-24s %s", kind, n.Name, n.URL, state)
	if n.LagOps > 0 {
		fmt.Printf("  lag=%d ops", n.LagOps)
	}
	if n.Error != "" {
		fmt.Printf("  (%s)", n.Error)
	}
	fmt.Println()
	for probe, status := range n.Probes {
		if status != "ok" {
			fmt.Printf("            probe %s: %s\n", probe, status)
		}
	}
}

func bootstrap(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bootstrap <username>")
	}
	u, err := c.CreateUser(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("user %s created; API key: %s\n", u.ID, u.APIKey)
	return nil
}

func createProject(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: create-project <name>")
	}
	p, err := c.CreateProject(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("project %d created; HMAC key: %s\n", p.ID, p.HMACKey)
	return nil
}

func upload(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	label := fs.String("label", "", "sample label")
	hmacKey := fs.String("hmac", "", "project HMAC key (signs the payload)")
	fs.Parse(args)
	if *projectID == 0 || *label == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: upload -project N -label L -hmac KEY file.wav")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := filepath.Base(path)
	if strings.HasSuffix(path, ".wav") {
		// Decode locally and push as a signed acquisition document, the
		// same path a device daemon uses.
		audio, err := wav.Decode(f)
		if err != nil {
			return err
		}
		values := make([][]float64, len(audio.Samples)/audio.Channels)
		for i := range values {
			row := make([]float64, audio.Channels)
			for ch := 0; ch < audio.Channels; ch++ {
				row[ch] = float64(audio.Samples[i*audio.Channels+ch])
			}
			values[i] = row
		}
		sensors := make([]ingest.Sensor, audio.Channels)
		for ch := range sensors {
			sensors[ch] = ingest.Sensor{Name: fmt.Sprintf("audio%d", ch), Units: "wav"}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "ei-cli", DeviceType: "CLI_UPLOADER",
			IntervalMS: 1000 / float64(audio.Rate),
			Sensors:    sensors, Values: values,
		}, *hmacKey, 0)
		if err != nil {
			return err
		}
		out, err := c.UploadSample(ctx, *projectID, client.UploadParams{
			Label: *label, Name: name, Format: "acquisition",
		}, doc)
		if err != nil {
			return err
		}
		fmt.Printf("uploaded %s as sample %s\n", name, out.SampleID)
		return nil
	}
	// CSV and images pass through raw.
	format := "csv"
	if strings.HasSuffix(path, ".png") || strings.HasSuffix(path, ".jpg") || strings.HasSuffix(path, ".jpeg") {
		format = "image"
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	out, err := c.UploadSample(ctx, *projectID, client.UploadParams{
		Label: *label, Name: name, Format: format,
	}, raw)
	if err != nil {
		return err
	}
	fmt.Printf("uploaded %s as sample %s\n", name, out.SampleID)
	return nil
}

// dataCmd hosts the dataset subcommands, working page-by-page against
// the server's header listing — no signal payloads ever cross the wire,
// so it stays fast on datasets of any size.
func dataCmd(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: data <list|rebalance|rm> -project N ...")
	}
	fs := flag.NewFlagSet("data "+args[0], flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	category := fs.String("category", "", "filter by split (training|testing)")
	limit := fs.Int("limit", 50, "page size")
	offset := fs.Int("offset", 0, "page start")
	all := fs.Bool("all", false, "walk every page instead of one")
	id := fs.String("id", "", "sample id (rm)")
	fraction := fs.Float64("fraction", 0.2, "test split fraction (rebalance)")
	fs.Parse(args[1:])
	if *projectID == 0 {
		return fmt.Errorf("usage: data %s -project N ...", args[0])
	}
	switch args[0] {
	case "list":
		return dataList(ctx, c, *projectID, *category, *limit, *offset, *all)
	case "rebalance":
		resp, err := c.Rebalance(ctx, *projectID, *fraction)
		if err != nil {
			return err
		}
		fmt.Printf("rebalanced to ~%.0f%% test:\n", *fraction*100)
		for _, st := range resp.Stats {
			fmt.Printf("  %-12s train %-4d test %-4d\n", st.Label, st.Training, st.Testing)
		}
		return nil
	case "rm":
		if *id == "" {
			return fmt.Errorf("usage: data rm -project N -id SAMPLEID")
		}
		if err := c.DeleteSample(ctx, *projectID, *id); err != nil {
			return err
		}
		fmt.Printf("deleted sample %s\n", *id)
		return nil
	default:
		return fmt.Errorf("unknown data subcommand %q (want list, rebalance or rm)", args[0])
	}
}

// dataList prints one page (or, with -all, every page) of sample
// headers plus the per-label statistics and dataset version.
func dataList(ctx context.Context, c *client.Client, projectID int, category string, limit, offset int, all bool) error {
	shown := 0
	for {
		resp, err := c.Samples(ctx, projectID, category, client.Page{Limit: limit, Offset: offset})
		if err != nil {
			return err
		}
		if shown == 0 {
			fmt.Printf("dataset version %s\n", resp.Version)
			for _, st := range resp.Stats {
				fmt.Printf("  %-12s train %-4d test %-4d %.2fs\n", st.Label, st.Training, st.Testing, st.Seconds)
			}
			fmt.Println("samples:")
		}
		for _, sm := range resp.Samples {
			fmt.Printf("  %-18s %-12s %-9s %6d frames  %s\n", sm.ID, sm.Label, sm.Category, sm.Frames, sm.Name)
			shown++
		}
		// The server clamps oversized limits, so advance by what it
		// actually returned and finish against its reported total.
		offset += len(resp.Samples)
		if !all || len(resp.Samples) == 0 || offset >= resp.Total {
			if all {
				fmt.Printf("%d samples\n", shown)
			}
			return nil
		}
	}
}

// blocks prints the server's impulse design catalog: every registered
// DSP and learn block type with its parameter schema.
func blocks(ctx context.Context, c *client.Client) error {
	cat, err := c.Blocks(ctx)
	if err != nil {
		return err
	}
	printCatalog := func(title string, infos []v1.BlockInfo) {
		fmt.Printf("%s:\n", title)
		for _, b := range infos {
			fmt.Printf("  %-20s", b.Type)
			if b.Description != "" {
				fmt.Printf(" %s", b.Description)
			}
			fmt.Println()
			for _, p := range b.Params {
				fmt.Printf("    %-22s default %g\n", p.Name, p.Default)
			}
		}
	}
	printCatalog("DSP blocks", cat.DSP)
	printCatalog("Learn blocks", cat.Learn)
	return nil
}

// impulse sets a project's impulse design from a JSON file (v1 or v2
// schema; the server migrates v1) or fetches the current design.
func impulse(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("impulse", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	file := fs.String("file", "", "impulse design JSON (v1 or v2 schema)")
	get := fs.Bool("get", false, "fetch the current design instead of setting one")
	fs.Parse(args)
	if *projectID == 0 || (*file == "" && !*get) {
		return fmt.Errorf("usage: impulse -project N (-file design.json | -get)")
	}
	if *get {
		resp, err := c.Impulse(ctx, *projectID)
		if err != nil {
			return err
		}
		pretty, _ := json.MarshalIndent(resp.Impulse, "", "  ")
		fmt.Printf("%s\n%s (v%d schema, trained=%v quantized=%v)\n",
			pretty, resp.Dataflow, resp.Version, resp.Trained, resp.Quantized)
		return nil
	}
	raw, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	resp, err := c.SetImpulse(ctx, *projectID, json.RawMessage(raw))
	if err != nil {
		return err
	}
	fmt.Println("impulse:", resp.Dataflow)
	fmt.Println("feature shape:", resp.FeatureShape)
	for _, b := range resp.Blocks {
		fmt.Printf("  block %-20s %-18s offset %-5d size %d\n", b.Name, fmt.Sprint(b.Shape), b.Offset, b.Size)
	}
	return nil
}

func train(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	epochs := fs.Int("epochs", 10, "training epochs")
	lr := fs.Float64("lr", 0.005, "learning rate (0 = auto)")
	modelType := fs.String("model", "conv1d", "model type (conv1d, dscnn, mlp, cnn2d)")
	quantize := fs.Bool("quantize", true, "quantize to int8 after training")
	wait := fs.Bool("wait", false, "block until the job finishes and print its result")
	watch := fs.Bool("watch", false, "stream live progress events until the job finishes")
	fs.Parse(args)
	if *projectID == 0 {
		return fmt.Errorf("usage: train -project N [-epochs E] [-model conv1d] [-wait|-watch]")
	}
	accepted, err := c.Train(ctx, *projectID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: *modelType},
		Epochs:       *epochs,
		LearningRate: *lr,
		Quantize:     *quantize,
	})
	if err != nil {
		return err
	}
	switch {
	case *watch:
		fmt.Printf("training started: job %s, streaming events...\n", accepted.JobID)
		return watchJob(ctx, c, accepted.JobID, 0)
	case *wait:
		fmt.Printf("training started: job %s, waiting...\n", accepted.JobID)
		return waitAndReport(ctx, c, accepted.JobID)
	default:
		fmt.Printf("training started: job %s (watch with: ei-cli jobs watch -id %s)\n", accepted.JobID, accepted.JobID)
		return nil
	}
}

// jobsCmd hosts the orchestration subcommands: live progress watching
// and cancellation.
func jobsCmd(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: jobs <watch|cancel> -id job-N")
	}
	fs := flag.NewFlagSet("jobs "+args[0], flag.ExitOnError)
	id := fs.String("id", "", "job id")
	from := fs.Int64("from", 0, "resume the event stream after this sequence number (watch)")
	fs.Parse(args[1:])
	if *id == "" {
		return fmt.Errorf("usage: jobs %s -id job-N", args[0])
	}
	switch args[0] {
	case "watch":
		if *from > 0 {
			fmt.Printf("resuming job %s after event %d\n", *id, *from)
		}
		return watchJob(ctx, c, *id, *from)
	case "cancel":
		resp, err := c.CancelJob(ctx, *id)
		if err != nil {
			return err
		}
		if resp.Cancelled {
			fmt.Printf("job %s: cancellation requested (status %s)\n", *id, resp.Status)
		} else {
			fmt.Printf("job %s already %s\n", *id, resp.Status)
		}
		return nil
	default:
		return fmt.Errorf("unknown jobs subcommand %q (want watch or cancel)", args[0])
	}
}

// classifyCmd slices a wav file into impulse-sized windows and runs them
// through the batched classify endpoint: one request per MaxClassifyBatch
// windows instead of one per window, so long clips amortize transport and
// the server's warm DSP/arena scratch.
func classifyCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	quantized := fs.Bool("quantized", false, "classify with the int8 model")
	strideMS := fs.Int("stride-ms", 0, "window stride override in ms (0 = impulse default)")
	fs.Parse(args)
	if *projectID == 0 || fs.NArg() != 1 {
		return fmt.Errorf("usage: classify -project N [-quantized] [-stride-ms T] file.wav")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	audio, err := wav.Decode(f)
	if err != nil {
		return err
	}

	impResp, err := c.Impulse(ctx, *projectID)
	if err != nil {
		return err
	}
	var cfg struct {
		Input struct {
			WindowMS    int `json:"window_ms"`
			StrideMS    int `json:"stride_ms"`
			FrequencyHz int `json:"frequency_hz"`
			Axes        int `json:"axes"`
		} `json:"input"`
	}
	if err := json.Unmarshal(impResp.Impulse, &cfg); err != nil {
		return fmt.Errorf("decoding impulse config: %w", err)
	}
	if cfg.Input.WindowMS <= 0 || cfg.Input.FrequencyHz <= 0 {
		return fmt.Errorf("project %d has no time-series input block", *projectID)
	}
	if audio.Channels != cfg.Input.Axes {
		return fmt.Errorf("%s has %d channels, impulse expects %d axes", fs.Arg(0), audio.Channels, cfg.Input.Axes)
	}
	winSamples := cfg.Input.WindowMS * cfg.Input.FrequencyHz / 1000
	stride := cfg.Input.StrideMS * cfg.Input.FrequencyHz / 1000
	if *strideMS > 0 {
		stride = *strideMS * cfg.Input.FrequencyHz / 1000
	}
	if stride <= 0 {
		stride = winSamples
	}
	win := winSamples * cfg.Input.Axes
	hop := stride * cfg.Input.Axes

	var windows [][]float32
	var starts []int
	for off := 0; off+win <= len(audio.Samples); off += hop {
		windows = append(windows, audio.Samples[off:off+win])
		starts = append(starts, off/cfg.Input.Axes)
	}
	if len(windows) == 0 {
		return fmt.Errorf("%s is shorter than one %dms window", fs.Arg(0), cfg.Input.WindowMS)
	}

	done := 0
	for done < len(windows) {
		n := len(windows) - done
		if n > v1.MaxClassifyBatch {
			n = v1.MaxClassifyBatch
		}
		resp, err := c.ClassifyBatch(ctx, *projectID, windows[done:done+n], *quantized)
		if err != nil {
			return err
		}
		for i, res := range resp.Results {
			best := float32(0)
			if s, ok := res.Classification[res.Label]; ok {
				best = s
			}
			fmt.Printf("  window @ %6.2fs  %-8s %.2f\n",
				float64(starts[done+i])/float64(cfg.Input.FrequencyHz), res.Label, best)
		}
		done += n
	}
	return nil
}

// streamCmd pushes a wav file through a live inference session in
// stride-sized chunks and renders the rolling results and debounced
// detections from the session's event feed — the CLI face of the
// streaming gateway.
func streamCmd(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	projectID := fs.Int("project", 0, "project id")
	strideMS := fs.Int("stride-ms", 0, "classification stride override in ms (0 = impulse default)")
	quantized := fs.Bool("quantized", false, "classify with the int8 model")
	threshold := fs.Float64("threshold", 0, "detection threshold (0 = server default)")
	release := fs.Float64("release", 0, "hysteresis re-arm level (0 = 0.75*threshold)")
	smooth := fs.Int("smooth", 0, "score moving-average depth in windows (0 = server default)")
	suppress := fs.Int("suppress", 0, "refractory windows after a detection")
	ignore := fs.String("ignore", "noise", "comma-separated labels that never fire detections")
	fs.Parse(args)
	if *projectID == 0 || fs.NArg() != 1 {
		return fmt.Errorf("usage: stream -project N [-threshold T -smooth W] file.wav")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	audio, err := wav.Decode(f)
	if err != nil {
		return err
	}

	var ignoreLabels []string
	for _, l := range strings.Split(*ignore, ",") {
		if l = strings.TrimSpace(l); l != "" {
			ignoreLabels = append(ignoreLabels, l)
		}
	}
	sess, err := c.OpenStream(ctx, *projectID, v1.StreamOpenRequest{
		StrideMS:     *strideMS,
		Quantized:    *quantized,
		Threshold:    float32(*threshold),
		Release:      float32(*release),
		Smooth:       *smooth,
		Suppress:     *suppress,
		IgnoreLabels: ignoreLabels,
	})
	if err != nil {
		return err
	}
	if audio.Channels != sess.Info.Axes {
		return fmt.Errorf("%s has %d channels, impulse expects %d axes", fs.Arg(0), audio.Channels, sess.Info.Axes)
	}
	if audio.Rate != sess.Info.Rate {
		fmt.Fprintf(os.Stderr, "warning: %s is %d Hz, impulse expects %d Hz\n", fs.Arg(0), audio.Rate, sess.Info.Rate)
	}
	fmt.Printf("session %s: %d-sample windows every %d samples, classes %v\n",
		sess.ID(), sess.Info.WindowSamples, sess.Info.StrideSamples, sess.Info.Classes)

	tailCtx, cancelTail := context.WithCancel(ctx)
	defer cancelTail()
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- sess.Events(tailCtx, 0, func(e v1.StreamEvent) error {
			switch e.Type {
			case "result":
				fmt.Printf("  window @ %6.2fs  %-8s %.2f\n",
					float64(e.WindowStart)/float64(sess.Info.Rate), e.Label, e.Score)
			case "detection":
				fmt.Printf("*** detected %q (smoothed %.2f) at %.2fs\n",
					e.Label, e.Score, float64(e.WindowStart)/float64(sess.Info.Rate))
			}
			return nil
		})
	}()

	chunk := sess.Info.StrideSamples * sess.Info.Axes
	for off := 0; off < len(audio.Samples); off += chunk {
		end := off + chunk
		if end > len(audio.Samples) {
			end = len(audio.Samples)
		}
		if _, err := sess.Push(ctx, audio.Samples[off:end]); err != nil {
			return err
		}
	}
	closed, err := sess.Close(ctx)
	if err != nil {
		return err
	}
	if err := <-tailDone; err != nil {
		return err
	}
	fmt.Printf("closed: %d frames in, %d windows, %d detections, %d dropped\n",
		closed.Stats.FramesIn, closed.Stats.Windows, closed.Stats.Detections, closed.Stats.Dropped)
	return nil
}

// watchJob renders the live event stream: state transitions, a progress
// bar per stage, and log lines; afterwards it prints the result of a
// finished job. A failed or cancelled job is a nonzero exit.
func watchJob(ctx context.Context, c *client.Client, id string, from int64) error {
	var final string
	err := c.StreamJobEvents(ctx, id, from, func(e v1.JobEvent) error {
		switch e.Type {
		case v1.JobEventState:
			attempt := ""
			if e.Attempt > 0 {
				attempt = fmt.Sprintf(" (attempt %d)", e.Attempt+1)
			}
			if e.Message != "" {
				fmt.Printf("▸ %s%s — %s\n", e.Status, attempt, e.Message)
			} else {
				fmt.Printf("▸ %s%s\n", e.Status, attempt)
			}
			if e.Terminal() {
				final = e.Status
			}
		case v1.JobEventProgress:
			fmt.Printf("  %-10s %s %3.0f%%\n", e.Stage, progressBar(e.Progress), e.Progress)
		case v1.JobEventLog:
			fmt.Printf("  %s\n", e.Message)
		}
		return nil
	})
	if err != nil {
		return err
	}
	switch final {
	case v1.JobFinished:
		return printResult(ctx, c, id)
	case v1.JobCancelled:
		return fmt.Errorf("job %s was cancelled", id)
	default:
		j, jerr := c.Job(ctx, id)
		if jerr != nil {
			return fmt.Errorf("job %s ended as %s", id, final)
		}
		return fmt.Errorf("job %s failed: %s", id, j.Job.Error)
	}
}

// progressBar renders pct as a 20-cell bar.
func progressBar(pct float64) string {
	const cells = 20
	full := int(pct / 100 * cells)
	if full > cells {
		full = cells
	}
	bar := make([]byte, cells)
	for i := range bar {
		if i < full {
			bar[i] = '#'
		} else {
			bar[i] = '.'
		}
	}
	return "[" + string(bar) + "]"
}

func job(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	id := fs.String("id", "", "job id")
	wait := fs.Bool("wait", false, "block until the job finishes")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("usage: job -id job-N [-wait]")
	}
	if *wait {
		return waitAndReport(ctx, c, *id)
	}
	j, err := c.Job(ctx, *id)
	if err != nil {
		return err
	}
	printJob(j.Job)
	if j.Status == v1.JobFailed {
		// Match the -wait path: a failed job is a nonzero exit.
		return fmt.Errorf("job %s failed: %s", *id, j.Job.Error)
	}
	if j.Status == v1.JobFinished {
		return printResult(ctx, c, *id)
	}
	return nil
}

// waitAndReport long-polls the job to completion, then prints status,
// logs and (on success) the structured result.
func waitAndReport(ctx context.Context, c *client.Client, id string) error {
	done, err := c.WaitJob(ctx, id)
	if err != nil {
		return err
	}
	printJob(done.Job)
	if done.Status == v1.JobFailed {
		return fmt.Errorf("job %s failed: %s", id, done.Job.Error)
	}
	return printResult(ctx, c, id)
}

// printJob shows status and logs; the failure reason is carried by the
// error the caller returns, so it is not repeated here.
func printJob(j v1.Job) {
	fmt.Printf("job %s: %s (%.0f ms)\n", j.ID, j.Status, j.DurationMS)
	for _, l := range j.Logs {
		fmt.Println(" ", l)
	}
}

func printResult(ctx context.Context, c *client.Client, id string) error {
	res, err := c.JobResult(ctx, id)
	if err != nil {
		// Old results age out of the server's retention window; the
		// job status above is still the answer, so don't fail.
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Code == v1.CodeNotFound {
			fmt.Println("  (result no longer retained by the server)")
			return nil
		}
		return err
	}
	pretty, _ := json.MarshalIndent(json.RawMessage(res.Result), "  ", "  ")
	fmt.Printf("  result: %s\n", pretty)
	return nil
}
