// Command ei-daemon bridges a device to an ei-studio server, playing the
// role of the platform's device daemon (paper Sec. 4.1: "CLI tools that
// interface with device firmware to ingest data in real time"). Since
// this repository has no physical hardware, the daemon drives a simulated
// firmware (internal/firmware) over its AT-command interface: it issues
// AT+SAMPLE, receives HMAC-signed acquisition documents, and forwards
// them to the project's ingestion endpoint.
//
// Usage:
//
//	ei-daemon -server http://localhost:4800 -key APIKEY -project 1 \
//	          -hmac HMACKEY -label yes -samples 10 -window-ms 1000 \
//	          -signal keyword:yes
//
// -signal selects the simulated sensor: "keyword:<label>" (audio),
// "vibration:normal" or "vibration:fault" (3-axis accelerometer).
//
// With -spool DIR the daemon writes every acquired document to a
// crash-safe local spool (internal/store.Spool) before uploading: at
// boot it recovers the spool — truncating any record torn by a crash —
// and re-uploads whatever the server never acknowledged, so a daemon
// killed mid-session loses at most the window being written.
//
// With -stream the daemon switches from dataset ingestion to live
// inference: it opens a streaming session against the project's trained
// impulse, forwards the simulated sensor feed chunk by chunk, and
// prints the rolling window results and debounced detection events as
// they arrive on the session's event feed:
//
//	ei-daemon -server http://localhost:4800 -key APIKEY -project 1 \
//	          -stream -signal keyword:yes -seconds 12 -events 3
//
// With -worker or -follow URL the daemon instead joins the cluster as a
// shard-owning API server or a read-only replicating standby; see
// node.go for those modes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/firmware"
	"edgepulse/internal/ingest"
	"edgepulse/internal/store"
	"edgepulse/internal/synth"
)

func main() {
	server := flag.String("server", "http://localhost:4800", "studio server URL")
	key := flag.String("key", "", "API key")
	projectID := flag.Int("project", 0, "project id")
	hmacKey := flag.String("hmac", "", "project HMAC key (programmed into the device)")
	label := flag.String("label", "", "label for ingested samples")
	samples := flag.Int("samples", 5, "number of windows to sample and upload")
	windowMS := flag.Int("window-ms", 1000, "window length in milliseconds")
	signalKind := flag.String("signal", "keyword:yes", "simulated signal (keyword:<word> | vibration:normal | vibration:fault)")
	seed := flag.Int64("seed", 1, "simulation seed")
	spoolDir := flag.String("spool", "", "crash-safe local spool directory (recovered and drained at boot)")
	streamMode := flag.Bool("stream", false, "live streaming inference against the project's trained impulse instead of dataset ingestion")
	seconds := flag.Float64("seconds", 12, "stream duration in seconds (-stream)")
	events := flag.Int("events", 3, "keyword occurrences embedded in the stream (-stream, keyword signals)")
	strideMS := flag.Int("stride-ms", 0, "classification stride override in ms (-stream, 0 = impulse default)")
	threshold := flag.Float64("threshold", 0, "detection threshold (-stream, 0 = server default)")
	release := flag.Float64("release", 0, "hysteresis re-arm level (-stream, 0 = 0.75*threshold)")
	smooth := flag.Int("smooth", 0, "score moving-average depth in windows (-stream, 0 = server default)")
	suppress := flag.Int("suppress", 0, "refractory windows after a detection (-stream)")
	ignore := flag.String("ignore", "noise", "comma-separated labels that never fire detections (-stream)")
	workerMode := flag.Bool("worker", false, "run as a cluster worker: a shard-owning API server (see node.go)")
	follow := flag.String("follow", "", "run as a follower replicating this primary worker URL")
	listen := flag.String("listen", ":4801", "listen address (-worker/-follow)")
	dataDir := flag.String("data", "", "durable state directory (-worker/-follow)")
	shard := flag.Int("shard", 0, "this node's shard index (-worker/-follow)")
	shards := flag.Int("shards", 0, "total shard count (-worker/-follow)")
	nodeName := flag.String("name", "", "node name in cluster status (-worker/-follow; default role-shard)")
	clusterToken := flag.String("cluster-token", "", "shared secret for cluster-plane endpoints (-worker/-follow)")
	trainWorkers := flag.Int("train-workers", 4, "max training workers (-worker)")
	syncMS := flag.Int("sync-ms", 500, "replication sync interval in milliseconds (-follow)")
	flag.Parse()
	if *workerMode || *follow != "" {
		runNode(nodeFlags{
			worker: *workerMode, follow: *follow, listen: *listen, data: *dataDir,
			shard: *shard, shards: *shards, name: *nodeName, clusterToken: *clusterToken,
			trainWorkers: *trainWorkers, syncInterval: time.Duration(*syncMS) * time.Millisecond,
		})
		return
	}
	if *streamMode {
		if *key == "" || *projectID == 0 {
			fmt.Fprintln(os.Stderr, "usage: ei-daemon -stream -server URL -key APIKEY -project N [-signal keyword:yes] [-seconds S] [-events N]")
			os.Exit(2)
		}
	} else if *key == "" || *projectID == 0 || *hmacKey == "" || *label == "" {
		fmt.Fprintln(os.Stderr, "usage: ei-daemon -server URL -key APIKEY -project N -hmac HMACKEY -label L [-samples N]")
		os.Exit(2)
	}

	// A SIGINT/SIGTERM mid-run cancels the upload loop cooperatively —
	// the same cancellation contract the job scheduler uses server-side.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c := client.New(*server, client.WithAPIKey(*key))
	if *streamMode {
		if err := runStream(ctx, c, *projectID, *signalKind, streamOpts{
			Seconds: *seconds, Events: *events, Seed: *seed,
			Open: v1.StreamOpenRequest{
				StrideMS:     *strideMS,
				Threshold:    float32(*threshold),
				Release:      float32(*release),
				Smooth:       *smooth,
				Suppress:     *suppress,
				IgnoreLabels: splitLabels(*ignore),
			},
		}); err != nil {
			fatal(err)
		}
		return
	}
	up := &uploader{ctx: ctx, c: c, project: *projectID, label: *label}
	if *spoolDir != "" {
		sp, err := store.OpenSpool(*spoolDir)
		if err != nil {
			fatal(err)
		}
		defer sp.Close()
		up.spool = sp
		// Crash recovery: re-upload documents acquired by a previous
		// run that the server never acknowledged. Each spool entry
		// carries the project and label it was acquired under, so a
		// restart with different flags cannot mislabel them.
		if pending := sp.Pending(); len(pending) > 0 {
			fmt.Printf("spool: recovering %d unacknowledged window(s)\n", len(pending))
			for i, raw := range pending {
				e, err := decodeSpoolEntry(raw)
				if err != nil {
					fatal(fmt.Errorf("spool recovery %d/%d: %w", i+1, len(pending), err))
				}
				id, err := up.sendWithRetry(e.Project, e.Label, e.Doc)
				if err != nil {
					fatal(fmt.Errorf("spool recovery %d/%d: %w", i+1, len(pending), err))
				}
				fmt.Printf("spool: re-uploaded window -> sample %s\n", id)
			}
		}
	}
	dev, err := buildDevice(*signalKind, *hmacKey, *seed)
	if err != nil {
		fatal(err)
	}
	info, err := dev.Execute("AT+INFO?")
	if err != nil {
		fatal(err)
	}
	fmt.Print("connected to device:\n", indent(info))

	for i := 0; i < *samples; i++ {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "ei-daemon: interrupted, stopping after", i, "windows")
			return
		}
		out, err := dev.Execute(fmt.Sprintf("AT+SAMPLE=%d", *windowMS))
		if err != nil {
			fatal(err)
		}
		doc := strings.TrimSuffix(strings.TrimSpace(out), "\nOK")
		if up.spool != nil {
			// Durable before network: a crash between here and the
			// acknowledgment replays this window on the next run.
			if err := up.spool.Add(encodeSpoolEntry(*projectID, *label, []byte(doc))); err != nil {
				fatal(err)
			}
		}
		id, err := up.send([]byte(doc))
		if err != nil {
			fatal(fmt.Errorf("sample %d: %w", i, err))
		}
		fmt.Printf("uploaded window %d/%d -> sample %s\n", i+1, *samples, id)
	}
}

// uploader pushes signed acquisition documents to the ingestion
// endpoint, acknowledging each in the spool once the server has it.
type uploader struct {
	ctx     context.Context
	c       *client.Client
	project int
	label   string
	spool   *store.Spool
}

// spoolEntry is what a spool record holds: the signed document plus
// the upload parameters it was acquired under.
type spoolEntry struct {
	Project int    `json:"project"`
	Label   string `json:"label"`
	Doc     []byte `json:"doc"`
}

// encodeSpoolEntry wraps a document with its upload parameters.
func encodeSpoolEntry(project int, label string, doc []byte) []byte {
	blob, _ := json.Marshal(spoolEntry{Project: project, Label: label, Doc: doc})
	return blob
}

// decodeSpoolEntry parses a spool record.
func decodeSpoolEntry(raw []byte) (spoolEntry, error) {
	var e spoolEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return spoolEntry{}, fmt.Errorf("corrupt spool entry: %w", err)
	}
	return e, nil
}

// send uploads one document under the daemon's current flags.
func (u *uploader) send(doc []byte) (string, error) {
	return u.sendAs(u.project, u.label, doc)
}

// sendAs uploads one document and, on success, advances the spool
// checkpoint past it. A duplicate rejection (the window was uploaded
// just before a crash) counts as success: the server has the data.
func (u *uploader) sendAs(project int, label string, doc []byte) (string, error) {
	uploaded, err := u.c.UploadSample(u.ctx, project, client.UploadParams{
		Label: label, Format: "acquisition",
	}, doc)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.Code == v1.CodeConflict {
			if u.spool != nil {
				if err := u.spool.Ack(1); err != nil {
					return "", err
				}
			}
			return "(duplicate, already ingested)", nil
		}
		return "", err
	}
	if u.spool != nil {
		if err := u.spool.Ack(1); err != nil {
			return "", err
		}
	}
	return uploaded.SampleID, nil
}

// sendWithRetry re-uploads one recovered spool entry, riding through a
// server that is still warming up or shedding load (429/503) with the
// client's shared retry schedule. The client itself won't replay POSTs
// on 503, but spool re-uploads are safe to replay: ingestion dedup
// turns an already-landed window into a 409, which sendAs treats as an
// acknowledgment.
func (u *uploader) sendWithRetry(project int, label string, doc []byte) (string, error) {
	const maxAttempts = 6
	var lastErr error
	for attempt := 0; ; attempt++ {
		id, err := u.sendAs(project, label, doc)
		if err == nil {
			return id, nil
		}
		lastErr = err
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) ||
			(apiErr.Status != http.StatusTooManyRequests && apiErr.Status != http.StatusServiceUnavailable) {
			return "", err
		}
		if attempt+1 >= maxAttempts {
			return "", lastErr
		}
		select {
		case <-u.ctx.Done():
			return "", u.ctx.Err()
		case <-time.After(client.RetryDelay(attempt, apiErr)):
		}
	}
}

// buildDevice wires a synthetic sensor into the simulated firmware.
func buildDevice(kind, hmacKey string, seed int64) (*firmware.Device, error) {
	rng := rand.New(rand.NewSource(seed))
	parts := strings.SplitN(kind, ":", 2)
	switch parts[0] {
	case "keyword":
		word := "yes"
		if len(parts) == 2 {
			word = parts[1]
		}
		const rate = 8000
		return &firmware.Device{
			Name: "sim-mic-01", Type: "NANO33BLE",
			Sensors: []ingest.Sensor{{Name: "audio", Units: "wav"}},
			RateHz:  rate, HMACKey: hmacKey,
			Sample: func(n int) [][]float64 {
				sig, err := synth.Keyword(word, rate, float64(n)/rate+0.01, 0.03, rng)
				if err != nil {
					sig, _ = synth.Keyword("noise", rate, float64(n)/rate+0.01, 0.3, rng)
				}
				rows := make([][]float64, n)
				for i := range rows {
					rows[i] = []float64{float64(sig.Data[i])}
				}
				return rows
			},
		}, nil
	case "vibration":
		fault := len(parts) == 2 && parts[1] == "fault"
		const rate = 100
		return &firmware.Device{
			Name: "sim-accel-01", Type: "SLATESAFETY_BAND",
			Sensors: []ingest.Sensor{
				{Name: "accX", Units: "m/s2"}, {Name: "accY", Units: "m/s2"}, {Name: "accZ", Units: "m/s2"},
			},
			RateHz: rate, HMACKey: hmacKey,
			Sample: func(n int) [][]float64 {
				sig := synth.Vibration(rate, float64(n)/rate+0.01, fault, rng)
				rows := make([][]float64, n)
				for i := range rows {
					rows[i] = []float64{
						float64(sig.Data[i*3]), float64(sig.Data[i*3+1]), float64(sig.Data[i*3+2]),
					}
				}
				return rows
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown signal kind %q", kind)
	}
}

// streamOpts bundles the -stream mode knobs.
type streamOpts struct {
	Seconds float64
	Events  int
	Seed    int64
	Open    v1.StreamOpenRequest
}

// runStream opens a live inference session, forwards the simulated
// sensor feed in stride-sized chunks, and renders the session's event
// feed — rolling results and debounced detections — until the source
// runs dry and the session is closed.
func runStream(ctx context.Context, c *client.Client, projectID int, kind string, opts streamOpts) error {
	sess, err := c.OpenStream(ctx, projectID, opts.Open)
	if err != nil {
		return fmt.Errorf("opening stream: %w", err)
	}
	fmt.Printf("session %s: %d-sample windows every %d samples at %d Hz, classes %v\n",
		sess.ID(), sess.Info.WindowSamples, sess.Info.StrideSamples, sess.Info.Rate, sess.Info.Classes)

	src, err := buildSource(kind, sess.Info.Rate, opts)
	if err != nil {
		return err
	}
	if src.Axes() != sess.Info.Axes {
		return fmt.Errorf("signal %q has %d axes, impulse expects %d", kind, src.Axes(), sess.Info.Axes)
	}

	// Tail the event feed concurrently with the pushes, like a device UI.
	// The tail runs on a context that survives SIGTERM: on interrupt the
	// push loop stops, the session is closed (which flushes queued frames
	// server-side and emits the terminal event), and only then is the
	// tail released — cancelling it with ctx would drop the terminal
	// event and the flush stats on every graceful shutdown.
	tailCtx, cancelTail := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelTail()
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- sess.Events(tailCtx, 0, func(e v1.StreamEvent) error {
			switch e.Type {
			case "result":
				fmt.Printf("  window @ %6.2fs  %-8s %.2f\n",
					float64(e.WindowStart)/float64(sess.Info.Rate), e.Label, e.Score)
			case "detection":
				fmt.Printf("*** detected %q (smoothed %.2f) at %.2fs\n",
					e.Label, e.Score, float64(e.WindowStart)/float64(sess.Info.Rate))
			case "state":
				fmt.Printf("  session %s %s\n", e.Status, e.Reason)
			}
			return nil
		})
	}()

	// Push until the source runs dry or the run is interrupted; the
	// client's retry machinery absorbs 429 backpressure responses.
	chunk := sess.Info.StrideSamples * sess.Info.Axes
	for ctx.Err() == nil {
		frames := src.Next(chunk)
		if frames == nil {
			break
		}
		if _, err := sess.Push(ctx, frames); err != nil {
			if ctx.Err() != nil {
				break // interrupted mid-push: fall through to the graceful close
			}
			return fmt.Errorf("pushing frames: %w", err)
		}
	}
	// Shutdown ordering: close the session first (bounded, surviving the
	// interrupt) so the server flushes queued frames and emits the
	// terminal event, then wait for the tail to deliver it.
	closeCtx, cancelClose := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
	defer cancelClose()
	closed, err := sess.Close(closeCtx)
	if err != nil {
		cancelTail()
		<-tailDone
		return fmt.Errorf("closing stream: %w", err)
	}
	select {
	case err := <-tailDone:
		if err != nil && ctx.Err() == nil {
			return fmt.Errorf("event feed: %w", err)
		}
	case <-closeCtx.Done():
		// The feed never saw the terminal event within the drain budget;
		// release it rather than hang shutdown.
		cancelTail()
		<-tailDone
	}
	fmt.Printf("closed: %d frames in, %d windows, %d detections, %d dropped\n",
		closed.Stats.FramesIn, closed.Stats.Windows, closed.Stats.Detections, closed.Stats.Dropped)
	return nil
}

// buildSource synthesizes the continuous feed for -stream mode at the
// impulse's sample rate.
func buildSource(kind string, rate int, opts streamOpts) (*synth.Source, error) {
	parts := strings.SplitN(kind, ":", 2)
	switch parts[0] {
	case "keyword":
		word := "yes"
		if len(parts) == 2 {
			word = parts[1]
		}
		src, truth, err := synth.NewStreamSource(word, rate, opts.Seconds, opts.Events, 0.02, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, ev := range truth {
			fmt.Printf("  ground truth: %q at %.2fs..%.2fs\n",
				ev.Label, float64(ev.StartSample)/float64(rate), float64(ev.EndSample)/float64(rate))
		}
		return src, nil
	case "vibration":
		fault := len(parts) == 2 && parts[1] == "fault"
		return synth.NewVibrationSource(rate, opts.Seconds, fault, opts.Seed), nil
	default:
		return nil, fmt.Errorf("unknown signal kind %q", kind)
	}
}

// splitLabels parses a comma-separated label list, dropping empties.
func splitLabels(s string) []string {
	var out []string
	for _, l := range strings.Split(s, ",") {
		if l = strings.TrimSpace(l); l != "" {
			out = append(out, l)
		}
	}
	return out
}

func indent(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ei-daemon:", err)
	os.Exit(1)
}
