package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"

	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
)

// fakeStudio is a minimal in-process studio: just enough of the
// streaming session API for runStream to exercise its shutdown path.
type fakeStudio struct {
	mu        sync.Mutex
	pushes    int
	deleted   bool
	firstPush chan struct{} // closed after the first frame batch lands
	closedCh  chan struct{} // closed when DELETE arrives
}

func newFakeStudio() *fakeStudio {
	return &fakeStudio{firstPush: make(chan struct{}), closedCh: make(chan struct{})}
}

func (f *fakeStudio) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/projects/1/stream", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(v1.StreamOpenResponse{
			Success: true, SessionID: "stream-1",
			WindowSamples: 8, StrideSamples: 4, Rate: 8000, Axes: 1,
			Classes: []string{"yes", "noise"},
		})
	})
	mux.HandleFunc("POST /api/v1/projects/1/stream/stream-1/frames", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.pushes++
		if f.pushes == 1 {
			close(f.firstPush)
		}
		n := int64(f.pushes)
		f.mu.Unlock()
		json.NewEncoder(w).Encode(v1.StreamPushResponse{Success: true, FramesIn: n * 4})
	})
	mux.HandleFunc("GET /api/v1/projects/1/stream/stream-1/events", func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.Encode(v1.StreamEvent{Seq: 1, Type: "state", Status: "open"})
		w.(http.Flusher).Flush()
		// The terminal event only exists once the session is closed; a
		// correct daemon keeps this feed alive through SIGTERM until then.
		select {
		case <-f.closedCh:
		case <-r.Context().Done():
			return
		}
		enc.Encode(v1.StreamEvent{Seq: 2, Type: "state", Status: "closed", Reason: "client closed"})
	})
	mux.HandleFunc("DELETE /api/v1/projects/1/stream/stream-1", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		if !f.deleted {
			f.deleted = true
			close(f.closedCh)
		}
		f.mu.Unlock()
		json.NewEncoder(w).Encode(v1.StreamCloseResponse{Success: true})
	})
	return mux
}

// TestRunStreamSIGTERM delivers a real SIGTERM mid-stream and asserts
// the graceful-shutdown ordering: the push loop stops, the session is
// still explicitly closed (DELETE reaches the server, flushing queued
// frames), and the event tail survives the interrupt long enough to
// deliver the terminal event — so runStream returns cleanly instead of
// with a context error.
func TestRunStreamSIGTERM(t *testing.T) {
	f := newFakeStudio()
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	// Interrupt the run as soon as the first frame batch has landed.
	go func() {
		select {
		case <-f.firstPush:
		case <-time.After(10 * time.Second):
		}
		syscall.Kill(os.Getpid(), syscall.SIGTERM)
	}()

	c := client.New(srv.URL, client.WithAPIKey("k"))
	errCh := make(chan error, 1)
	go func() {
		errCh <- runStream(ctx, c, 1, "keyword:yes", streamOpts{
			Seconds: 300, Events: 3, Seed: 1, // far more signal than the test will push
		})
	}()

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("runStream after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runStream did not return after SIGTERM")
	}
	if ctx.Err() == nil {
		t.Fatal("SIGTERM was never delivered")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.deleted {
		t.Fatal("session was not closed (no DELETE) during graceful shutdown")
	}
	if f.pushes == 0 {
		t.Fatal("no frames were pushed before the interrupt")
	}
}
