package main

// Cluster node modes: besides its device-bridge role, ei-daemon can
// join the fleet behind ei-gateway.
//
// Worker — a full API server owning one shard, allocating project IDs
// in its residue class so the gateway's hash-mod map self-routes:
//
//	ei-daemon -worker -listen :4801 -data /var/lib/ei/w0 \
//	          -shard 0 -shards 2 -cluster-token SECRET
//
// Follower — a read-only standby replicating one worker via segment
// shipping + journal tailing, serving reads when its primary is out:
//
//	ei-daemon -follow http://127.0.0.1:4801 -listen :4811 \
//	          -data /var/lib/ei/f0 -shard 0 -shards 2 -cluster-token SECRET

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgepulse/internal/api"
	"edgepulse/internal/cluster"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

// nodeFlags carries the cluster-mode flag values out of main.
type nodeFlags struct {
	worker       bool
	follow       string
	listen       string
	data         string
	shard        int
	shards       int
	name         string
	clusterToken string
	trainWorkers int
	syncInterval time.Duration
}

// runNode hosts a worker or follower until SIGINT/SIGTERM.
func runNode(f nodeFlags) {
	if f.data == "" {
		log.Fatal("ei-daemon: cluster modes require -data DIR (replication needs the durable store)")
	}
	if f.shards <= 0 || f.shard < 0 || f.shard >= f.shards {
		log.Fatalf("ei-daemon: need 0 <= -shard (%d) < -shards (%d)", f.shard, f.shards)
	}
	role := cluster.RoleWorker
	if f.follow != "" {
		role = cluster.RoleFollower
	}
	name := f.name
	if name == "" {
		name = fmt.Sprintf("%s-%d", role, f.shard)
	}

	var registry *project.Registry
	var follower *cluster.Follower
	var err error
	if f.follow != "" {
		registry, err = project.OpenReplica(f.data)
		if err != nil {
			log.Fatal("opening replica state: ", err)
		}
		follower, err = cluster.NewFollower(registry, cluster.FollowerConfig{
			PrimaryURL: f.follow,
			Token:      f.clusterToken,
			Interval:   f.syncInterval,
			Logger:     slog.Default(),
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		registry, err = project.Open(f.data)
		if err != nil {
			log.Fatal("opening state: ", err)
		}
		// Stride project IDs over the shard count so every ID this
		// worker mints hash-routes back to it.
		registry.SetProjectIDStride(f.shard, f.shards)
	}
	defer registry.Close()

	sched := jobs.NewScheduler(jobs.Config{
		MinWorkers: 1, MaxWorkers: f.trainWorkers,
		QueueSize: 64, MaxQueuedPerTag: 16,
	})
	defer sched.Shutdown()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	server := api.NewServer(registry, sched,
		api.WithLogger(logger),
		api.WithClusterNode(name, role, f.shard, f.shards),
		api.WithClusterToken(f.clusterToken),
	)
	defer server.Close()

	if follower != nil {
		follower.Start()
		defer follower.Stop()
	}

	httpSrv := &http.Server{Addr: f.listen, Handler: server.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Printf("\n%s: draining and shutting down\n", name)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Drain(ctx); err != nil {
			log.Println("draining:", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Println("http shutdown:", err)
		}
	}()

	if f.follow != "" {
		fmt.Printf("%s replicating %s, serving reads on %s (shard %d/%d)\n",
			name, f.follow, f.listen, f.shard, f.shards)
	} else {
		fmt.Printf("%s listening on %s (shard %d of %d)\n", name, f.listen, f.shard, f.shards)
	}
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if f.follow == "" {
		if err := registry.Save(f.data); err != nil {
			log.Println("saving state:", err)
		}
	}
}
