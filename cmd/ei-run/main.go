// Command ei-run executes a deployed EIM artifact, either classifying an
// input file directly or serving the model behind a Unix socket with the
// EIM runner protocol — the Linux deployment path of paper Sec. 4.6.
//
// Usage:
//
//	ei-run -model model.eim classify input.wav
//	ei-run -model model.eim -quantized classify input.csv
//	ei-run -model model.eim serve /tmp/model.sock
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"

	"edgepulse/internal/core"
	"edgepulse/internal/deploy"
	"edgepulse/internal/dsp"
	"edgepulse/internal/eim"
	"edgepulse/internal/wav"
)

func main() {
	modelPath := flag.String("model", "", "path to .eim artifact")
	quantized := flag.Bool("quantized", false, "use the int8 model")
	flag.Parse()
	args := flag.Args()
	if *modelPath == "" || len(args) < 1 {
		usage()
	}
	blob, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	imp, err := deploy.ParseEIM(blob)
	if err != nil {
		fatal(err)
	}
	switch args[0] {
	case "classify":
		if len(args) != 2 {
			usage()
		}
		if err := classify(imp, args[1], *quantized); err != nil {
			fatal(err)
		}
	case "serve":
		if len(args) != 2 {
			usage()
		}
		srv, err := eim.NewServer(imp)
		if err != nil {
			fatal(err)
		}
		os.Remove(args[1])
		ln, err := net.Listen("unix", args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving %s on %s\n", imp.Name, args[1])
		if err := srv.Serve(ln); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

// classify loads the input file, runs the impulse, and prints scores.
func classify(imp *core.Impulse, path string, quantized bool) error {
	sig, err := loadSignal(path)
	if err != nil {
		return err
	}
	var res core.ClassResult
	if quantized {
		res, err = imp.ClassifyQuantized(sig)
	} else {
		res, err = imp.Classify(sig)
	}
	if err != nil {
		return err
	}
	classes := make([]string, 0, len(res.Scores))
	for c := range res.Scores {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		marker := "  "
		if c == res.Label {
			marker = "->"
		}
		fmt.Printf("%s %-16s %.4f\n", marker, c, res.Scores[c])
	}
	if imp.Anomaly != nil {
		fmt.Printf("   anomaly score    %.3f\n", res.AnomalyScore)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ei-run -model model.eim [-quantized] <classify input.(wav|csv) | serve socket>")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ei-run:", err)
	os.Exit(1)
}

// loadSignal reads a WAV or CSV file into a signal.
func loadSignal(path string) (dsp.Signal, error) {
	f, err := os.Open(path)
	if err != nil {
		return dsp.Signal{}, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".wav") {
		a, err := wav.Decode(f)
		if err != nil {
			return dsp.Signal{}, err
		}
		return dsp.Signal{Data: a.Samples, Rate: a.Rate, Axes: a.Channels}, nil
	}
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return dsp.Signal{}, err
	}
	if len(rows) == 0 {
		return dsp.Signal{}, fmt.Errorf("empty csv")
	}
	start := 0
	if _, err := strconv.ParseFloat(rows[0][0], 64); err != nil {
		start = 1
	}
	axes := len(rows[start]) - 1
	var data []float32
	for _, row := range rows[start:] {
		for a := 1; a <= axes; a++ {
			v, err := strconv.ParseFloat(row[a], 64)
			if err != nil {
				return dsp.Signal{}, err
			}
			data = append(data, float32(v))
		}
	}
	return dsp.Signal{Data: data, Axes: axes, Rate: 0}, nil
}
