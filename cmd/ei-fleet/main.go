// Command ei-fleet is the macro load harness CLI: it storms a live
// target — a running daemon, a gateway fronting a worker fleet, or an
// in-process daemon it boots itself — with M synthetic devices running
// a configurable scenario mix, then prints the per-op latency/shed
// breakdown and detection-recall scoreboard.
//
// Usage:
//
//	ei-fleet                              storm an in-process daemon
//	ei-fleet -target http://host:4800     storm a running target
//	ei-fleet -devices 32 -ops 8           bigger fleet
//	ei-fleet -mix classify=4,stream=2     custom scenario mix
//	ei-fleet -out FLEET_STAMP.json        write the committed record
//	ei-fleet -check                       exit 1 on SLO violations
//
// Runs are deterministic from -seed: the same devices replay the same
// uploads, windows and embedded utterances on every invocation.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgepulse/internal/api"
	"edgepulse/internal/fleet"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

func main() {
	target := flag.String("target", "", "base URL of a running daemon or gateway (empty = boot an in-process daemon)")
	devices := flag.Int("devices", 8, "number of synthetic devices")
	ops := flag.Int("ops", 4, "scenario iterations per device")
	seed := flag.Int64("seed", 42, "base seed; device i storms with synth.Derive(seed, i)")
	mixSpec := flag.String("mix", "", "scenario mix weights, e.g. classify=4,stream=1 (empty = default mix)")
	concurrency := flag.Int("concurrency", 0, "max devices in flight at once (0 = all)")
	quantized := flag.Bool("quantized", false, "serve the int8 model instead of float32")
	streamSeconds := flag.Float64("stream-seconds", 0, "seconds of audio per streaming session (0 = default)")
	streamEvents := flag.Int("stream-events", 0, "embedded utterances per streaming session (0 = default)")
	out := flag.String("out", "", "write the result as a FLEET record (STAMP expands to a UTC timestamp)")
	check := flag.Bool("check", false, "evaluate the default SLO and exit 1 on violations")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	cfg := fleet.Config{
		Devices:       *devices,
		OpsPerDevice:  *ops,
		Seed:          *seed,
		Concurrency:   *concurrency,
		Quantized:     *quantized,
		StreamSeconds: *streamSeconds,
		StreamEvents:  *streamEvents,
	}
	if *mixSpec != "" {
		mix, err := fleet.ParseMix(*mixSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Mix = mix
	}

	url := *target
	if url == "" {
		shutdown, addr, err := startInproc()
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		url = addr
		fmt.Printf("in-process daemon listening on %s\n", url)
	}

	res, err := fleet.Run(ctx, url, cfg)
	if err != nil {
		fatal(err)
	}
	report(res)

	if *out != "" {
		path, err := fleet.WriteRecord(*out, res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nrecord written to %s\n", path)
	}
	if *check {
		if v := res.Violations(fleet.DefaultSLO()); len(v) > 0 {
			fmt.Fprintln(os.Stderr, "\nSLO violations:")
			for _, line := range v {
				fmt.Fprintf(os.Stderr, "  %s\n", line)
			}
			os.Exit(1)
		}
		fmt.Println("\nSLO: ok")
	}
}

// startInproc boots a full platform on a loopback port: same wiring as
// cmd/ei-studio, but rate limits off so the harness measures the
// platform rather than its own API-key budget.
func startInproc() (shutdown func(), url string, err error) {
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{
		MinWorkers:    2,
		MaxWorkers:    4,
		QueueSize:     64,
		ScaleInterval: 50 * time.Millisecond,
	})
	server := api.NewServer(registry, sched, api.WithRateLimit(0, 0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sched.Shutdown()
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: server.Handler()}
	go httpSrv.Serve(ln)
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		sched.Shutdown()
	}
	return shutdown, "http://" + ln.Addr().String(), nil
}

// report prints the scoreboard: one row per op, then recall and the
// target's goroutine/heap movement.
func report(res *fleet.Result) {
	fmt.Printf("target    %s\n", res.Target)
	fmt.Printf("fleet     %d devices x %d ops, seed %d, mix %s\n",
		res.Config.Devices, res.Config.OpsPerDevice, res.Config.Seed, mixString(res.Config.Mix))
	fmt.Printf("timing    setup %.2fs, storm %.2fs\n\n", res.SetupSeconds, res.WallSeconds)

	fmt.Printf("%-15s %7s %7s %9s %9s %9s %9s %6s %6s\n",
		"op", "count", "ops/s", "p50 ms", "p95 ms", "p99 ms", "max ms", "shed", "hard")
	for _, o := range res.Ops {
		fmt.Printf("%-15s %7d %7.1f %9.2f %9.2f %9.2f %9.2f %6d %6d\n",
			o.Op, o.Count, o.OpsPerSec, o.P50MS, o.P95MS, o.P99MS, o.MaxMS, o.Shed, o.HardErrors)
	}

	if res.Recall.Sessions > 0 {
		fmt.Printf("\nrecall    %d/%d utterances over %d sessions (%.3f), %d missed, %d false\n",
			res.Recall.Detected, res.Recall.Events, res.Recall.Sessions,
			res.Recall.Recall, res.Recall.Missed, res.Recall.False)
	}
	if res.TargetDelta.Available {
		fmt.Printf("target Δ  %+d goroutines, %+.1f KiB heap\n",
			res.TargetDelta.Goroutines, float64(res.TargetDelta.HeapAllocBytes)/1024)
	}
}

// mixString renders a Mix as the -mix flag syntax.
func mixString(m fleet.Mix) string {
	weights := map[string]int{
		"upload": m.Upload, "classify": m.Classify, "batch": m.Batch,
		"stream": m.Stream, "train": m.Train, "tune": m.Tune,
	}
	var s string
	for _, name := range fleet.Scenarios() {
		if weights[name] > 0 {
			if s != "" {
				s += ","
			}
			s += fmt.Sprintf("%s=%d", name, weights[name])
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ei-fleet:", err)
	os.Exit(1)
}
