package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed `go test -bench` line: the metrics tracked
// across PRs so performance regressions are visible in version control.
type BenchResult struct {
	// Name is the benchmark name with the -<GOMAXPROCS> suffix removed.
	Name string `json:"name"`
	// Pkg is the package under test (from the preceding "pkg:" line).
	Pkg string `json:"pkg,omitempty"`
	// Runs is the measured iteration count.
	Runs int64 `json:"runs"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra ReportMetric units (e.g. planned_bytes).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchFile is the schema of a committed BENCH_<stamp>.json.
type BenchFile struct {
	Stamp      string        `json:"stamp"`
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// parseBench reads `go test -bench -benchmem` output and collects every
// benchmark line with its package context and metric pairs.
func parseBench(r io.Reader) (*BenchFile, error) {
	out := &BenchFile{Stamp: time.Now().UTC().Format("20060102-150405")}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "goos:"):
			out.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := BenchResult{Name: name, Pkg: pkg, Runs: runs}
		// The rest of the line is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				n := int64(v)
				b.BytesPerOp = &n
			case "allocs/op":
				n := int64(v)
				b.AllocsPerOp = &n
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[strings.TrimSuffix(fields[i+1], "/op")] = v
			}
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return out, nil
}

// emitBenchJSON parses benchmark text from r and writes the JSON file.
// When path contains the literal placeholder "STAMP" it is replaced by
// the UTC timestamp, yielding the BENCH_<stamp>.json series.
func emitBenchJSON(r io.Reader, path string) error {
	bf, err := parseBench(r)
	if err != nil {
		return err
	}
	path = strings.ReplaceAll(path, "STAMP", bf.Stamp)
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ei-bench: wrote %d benchmarks to %s\n", len(bf.Benchmarks), path)
	return nil
}
