// Command ei-bench regenerates every table and figure of the paper's
// evaluation section (Sec. 5) from this repository's implementation.
//
// Usage:
//
//	ei-bench -list             enumerate experiments
//	ei-bench -run table2       regenerate one experiment
//	ei-bench                   regenerate everything
//	ei-bench -quick            smaller budgets (fast CI runs)
//	ei-bench -out results      also write results/<id>.txt files
//
// It also converts `go test -bench` output into the repository's
// committed benchmark trajectory files (see scripts/bench.sh):
//
//	go test -run '^$' -bench . -benchmem ./... | ei-bench -bench-json BENCH_STAMP.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"edgepulse/internal/bench"
	"edgepulse/internal/tuner"
)

type experiment struct {
	id    string
	title string
	run   func(quick bool, seed int64) (string, error)
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "run a single experiment (table1..table5, fig1..fig3)")
	quick := flag.Bool("quick", false, "reduced budgets for quick runs")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "directory to write per-experiment outputs")
	benchJSON := flag.String("bench-json", "", "parse `go test -bench` output from stdin into the given JSON file (STAMP expands to a UTC timestamp)")
	flag.Parse()

	if *benchJSON != "" {
		if err := emitBenchJSON(os.Stdin, *benchJSON); err != nil {
			fatal(err)
		}
		return
	}

	// Table 3 trials feed Fig. 3; cache them across experiments.
	var cachedTrials []tuner.Trial
	table3 := func(q bool, s int64) (string, []tuner.Trial, error) {
		rendered, trials, err := bench.Table3(bench.Table3Options{Quick: q, Seed: s})
		if err == nil {
			cachedTrials = trials
		}
		return rendered, trials, err
	}

	experiments := []experiment{
		{"table1", "Evaluation platforms", func(q bool, s int64) (string, error) {
			return bench.Table1(), nil
		}},
		{"table2", "Cross-hardware latency (float32 vs int8, 3 boards)", func(q bool, s int64) (string, error) {
			rendered, _, err := bench.Table2()
			return rendered, err
		}},
		{"table3", "EON Tuner exploration (KWS)", func(q bool, s int64) (string, error) {
			rendered, _, err := table3(q, s)
			return rendered, err
		}},
		{"table4", "Memory estimation (TFLM vs EON, float vs int8)", func(q bool, s int64) (string, error) {
			rendered, _, err := bench.Table4()
			if err != nil {
				return "", err
			}
			_, accTable, err := bench.AccuracyProxies(s)
			if err != nil {
				return "", err
			}
			return rendered + "\n" + accTable, nil
		}},
		{"table5", "MLOps platform feature comparison", func(q bool, s int64) (string, error) {
			return bench.Table5(), nil
		}},
		{"fig1", "Workflow challenges and features", func(q bool, s int64) (string, error) {
			return bench.Fig1(), nil
		}},
		{"fig2", "Impulse dataflow view", func(q bool, s int64) (string, error) {
			return bench.Fig2(), nil
		}},
		{"fig3", "EON Tuner result view", func(q bool, s int64) (string, error) {
			if cachedTrials == nil {
				_, _, err := table3(q, s)
				if err != nil {
					return "", err
				}
			}
			return bench.Fig3(cachedTrials), nil
		}},
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.id, e.title)
		}
		return
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	ran := 0
	for _, e := range experiments {
		if *run != "" && !strings.EqualFold(*run, e.id) {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		rendered, err := e.run(*quick, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.id, err))
		}
		fmt.Println(rendered)
		if *out != "" {
			path := filepath.Join(*out, e.id+".txt")
			if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q (use -list)", *run))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ei-bench:", err)
	os.Exit(1)
}
