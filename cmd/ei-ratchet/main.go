// Command ei-ratchet is the performance ratchet: it compares the newest
// committed BENCH_<stamp>.json record against the best (lowest ns/op)
// each named hot-path benchmark achieved across the preceding window of
// records, and fails when the newest regresses beyond the threshold.
// Run it in CI so a PR cannot land a benchmark record that quietly
// gives back the latency the optimization PRs bought.
//
// Comparing against the best-of-window rather than only the previous
// record prevents self-baselining: two consecutive slow records would
// otherwise ratify each other, eroding the ratchet one PR at a time.
//
// It also gates the FLEET_<stamp>.json macro-load records the same
// way: absolute resilience invariants on the newest record plus a
// best-of-window ratchet on per-op p99 latency and hard-error rate
// (see fleet.go).
//
// Usage:
//
//	go run ./cmd/ei-ratchet                 # newest vs best of last 5 in .
//	go run ./cmd/ei-ratchet -threshold 10 -window 3
//	go run ./cmd/ei-ratchet -bench BenchmarkFFT256,BenchmarkDenseForward
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// hotPaths are the benchmarks the ratchet guards by default: the
// kernel, DSP, storage and streaming measurements behind the paper's
// latency tables. Table/figure reproduction benchmarks are excluded —
// they measure scenario composition, not a single hot path.
var hotPaths = []string{
	"BenchmarkConv2DForward",
	"BenchmarkConv2DPointwiseSeq",
	"BenchmarkDenseForward",
	"BenchmarkFFT256",
	"BenchmarkMFE1s16k",
	"BenchmarkMFCC1s16k",
	"BenchmarkAblationEONCompiled",
	"BenchmarkAblationInt8Kernels",
	"BenchmarkAblationFloatKernels",
	"BenchmarkClassifySingle",
	"BenchmarkClassifyBatch32",
	"BenchmarkPersistSample/store/resident=1000",
	"BenchmarkStreamWindow",
}

// benchFile mirrors the subset of cmd/ei-bench's schema the ratchet
// needs.
type benchFile struct {
	Stamp      string `json:"stamp"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

func (f *benchFile) byName() map[string]float64 {
	m := make(map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[b.Name] = b.NsPerOp
	}
	return m
}

// loadSeries parses every BENCH_*.json in dir, ordered oldest to
// newest by the embedded stamp (lexicographic: the stamps are
// YYYYMMDD-HHMMSS).
func loadSeries(dir string) ([]benchFile, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var series []benchFile
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if f.Stamp == "" {
			return nil, fmt.Errorf("%s: missing stamp", p)
		}
		series = append(series, f)
	}
	sort.Slice(series, func(i, j int) bool { return series[i].Stamp < series[j].Stamp })
	return series, nil
}

// delta is one watched benchmark's movement between two records.
type delta struct {
	Name       string
	Prev, Cur  float64 // ns/op; 0 when absent from that record
	ChangePct  float64
	Regressed  bool
	Incomplete bool // absent from one side, nothing to compare
}

// compare diffs cur against prev for the named benchmarks. A benchmark
// missing from either record is reported Incomplete rather than
// failed: bench runs are allowed to grow coverage over time, and an
// older record naturally lacks newer benchmarks.
func compare(prev, cur map[string]float64, names []string, thresholdPct float64) []delta {
	deltas := make([]delta, 0, len(names))
	for _, name := range names {
		d := delta{Name: name, Prev: prev[name], Cur: cur[name]}
		if d.Prev <= 0 || d.Cur <= 0 {
			d.Incomplete = true
		} else {
			d.ChangePct = (d.Cur - d.Prev) / d.Prev * 100
			d.Regressed = d.ChangePct > thresholdPct
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// bestOfWindow folds the per-benchmark minimum ns/op over a slice of
// records: the strongest number each benchmark ever posted in the
// window, which is what the newest record has to live up to.
func bestOfWindow(records []benchFile) map[string]float64 {
	best := make(map[string]float64)
	for _, f := range records {
		for name, ns := range f.byName() {
			if ns <= 0 {
				continue
			}
			if cur, ok := best[name]; !ok || ns < cur {
				best[name] = ns
			}
		}
	}
	return best
}

func run(dir string, names []string, thresholdPct float64, window int, out *strings.Builder) (failed bool, err error) {
	series, err := loadSeries(dir)
	if err != nil {
		return false, err
	}
	if len(series) < 2 {
		fmt.Fprintf(out, "ei-ratchet: %d benchmark record(s) in %s, nothing to compare\n", len(series), dir)
		return false, nil
	}
	if window < 1 {
		window = 1
	}
	cur := series[len(series)-1]
	lo := len(series) - 1 - window
	if lo < 0 {
		lo = 0
	}
	baseline := series[lo : len(series)-1]
	fmt.Fprintf(out, "ei-ratchet: best of %s..%s -> %s (threshold +%.0f%% ns/op)\n",
		baseline[0].Stamp, baseline[len(baseline)-1].Stamp, cur.Stamp, thresholdPct)
	for _, d := range compare(bestOfWindow(baseline), cur.byName(), names, thresholdPct) {
		switch {
		case d.Incomplete:
			fmt.Fprintf(out, "  skip %-45s absent from one record\n", d.Name)
		case d.Regressed:
			failed = true
			fmt.Fprintf(out, "  FAIL %-45s %.0f -> %.0f ns/op (%+.1f%%)\n", d.Name, d.Prev, d.Cur, d.ChangePct)
		default:
			fmt.Fprintf(out, "  ok   %-45s %.0f -> %.0f ns/op (%+.1f%%)\n", d.Name, d.Prev, d.Cur, d.ChangePct)
		}
	}
	return failed, nil
}

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json and FLEET_*.json series")
	threshold := flag.Float64("threshold", 15, "max allowed ns/op regression, percent")
	window := flag.Int("window", 5, "how many preceding records form the best-of baseline")
	bench := flag.String("bench", "", "comma-separated benchmark names to guard (default: built-in hot-path list)")
	fleetThreshold := flag.Float64("fleet-threshold", 25, "max allowed fleet p99 regression, percent")
	flag.Parse()

	names := hotPaths
	if *bench != "" {
		names = nil
		for _, n := range strings.Split(*bench, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	var out strings.Builder
	failed, err := run(*dir, names, *threshold, *window, &out)
	if err == nil {
		var fleetFailed bool
		fleetFailed, err = runFleet(*dir, *fleetThreshold, *window, &out)
		failed = failed || fleetFailed
	}
	os.Stdout.WriteString(out.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ei-ratchet: %v\n", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "ei-ratchet: regression above threshold")
		os.Exit(1)
	}
}
