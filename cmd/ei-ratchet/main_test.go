package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, stamp string, ns map[string]float64) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"stamp":"` + stamp + `","benchmarks":[`)
	first := true
	for name, v := range ns {
		if !first {
			sb.WriteString(",")
		}
		first = false
		sb.WriteString(`{"name":"` + name + `","ns_per_op":` + strconv.FormatFloat(v, 'f', -1, 64) + `}`)
	}
	sb.WriteString(`]}`)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+stamp+".json"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareFlagsOnlyThresholdBreaches(t *testing.T) {
	prev := map[string]float64{"A": 100, "B": 100, "C": 100}
	cur := map[string]float64{"A": 114, "B": 116, "C": 80}
	ds := compare(prev, cur, []string{"A", "B", "C"}, 15)
	if ds[0].Regressed || ds[0].Incomplete {
		t.Fatalf("+14%% within threshold flagged: %+v", ds[0])
	}
	if !ds[1].Regressed {
		t.Fatalf("+16%% not flagged: %+v", ds[1])
	}
	if ds[2].Regressed || ds[2].ChangePct > -19 {
		t.Fatalf("improvement mishandled: %+v", ds[2])
	}
}

func TestCompareMissingBenchmarkIsIncompleteNotFailed(t *testing.T) {
	ds := compare(map[string]float64{"A": 100}, map[string]float64{"B": 50}, []string{"A", "B"}, 15)
	for _, d := range ds {
		if !d.Incomplete || d.Regressed {
			t.Fatalf("missing side must be incomplete: %+v", d)
		}
	}
}

func TestRunComparesTwoNewestByStamp(t *testing.T) {
	dir := t.TempDir()
	// An old record with a terrible number must be ignored: only the
	// two newest stamps participate.
	writeBench(t, dir, "20260101-000000", map[string]float64{"BenchmarkFFT256": 10})
	writeBench(t, dir, "20260201-000000", map[string]float64{"BenchmarkFFT256": 1000})
	writeBench(t, dir, "20260301-000000", map[string]float64{"BenchmarkFFT256": 1100})

	var out strings.Builder
	failed, err := run(dir, []string{"BenchmarkFFT256"}, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("+10%% against the previous stamp flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "20260201-000000 -> 20260301-000000") {
		t.Fatalf("wrong pair compared:\n%s", out.String())
	}

	// A fourth record with a >15% jump trips the ratchet.
	writeBench(t, dir, "20260401-000000", map[string]float64{"BenchmarkFFT256": 1400})
	out.Reset()
	failed, err = run(dir, []string{"BenchmarkFFT256"}, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("+27%% regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkFFT256") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
}

func TestRunWithFewerThanTwoRecordsPasses(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	failed, err := run(dir, hotPaths, 15, &out)
	if err != nil || failed {
		t.Fatalf("empty dir: failed=%v err=%v", failed, err)
	}
	writeBench(t, dir, "20260101-000000", map[string]float64{"BenchmarkFFT256": 10})
	failed, err = run(dir, hotPaths, 15, &out)
	if err != nil || failed {
		t.Fatalf("single record: failed=%v err=%v", failed, err)
	}
}

func TestRunRejectsMalformedRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := run(dir, hotPaths, 15, &out); err == nil {
		t.Fatal("malformed record accepted")
	}
}

// TestRatchetAgainstCommittedSeries runs the real hot-path list over
// the repository's committed BENCH_*.json files: the ratchet must hold
// on the actual series CI will diff.
func TestRatchetAgainstCommittedSeries(t *testing.T) {
	var out strings.Builder
	failed, err := run("../..", hotPaths, 15, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("committed benchmark series breaches the ratchet:\n%s", out.String())
	}
}
