package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, stamp string, ns map[string]float64) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"stamp":"` + stamp + `","benchmarks":[`)
	first := true
	for name, v := range ns {
		if !first {
			sb.WriteString(",")
		}
		first = false
		sb.WriteString(`{"name":"` + name + `","ns_per_op":` + strconv.FormatFloat(v, 'f', -1, 64) + `}`)
	}
	sb.WriteString(`]}`)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+stamp+".json"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareFlagsOnlyThresholdBreaches(t *testing.T) {
	prev := map[string]float64{"A": 100, "B": 100, "C": 100}
	cur := map[string]float64{"A": 114, "B": 116, "C": 80}
	ds := compare(prev, cur, []string{"A", "B", "C"}, 15)
	if ds[0].Regressed || ds[0].Incomplete {
		t.Fatalf("+14%% within threshold flagged: %+v", ds[0])
	}
	if !ds[1].Regressed {
		t.Fatalf("+16%% not flagged: %+v", ds[1])
	}
	if ds[2].Regressed || ds[2].ChangePct > -19 {
		t.Fatalf("improvement mishandled: %+v", ds[2])
	}
}

func TestCompareMissingBenchmarkIsIncompleteNotFailed(t *testing.T) {
	ds := compare(map[string]float64{"A": 100}, map[string]float64{"B": 50}, []string{"A", "B"}, 15)
	for _, d := range ds {
		if !d.Incomplete || d.Regressed {
			t.Fatalf("missing side must be incomplete: %+v", d)
		}
	}
}

func TestRunComparesNewestAgainstBestOfWindow(t *testing.T) {
	dir := t.TempDir()
	// Two slow records after a fast one: with a best-of-window baseline
	// the slow pair cannot ratify each other — the newest is still held
	// to the 100 ns/op the benchmark once achieved.
	writeBench(t, dir, "20260101-000000", map[string]float64{"BenchmarkFFT256": 100})
	writeBench(t, dir, "20260201-000000", map[string]float64{"BenchmarkFFT256": 130})
	writeBench(t, dir, "20260301-000000", map[string]float64{"BenchmarkFFT256": 132})

	var out strings.Builder
	failed, err := run(dir, []string{"BenchmarkFFT256"}, 15, 5, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("+32%% over the window best self-baselined past the ratchet:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkFFT256") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "best of 20260101-000000..20260201-000000 -> 20260301-000000") {
		t.Fatalf("wrong baseline window:\n%s", out.String())
	}

	// Within threshold of the best: passes.
	writeBench(t, dir, "20260401-000000", map[string]float64{"BenchmarkFFT256": 110})
	out.Reset()
	failed, err = run(dir, []string{"BenchmarkFFT256"}, 15, 5, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("+10%% over the window best flagged:\n%s", out.String())
	}
}

func TestRunWindowBoundsBaseline(t *testing.T) {
	dir := t.TempDir()
	// A stale record outside the window must not pin the baseline
	// forever: with window=2 only the two records preceding the newest
	// participate.
	writeBench(t, dir, "20260101-000000", map[string]float64{"BenchmarkFFT256": 10})
	writeBench(t, dir, "20260201-000000", map[string]float64{"BenchmarkFFT256": 1000})
	writeBench(t, dir, "20260301-000000", map[string]float64{"BenchmarkFFT256": 1010})
	writeBench(t, dir, "20260401-000000", map[string]float64{"BenchmarkFFT256": 1050})

	var out strings.Builder
	failed, err := run(dir, []string{"BenchmarkFFT256"}, 15, 2, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("record outside window=2 still pins the baseline:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "best of 20260201-000000..20260301-000000") {
		t.Fatalf("wrong baseline window:\n%s", out.String())
	}
}

func TestBestOfWindowFoldsMinimumPerBenchmark(t *testing.T) {
	best := bestOfWindow([]benchFile{
		{Stamp: "a", Benchmarks: []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		}{{"A", 100}, {"B", 50}}},
		{Stamp: "b", Benchmarks: []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		}{{"A", 80}, {"C", 0}}},
	})
	if best["A"] != 80 || best["B"] != 50 {
		t.Fatalf("bestOfWindow = %v", best)
	}
	if _, ok := best["C"]; ok {
		t.Fatalf("non-positive sample entered the baseline: %v", best)
	}
}

func TestRunWithFewerThanTwoRecordsPasses(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	failed, err := run(dir, hotPaths, 15, 5, &out)
	if err != nil || failed {
		t.Fatalf("empty dir: failed=%v err=%v", failed, err)
	}
	writeBench(t, dir, "20260101-000000", map[string]float64{"BenchmarkFFT256": 10})
	failed, err = run(dir, hotPaths, 15, 5, &out)
	if err != nil || failed {
		t.Fatalf("single record: failed=%v err=%v", failed, err)
	}
}

func TestRunRejectsMalformedRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := run(dir, hotPaths, 15, 5, &out); err == nil {
		t.Fatal("malformed record accepted")
	}
}

// TestRatchetAgainstCommittedSeries runs the real hot-path list over
// the repository's committed BENCH_*.json files: the ratchet must hold
// on the actual series CI will diff.
func TestRatchetAgainstCommittedSeries(t *testing.T) {
	var out strings.Builder
	failed, err := run("../..", hotPaths, 15, 5, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("committed benchmark series breaches the ratchet:\n%s", out.String())
	}
}
