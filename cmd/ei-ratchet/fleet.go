package main

import (
	"fmt"
	"strings"

	"edgepulse/internal/fleet"
)

// fleetSlackMS is the absolute p99 movement a fleet op must show, on
// top of the percentage threshold, before the gate fails. Fleet p99s
// are single-digit milliseconds for the fast ops, where a few percent
// is scheduler noise; the slack keeps the gate about real regressions.
const fleetSlackMS = 5.0

// fleetRateMargin is the absolute hard-error-rate increase allowed
// over the best record in the window (one percentage point).
const fleetRateMargin = 0.01

// runFleet gates the committed FLEET_*.json series the macro load
// harness emits (internal/fleet, cmd/ei-fleet).
//
// The newest record must hold two absolute invariants regardless of
// history: no shed response may be missing its Retry-After hint, and
// no interactive op may have been refused with "overloaded" — those
// are resilience-contract violations, not regressions.
//
// With at least two records, the newest additionally ratchets against
// the best of the preceding window: each op's p99 may not exceed the
// window's best p99 by more than thresholdPct percent AND fleetSlackMS
// milliseconds, and its hard-error rate may not exceed the window's
// best by more than fleetRateMargin. Zero or one record passes — the
// series is allowed to start somewhere.
func runFleet(dir string, thresholdPct float64, window int, out *strings.Builder) (failed bool, err error) {
	series, err := fleet.LoadRecords(dir)
	if err != nil {
		return false, err
	}
	if len(series) == 0 {
		fmt.Fprintf(out, "ei-ratchet: no fleet records in %s, skipping fleet gate\n", dir)
		return false, nil
	}
	cur := series[len(series)-1]
	fmt.Fprintf(out, "ei-ratchet: fleet record %s (threshold +%.0f%% p99, +%.0fms slack)\n",
		cur.Stamp, thresholdPct, fleetSlackMS)

	interactive := make(map[string]bool, len(fleet.InteractiveOps))
	for _, op := range fleet.InteractiveOps {
		interactive[op] = true
	}
	for _, o := range cur.Ops {
		if o.ShedNoRetryAfter > 0 {
			failed = true
			fmt.Fprintf(out, "  FAIL %-15s %d shed responses without Retry-After\n", o.Op, o.ShedNoRetryAfter)
		}
		if n := o.ByCode["overloaded"]; interactive[o.Op] && n > 0 {
			failed = true
			fmt.Fprintf(out, "  FAIL %-15s %d interactive requests shed overloaded\n", o.Op, n)
		}
	}

	if len(series) < 2 {
		fmt.Fprintf(out, "  single record, no trajectory to compare\n")
		return failed, nil
	}
	if window < 1 {
		window = 1
	}
	lo := len(series) - 1 - window
	if lo < 0 {
		lo = 0
	}
	baseline := series[lo : len(series)-1]
	fmt.Fprintf(out, "  best of %s..%s -> %s\n",
		baseline[0].Stamp, baseline[len(baseline)-1].Stamp, cur.Stamp)

	bestP99 := make(map[string]float64)
	bestRate := make(map[string]float64)
	for _, rec := range baseline {
		for _, o := range rec.Ops {
			if o.P99MS > 0 {
				if b, ok := bestP99[o.Op]; !ok || o.P99MS < b {
					bestP99[o.Op] = o.P99MS
				}
			}
			rate := o.HardErrorRate()
			if b, ok := bestRate[o.Op]; !ok || rate < b {
				bestRate[o.Op] = rate
			}
		}
	}

	for _, o := range cur.Ops {
		best, ok := bestP99[o.Op]
		if !ok || o.P99MS <= 0 {
			fmt.Fprintf(out, "  skip %-15s absent from baseline window\n", o.Op)
			continue
		}
		change := (o.P99MS - best) / best * 100
		if change > thresholdPct && o.P99MS-best > fleetSlackMS {
			failed = true
			fmt.Fprintf(out, "  FAIL %-15s p99 %.2f -> %.2f ms (%+.1f%%)\n", o.Op, best, o.P99MS, change)
		} else {
			fmt.Fprintf(out, "  ok   %-15s p99 %.2f -> %.2f ms (%+.1f%%)\n", o.Op, best, o.P99MS, change)
		}
		if rate, bestR := o.HardErrorRate(), bestRate[o.Op]; rate > bestR+fleetRateMargin {
			failed = true
			fmt.Fprintf(out, "  FAIL %-15s hard-error rate %.4f above best %.4f + %.2f\n",
				o.Op, rate, bestR, fleetRateMargin)
		}
	}
	return failed, nil
}
