package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgepulse/internal/fleet"
)

func writeFleet(t *testing.T, dir, stamp string, ops []fleet.OpStats) {
	t.Helper()
	rec := fleet.Record{
		Stamp: stamp, GoOS: "linux", GoArch: "amd64",
		Result: fleet.Result{Target: "http://test", Ops: ops},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "FLEET_"+stamp+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFleetGateEmptyAndSingleRecordPass(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	failed, err := runFleet(dir, 25, 5, &out)
	if err != nil || failed {
		t.Fatalf("empty dir: failed=%v err=%v", failed, err)
	}
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{
		{Op: fleet.OpClassify, Count: 100, P99MS: 12},
	})
	failed, err = runFleet(dir, 25, 5, &out)
	if err != nil || failed {
		t.Fatalf("single clean record: failed=%v err=%v\n%s", failed, err, out.String())
	}
}

func TestFleetGateAbsoluteInvariants(t *testing.T) {
	// Retry-After missing from a shed response fails even on the very
	// first record — it's a contract violation, not a regression.
	dir := t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{
		{Op: fleet.OpUpload, Count: 10, Shed: 1, ShedNoRetryAfter: 1},
	})
	var out strings.Builder
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || !failed {
		t.Fatalf("missing Retry-After passed: failed=%v err=%v", failed, err)
	}

	// Interactive traffic refused with "overloaded" is equally fatal.
	dir = t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{
		{Op: fleet.OpClassify, Count: 10, Shed: 2, ByCode: map[string]int64{"overloaded": 2}},
	})
	out.Reset()
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || !failed {
		t.Fatalf("interactive overloaded shed passed: failed=%v err=%v", failed, err)
	}

	// The same code on a batch op is fine: batch is sheddable by design.
	dir = t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{
		{Op: fleet.OpTrain, Count: 10, Shed: 2, ByCode: map[string]int64{"overloaded": 2}},
	})
	out.Reset()
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || failed {
		t.Fatalf("batch overloaded shed failed the gate: %s", out.String())
	}
}

func TestFleetGateP99Ratchet(t *testing.T) {
	dir := t.TempDir()
	// Best-of-window: the 10ms record is the baseline even though a
	// slower record follows it.
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 10}})
	writeFleet(t, dir, "20260201-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 14}})
	writeFleet(t, dir, "20260301-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 30}})
	var out strings.Builder
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || !failed {
		t.Fatalf("p99 10 -> 30ms passed: failed=%v err=%v\n%s", failed, err, out.String())
	}

	// Within threshold: 10 -> 12ms is +20%.
	dir = t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 10}})
	writeFleet(t, dir, "20260201-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 12}})
	out.Reset()
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || failed {
		t.Fatalf("+20%% flagged: %s", out.String())
	}

	// Past the percentage but under the absolute slack: 0.5 -> 4ms is
	// +700% yet only 3.5ms — scheduler noise on a fast op, not a
	// regression.
	dir = t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{{Op: fleet.OpStreamPush, Count: 100, P99MS: 0.5}})
	writeFleet(t, dir, "20260201-000000", []fleet.OpStats{{Op: fleet.OpStreamPush, Count: 100, P99MS: 4}})
	out.Reset()
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || failed {
		t.Fatalf("sub-slack movement flagged: %s", out.String())
	}

	// An op new in the latest record is skipped, not failed.
	dir = t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 10}})
	writeFleet(t, dir, "20260201-000000", []fleet.OpStats{
		{Op: fleet.OpClassify, Count: 100, P99MS: 10},
		{Op: fleet.OpTune, Count: 4, P99MS: 500},
	})
	out.Reset()
	failed, err := runFleet(dir, 25, 5, &out)
	if err != nil || failed || !strings.Contains(out.String(), "skip") {
		t.Fatalf("new op not skipped: failed=%v err=%v\n%s", failed, err, out.String())
	}
}

func TestFleetGateHardErrorRate(t *testing.T) {
	dir := t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 10}})
	writeFleet(t, dir, "20260201-000000", []fleet.OpStats{
		{Op: fleet.OpClassify, Count: 100, P99MS: 10, HardErrors: 5},
	})
	var out strings.Builder
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || !failed {
		t.Fatalf("5%% hard-error rate over a clean baseline passed: failed=%v err=%v", failed, err)
	}

	// Within the one-point margin: 0 -> 1/100.
	dir = t.TempDir()
	writeFleet(t, dir, "20260101-000000", []fleet.OpStats{{Op: fleet.OpClassify, Count: 100, P99MS: 10}})
	writeFleet(t, dir, "20260201-000000", []fleet.OpStats{
		{Op: fleet.OpClassify, Count: 100, P99MS: 10, HardErrors: 1},
	})
	out.Reset()
	if failed, err := runFleet(dir, 25, 5, &out); err != nil || failed {
		t.Fatalf("1%% hard-error rate flagged: %s", out.String())
	}
}

// TestFleetGateAgainstCommittedSeries holds the gate over the
// repository's committed FLEET_*.json files, exactly as CI will.
func TestFleetGateAgainstCommittedSeries(t *testing.T) {
	var out strings.Builder
	failed, err := runFleet("../..", 25, 5, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("committed fleet series breaches the gate:\n%s", out.String())
	}
}
