// Command ei-studio serves the edgepulse platform REST API — the
// equivalent of the Edge Impulse Studio backend: projects, signed data
// ingestion, impulse design, training and tuner jobs on an autoscaling
// worker pool, profiling, and deployment artifact generation.
//
// Usage:
//
//	ei-studio -addr :4800 -workers 4 [-rate 100 -burst 200]
//
// Bootstrap a user, then drive everything over the versioned API
// (the unversioned /api prefix remains as a legacy alias):
//
//	curl -XPOST localhost:4800/api/v1/users -d '{"name":"ada"}'
//	curl -H "x-api-key: $KEY" -XPOST localhost:4800/api/v1/projects -d '{"name":"kws"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgepulse/internal/api"
	"edgepulse/internal/core"
	"edgepulse/internal/dsp"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/resilience"
)

func main() {
	addr := flag.String("addr", ":4800", "listen address")
	workers := flag.Int("workers", 4, "max training workers")
	queue := flag.Int("queue", 64, "max pending jobs across all projects")
	quota := flag.Int("quota", 16, "max pending jobs per project (fairness quota)")
	dataDir := flag.String("data", "", "directory for persistent state (load on start, save on SIGINT/SIGTERM)")
	rate := flag.Float64("rate", 100, "per-API-key request rate limit in req/s (0 = unlimited)")
	burst := flag.Int("burst", 200, "per-API-key burst allowance")
	trustProxy := flag.Bool("trust-proxy", false, "rate-limit by X-Forwarded-For client IP (only behind a proxy that sets it)")
	streams := flag.Int("streams", 0, "max concurrent streaming inference sessions (0 = default)")
	inflight := flag.Int("inflight", 0, "max concurrent in-flight requests before the admission gate hard-sheds (0 = default)")
	memLimitMB := flag.Int("mem-limit-mb", 0, "heap budget in MiB fed into the admission gate's load score (0 = ignore memory)")
	watchdog := flag.Duration("watchdog", 2*time.Minute, "flag running jobs with no progress for this long as stalled (0 = disable)")
	watchdogCancel := flag.Bool("watchdog-cancel", false, "also cancel jobs the watchdog flags as stalled")
	flag.Parse()

	registry := project.NewRegistry()
	if *dataDir != "" {
		// Open runs crash recovery on every project's segmented store
		// and migrates v1 dataset.json trees in place; from here on
		// each upload persists incrementally (one segment append + one
		// manifest patch), so a crash loses no acknowledged sample.
		loaded, err := project.Open(*dataDir)
		if err != nil {
			log.Fatal("opening state: ", err)
		}
		registry = loaded
		defer registry.Close()
		fmt.Printf("opened durable state in %s\n", *dataDir)
	}
	sched := jobs.NewScheduler(jobs.Config{
		MinWorkers: 1, MaxWorkers: *workers,
		QueueSize: *queue, MaxQueuedPerTag: *quota,
	})
	defer sched.Shutdown()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	opts := []api.Option{
		api.WithLogger(logger),
		api.WithRateLimit(*rate, *burst),
		api.WithGate(resilience.GateConfig{MaxInflight: *inflight}),
	}
	if *trustProxy {
		opts = append(opts, api.WithTrustProxy())
	}
	if *streams > 0 {
		opts = append(opts, api.WithStreamSessions(*streams))
	}
	if *memLimitMB > 0 {
		opts = append(opts, api.WithMemoryLimit(uint64(*memLimitMB)<<20))
	}
	if *watchdog > 0 {
		opts = append(opts, api.WithWatchdog(*watchdog, *watchdogCancel))
	}
	if *dataDir != "" {
		// /readyz goes red if the state directory disappears out from
		// under the process (unmounted volume, deleted tree).
		dir := *dataDir
		opts = append(opts, api.WithReadinessProbe("store", func() error {
			_, err := os.Stat(dir)
			return err
		}))
	}
	server := api.NewServer(registry, sched, opts...)
	defer server.Close()
	httpSrv := &http.Server{Addr: *addr, Handler: server.Handler()}

	// Graceful shutdown: drain live streaming sessions (each flushes its
	// queued frames and emits a terminal event to its subscribers), then
	// stop the HTTP server, waiting for in-flight requests.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down: draining streams and in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Drain(ctx); err != nil {
			log.Println("draining streams:", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Println("http shutdown:", err)
		}
	}()

	fmt.Printf("edgepulse studio listening on %s\n", *addr)
	fmt.Printf("design blocks: dsp %v, learn %v (catalog: GET /api/v1/blocks)\n",
		dsp.Names(), core.LearnNames())
	fmt.Println("bootstrap: curl -XPOST http://localhost" + *addr + "/api/v1/users -d '{\"name\":\"you\"}'")
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if *dataDir != "" {
		// Datasets are already durable; Save persists registry metadata +
		// impulse designs and compacts store manifests.
		if err := registry.Save(*dataDir); err != nil {
			log.Println("saving state:", err)
		} else {
			fmt.Printf("state saved to %s\n", *dataDir)
		}
	}
}
