// Command ei-gateway is the cluster front door: it owns the static
// shard map and reverse-proxies the entire /api/v1 surface onto a
// worker fleet. Project-scoped requests route to the shard owning the
// project ID (hash-mod); when a shard's primary goes unready the
// gateway fails reads over to the shard's follower and sheds writes
// with 503 + Retry-After and the stable no_shard error code.
//
// Usage, flag-driven map:
//
//	ei-gateway -addr :4799 -shards 2 \
//	    -node worker:0:http://127.0.0.1:4801 \
//	    -node worker:1:http://127.0.0.1:4802 \
//	    -node follower:0:http://127.0.0.1:4811
//
// or config-file driven:
//
//	ei-gateway -addr :4799 -map cluster.json
//
// where cluster.json matches internal/cluster.Map:
//
//	{"shards": 2, "nodes": [
//	  {"name": "w0", "url": "http://127.0.0.1:4801", "role": "worker", "shard": 0},
//	  ...
//	]}
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgepulse/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":4799", "listen address")
	mapFile := flag.String("map", "", "shard map JSON file (alternative to -shards/-node)")
	shards := flag.Int("shards", 0, "shard count for flag-driven maps")
	token := flag.String("cluster-token", "", "shared secret sent as X-Cluster-Token on intra-cluster calls")
	poll := flag.Duration("poll", time.Second, "worker health poll interval")
	var specs []string
	flag.Func("node", "cluster node as role:shard:url (repeatable)", func(v string) error {
		specs = append(specs, v)
		return nil
	})
	flag.Parse()

	var m *cluster.Map
	var err error
	switch {
	case *mapFile != "":
		blob, rerr := os.ReadFile(*mapFile)
		if rerr != nil {
			log.Fatal("reading shard map: ", rerr)
		}
		m, err = cluster.ParseMap(blob)
	case len(specs) > 0:
		m, err = cluster.ParseNodeSpecs(*shards, specs)
	default:
		log.Fatal("ei-gateway: provide -map FILE or -shards N with -node specs")
	}
	if err != nil {
		log.Fatal(err)
	}

	gw := cluster.NewGateway(m, cluster.GatewayConfig{
		Token:        *token,
		PollInterval: *poll,
		Logger:       slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	gw.Start()
	defer gw.Stop()

	httpSrv := &http.Server{Addr: *addr, Handler: gw}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down gateway")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Println("http shutdown:", err)
		}
	}()

	fmt.Printf("edgepulse gateway listening on %s (%d shards, %d nodes)\n",
		*addr, m.Shards, len(m.Nodes))
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
