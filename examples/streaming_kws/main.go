// Streaming keyword spotting over the live inference gateway: boot the
// platform, train a small wake-word model through the job API, then
// open a streaming session and feed a 12-second synthetic audio stream
// with three embedded "yes" utterances chunk by chunk — exactly how a
// device daemon would forward microphone frames. Rolling window results
// and debounced detection events arrive on the session's NDJSON feed
// through the typed client; the demo checks that the detector fires
// exactly once per utterance.
//
//	go run ./examples/streaming_kws
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

const rate = 8000

func main() {
	// Boot the platform in-process (in production: cmd/ei-studio).
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: 20 * time.Millisecond})
	defer sched.Shutdown()
	server := httptest.NewServer(api.NewServer(registry, sched).Handler())
	defer server.Close()
	ctx := context.Background()

	c := client.New(server.URL)
	user, err := c.CreateUser(ctx, "live-bot")
	if err != nil {
		log.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "wake-word-live")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Train a 1 s window / 250 ms stride keyword model over the API.
	fmt.Println("== training the wake-word model ==")
	trainModel(ctx, c, proj)

	// 2. Open a live session. The debounce settings are the streaming
	// post-processing contract: smoothed score >= threshold fires, the
	// class re-arms below release, and "noise" never fires.
	sess, err := c.OpenStream(ctx, proj.ID, v1.StreamOpenRequest{
		Threshold:    0.6,
		Release:      0.55,
		Smooth:       2,
		Suppress:     4,
		IgnoreLabels: []string{"noise"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== session %s: %d-sample windows every %d samples at %d Hz ==\n",
		sess.ID(), sess.Info.WindowSamples, sess.Info.StrideSamples, sess.Info.Rate)

	// 3. Synthesize the live feed: 12 s of background with 3 "yes"
	// utterances at known positions.
	src, truth, err := synth.NewStreamSource("yes", rate, 12, 3, 0.02, 21)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range truth {
		fmt.Printf("  ground truth: %q at %.2fs..%.2fs\n",
			ev.Label, float64(ev.StartSample)/rate, float64(ev.EndSample)/rate)
	}

	// 4. Tail the event feed concurrently with the pushes.
	detections := 0
	tailDone := make(chan error, 1)
	go func() {
		tailDone <- sess.Events(ctx, 0, func(ev v1.StreamEvent) error {
			switch ev.Type {
			case "result":
				fmt.Printf("  window @ %5.2fs  %-6s %.2f\n",
					float64(ev.WindowStart)/rate, ev.Label, ev.Score)
			case "detection":
				detections++
				fmt.Printf("  *** detected %q (smoothed %.2f) at %.2fs\n",
					ev.Label, ev.Score, float64(ev.WindowStart)/rate)
			}
			return nil
		})
	}()

	// 5. Push stride-sized chunks until the source runs dry, then close
	// — the server flushes queued frames before reporting final stats.
	for {
		chunk := src.Next(sess.Info.StrideSamples)
		if chunk == nil {
			break
		}
		if _, err := sess.Push(ctx, chunk); err != nil {
			log.Fatal(err)
		}
	}
	closed, err := sess.Close(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-tailDone; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== closed: %d frames in, %d windows, %d detections, %d dropped ==\n",
		closed.Stats.FramesIn, closed.Stats.Windows, closed.Stats.Detections, closed.Stats.Dropped)
	if detections != len(truth) {
		log.Fatalf("debounce contract broken: %d detections for %d utterances", detections, len(truth))
	}
	fmt.Printf("exactly %d debounced detections for %d utterances\n", detections, len(truth))
}

// trainModel uploads a signed 1 s-clip keyword dataset, configures the
// impulse and runs the training job to completion.
func trainModel(ctx context.Context, c *client.Client, proj *v1.CreateProjectResponse) {
	ds, err := synth.KWSDataset(2, 10, rate, 1.0, 0.03, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			log.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "device-01", DeviceType: "NANO33BLE",
			IntervalMS: 1000.0 / rate,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, proj.HMACKey, time.Now().Unix())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.UploadSample(ctx, proj.ID, client.UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, doc); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := c.Rebalance(ctx, proj.ID, 0.25); err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "wake-word-live",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 1000, StrideMS: 250, FrequencyHz: rate, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Name: "audio", Type: "mfe",
			Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification, Inputs: []string{"audio"}}},
		Classes: []string{"noise", "yes"},
	}
	if _, err := c.SetImpulse(ctx, proj.ID, cfg); err != nil {
		log.Fatal(err)
	}
	accepted, err := c.Train(ctx, proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       8,
		LearningRate: 0.005,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	done, err := c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		log.Fatal(err)
	}
	if done.Status != v1.JobFinished {
		log.Fatal("training ended as ", done.Status, ": ", done.Job.Error)
	}
	res, err := c.JobResult(ctx, accepted.JobID)
	if err != nil {
		log.Fatal(err)
	}
	trained, err := res.TrainResult()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: accuracy %.3f\n", trained.Accuracy)
}
