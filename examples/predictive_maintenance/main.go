// Predictive maintenance: vibration monitoring with spectral features, a
// supervised fault classifier and an unsupervised K-means anomaly block —
// one of the motivating TinyML applications of the paper's introduction.
//
// The anomaly detector is trained only on normal operation, so it also
// flags novel fault modes the classifier was never shown.
//
//	go run ./examples/predictive_maintenance
package main

import (
	"fmt"
	"log"
	"math/rand"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

func main() {
	const rate = 100 // Hz accelerometer
	ds, err := synth.VibrationDataset(20, rate, 2.0, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== dataset ==")
	for _, st := range ds.Stats() {
		fmt.Printf("  %-8s %d train / %d test windows\n", st.Label, st.Training, st.Testing)
	}

	// Impulse: 2 s 3-axis window -> spectral analysis -> MLP classifier.
	imp := core.New("machine-monitor")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 2000, FrequencyHz: rate, Axes: 3}
	block, err := dsp.New("spectral-analysis", map[string]float64{"fft_length": 64, "num_peaks": 12})
	if err != nil {
		log.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, err := imp.FeatureShape()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== impulse: %s -> %v features ==\n", imp.Describe(), shape)

	model := models.TinyMLP(shape.Elems(), 24, len(imp.Classes))
	if err := nn.InitWeights(model, 3); err != nil {
		log.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		log.Fatal(err)
	}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 20, LearningRate: 0.01, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	acc, conf, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  classifier test accuracy: %.0f%%  confusion: %v\n", acc*100, conf)

	// Anomaly block: K-means fitted on NORMAL windows only.
	normalOnly := data.New()
	for _, h := range ds.List(data.Training) {
		if h.Label != "normal" {
			continue
		}
		s, err := ds.Get(h.ID)
		if err != nil {
			log.Fatal(err)
		}
		clone := *s
		clone.ID = ""
		if _, err := normalOnly.Add(&clone); err != nil {
			log.Fatal(err)
		}
	}
	if err := imp.TrainAnomaly(normalOnly, 3, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== anomaly scores (K-means trained on normal operation only) ==")

	rng := rand.New(rand.NewSource(77))
	normal := synth.Vibration(rate, 2.0, false, rng)
	fault := synth.Vibration(rate, 2.0, true, rng)
	// A novel failure mode: total bearing seizure -> broadband noise.
	novel := synth.Vibration(rate, 2.0, false, rng)
	for i := range novel.Data {
		novel.Data[i] += float32(rng.NormFloat64() * 2.5)
	}
	for _, tc := range []struct {
		name string
		sig  dsp.Signal
	}{{"normal", normal}, {"known fault", fault}, {"novel failure", novel}} {
		res, err := imp.Classify(tc.sig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s classifier=%q  anomaly score=%.2f\n", tc.name, res.Label, res.AnomalyScore)
	}
	fmt.Println("  (scores ~1 are in-distribution; large scores flag unseen behaviour)")
}
