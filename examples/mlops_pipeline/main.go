// MLOps pipeline: the full automated loop over the REST API, exactly as a
// CI system would drive the platform (paper Sec. 4.9): bootstrap a user,
// create a project, ingest HMAC-signed sensor data, configure the
// impulse, run an async training job on the autoscaling scheduler, poll
// it, download the EIM deployment artifact, and run inference with the
// deployed model — no direct library calls to the ML internals, only HTTP.
//
//	go run ./examples/mlops_pipeline
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"edgepulse/internal/api"
	"edgepulse/internal/core"
	"edgepulse/internal/deploy"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

func main() {
	// Boot the platform in-process (in production: cmd/ei-studio).
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: 20 * time.Millisecond})
	defer sched.Shutdown()
	server := httptest.NewServer(api.NewServer(registry, sched).Handler())
	defer server.Close()
	fmt.Println("studio API at", server.URL)

	// 1. Bootstrap a user + project.
	var user struct {
		APIKey string `json:"api_key"`
	}
	post(server.URL+"/api/users", "", map[string]any{"name": "ci-bot"}, &user)
	var proj struct {
		ID      int    `json:"id"`
		HMACKey string `json:"hmac_key"`
	}
	post(server.URL+"/api/projects", user.APIKey, map[string]any{"name": "wake-word"}, &proj)
	fmt.Printf("project %d created (ingestion key %s...)\n", proj.ID, proj.HMACKey[:10])

	// 2. Ingest signed device data.
	ds, err := synth.KWSDataset(2, 12, 8000, 0.5, 0.03, 42)
	if err != nil {
		log.Fatal(err)
	}
	uploaded := 0
	for _, s := range ds.List("") {
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "device-01", DeviceType: "NANO33BLE",
			IntervalMS: 1000.0 / 8000.0,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, proj.HMACKey, time.Now().Unix())
		if err != nil {
			log.Fatal(err)
		}
		url := fmt.Sprintf("%s/api/projects/%d/data?label=%s&name=%s", server.URL, proj.ID, s.Label, s.Name)
		postRaw(url, user.APIKey, doc)
		uploaded++
	}
	fmt.Printf("ingested %d signed samples\n", uploaded)
	post(fmt.Sprintf("%s/api/projects/%d/rebalance", server.URL, proj.ID), user.APIKey,
		map[string]any{"test_fraction": 0.25}, nil)

	// 3. Configure the impulse.
	cfg := core.Config{
		Name:      "wake-word",
		Input:     core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSPName:   "mfe",
		DSPParams: map[string]float64{"num_filters": 16, "fft_length": 128},
		Classes:   []string{"noise", "yes"},
	}
	var impResp struct {
		Dataflow string `json:"dataflow"`
	}
	post(fmt.Sprintf("%s/api/projects/%d/impulse", server.URL, proj.ID), user.APIKey, cfg, &impResp)
	fmt.Println("impulse:", impResp.Dataflow)

	// 4. Async training job with quantization.
	var train struct {
		JobID string `json:"job_id"`
	}
	post(fmt.Sprintf("%s/api/projects/%d/train", server.URL, proj.ID), user.APIKey, map[string]any{
		"model":         map[string]any{"type": "conv1d", "depth": 2, "start_filters": 8, "end_filters": 16},
		"epochs":        10,
		"learning_rate": 0.005,
		"quantize":      true,
		"seed":          7,
	}, &train)
	fmt.Println("training job:", train.JobID)
	for {
		var job struct {
			Status string   `json:"status"`
			Error  string   `json:"error"`
			Logs   []string `json:"logs"`
		}
		get(server.URL+"/api/jobs/"+train.JobID, user.APIKey, &job)
		if job.Status == "finished" {
			for _, l := range job.Logs {
				fmt.Println("  [job]", l)
			}
			break
		}
		if job.Status == "failed" {
			log.Fatal("training failed: ", job.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 5. Profile for the deployment target.
	var profile map[string]any
	get(fmt.Sprintf("%s/api/projects/%d/profile?target=nano-33-ble-sense", server.URL, proj.ID), user.APIKey, &profile)
	pretty, _ := json.Marshal(profile["int8"])
	fmt.Println("int8 on-device estimate:", string(pretty))

	// 6. Download and run the EIM deployment.
	req, _ := http.NewRequest("GET", fmt.Sprintf("%s/api/projects/%d/deployment?type=eim", server.URL, proj.ID), nil)
	req.Header.Set("x-api-key", user.APIKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("downloaded model.eim (%d bytes)\n", len(blob))
	deployed, err := deploy.ParseEIM(blob)
	if err != nil {
		log.Fatal(err)
	}
	clip := ds.List("")[0]
	res, err := deployed.ClassifyQuantized(clip.Signal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed model: sample labeled %q classified as %q %v\n", clip.Label, res.Label, res.Scores)
}

func post(url, key string, body any, out any) {
	blob, _ := json.Marshal(body)
	req, _ := http.NewRequest("POST", url, bytes.NewReader(blob))
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("x-api-key", key)
	}
	doReq(req, out)
}

func postRaw(url, key string, body []byte) {
	req, _ := http.NewRequest("POST", url, bytes.NewReader(body))
	if key != "" {
		req.Header.Set("x-api-key", key)
	}
	doReq(req, nil)
}

func get(url, key string, out any) {
	req, _ := http.NewRequest("GET", url, nil)
	if key != "" {
		req.Header.Set("x-api-key", key)
	}
	doReq(req, out)
}

func doReq(req *http.Request, out any) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		log.Fatalf("%s %s: %d %s", req.Method, req.URL.Path, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("bad response: %s", raw)
		}
	}
}
