// MLOps pipeline: the full automated loop over the REST API, exactly as a
// CI system would drive the platform (paper Sec. 4.9): bootstrap a user,
// create a project, ingest HMAC-signed sensor data, configure the
// impulse, run an async training job on the autoscaling scheduler,
// long-poll it to completion, download the EIM deployment artifact, and
// run inference with the deployed model — no direct library calls to the
// ML internals, only the typed v1 API through internal/client.
//
//	go run ./examples/mlops_pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/deploy"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
	"edgepulse/internal/synth"
)

func main() {
	// Boot the platform in-process (in production: cmd/ei-studio).
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: 20 * time.Millisecond})
	defer sched.Shutdown()
	server := httptest.NewServer(api.NewServer(registry, sched).Handler())
	defer server.Close()
	fmt.Println("studio API at", server.URL)
	ctx := context.Background()

	// 1. Bootstrap a user + project.
	c := client.New(server.URL)
	user, err := c.CreateUser(ctx, "ci-bot")
	if err != nil {
		log.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "wake-word")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("project %d created (ingestion key %s...)\n", proj.ID, proj.HMACKey[:10])

	// 2. Ingest signed device data.
	ds, err := synth.KWSDataset(2, 12, 8000, 0.5, 0.03, 42)
	if err != nil {
		log.Fatal(err)
	}
	uploaded := 0
	for _, h := range ds.List("") {
		s, err := ds.Get(h.ID)
		if err != nil {
			log.Fatal(err)
		}
		values := make([][]float64, s.Signal.Frames())
		for i := range values {
			values[i] = []float64{float64(s.Signal.Data[i])}
		}
		doc, err := ingest.SignJSON(ingest.Payload{
			DeviceName: "device-01", DeviceType: "NANO33BLE",
			IntervalMS: 1000.0 / 8000.0,
			Sensors:    []ingest.Sensor{{Name: "audio", Units: "wav"}},
			Values:     values,
		}, proj.HMACKey, time.Now().Unix())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.UploadSample(ctx, proj.ID, client.UploadParams{
			Label: s.Label, Name: s.Name, Format: "acquisition",
		}, doc); err != nil {
			log.Fatal(err)
		}
		uploaded++
	}
	fmt.Printf("ingested %d signed samples\n", uploaded)
	if _, err := c.Rebalance(ctx, proj.ID, 0.25); err != nil {
		log.Fatal(err)
	}

	// 3. Configure the impulse.
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "wake-word",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1},
		DSP: []core.DSPBlockSpec{{
			Type: "mfe", Params: map[string]float64{"num_filters": 16, "fft_length": 128},
		}},
		Learn:   []core.LearnBlockSpec{{Type: core.LearnClassification}},
		Classes: []string{"noise", "yes"},
	}
	imp, err := c.SetImpulse(ctx, proj.ID, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("impulse:", imp.Dataflow)

	// 4. Async training job with quantization, watched through the
	// live event stream: ordered state transitions, real per-epoch
	// progress and log lines, resumable via Last-Event-Id.
	accepted, err := c.Train(ctx, proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "conv1d", Depth: 2, StartFilters: 8, EndFilters: 16},
		Epochs:       10,
		LearningRate: 0.005,
		Quantize:     true,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training job:", accepted.JobID)
	var final string
	if err := c.StreamJobEvents(ctx, accepted.JobID, 0, func(e v1.JobEvent) error {
		switch e.Type {
		case v1.JobEventState:
			fmt.Println("  [job] ->", e.Status)
			if e.Terminal() {
				final = e.Status
			}
		case v1.JobEventProgress:
			fmt.Printf("  [job] %s %.0f%%\n", e.Stage, e.Progress)
		case v1.JobEventLog:
			fmt.Println("  [job]", e.Message)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if final != v1.JobFinished {
		j, _ := c.Job(ctx, accepted.JobID)
		if j != nil {
			log.Fatal("training ended as ", final, ": ", j.Job.Error)
		}
		log.Fatal("training ended as ", final)
	}
	resultResp, err := c.JobResult(ctx, accepted.JobID)
	if err != nil {
		log.Fatal(err)
	}
	trained, err := resultResp.TrainResult()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: accuracy %.3f, quantized=%v\n", trained.Accuracy, trained.Quantized)

	// 5. Profile for the deployment target.
	profile, err := c.Profile(ctx, proj.ID, "nano-33-ble-sense")
	if err != nil {
		log.Fatal(err)
	}
	if profile.Int8 != nil {
		fmt.Printf("int8 on-device estimate: %.1f ms, %.1f KB RAM, fits=%v\n",
			profile.Int8.TotalMS, profile.Int8.RAMKB, profile.Int8.Fits)
	}

	// 6. Download and run the EIM deployment.
	blob, err := c.DeploymentEIM(ctx, proj.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded model.eim (%d bytes)\n", len(blob))
	deployed, err := deploy.ParseEIM(blob)
	if err != nil {
		log.Fatal(err)
	}
	clip, err := ds.Get(ds.List("")[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	res, err := deployed.ClassifyQuantized(clip.Signal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed model: sample labeled %q classified as %q %v\n", clip.Label, res.Label, res.Scores)
}
