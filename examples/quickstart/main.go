// Quickstart: the 60-second end-to-end edgepulse flow.
//
// It builds a keyword-spotting impulse (MFE preprocessing + small conv1d
// network), trains it on synthetic keyword audio, evaluates it, quantizes
// to int8, deploys to an EIM artifact and classifies a fresh clip with
// the deployed model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/deploy"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

func main() {
	// 1. Data: 3 synthetic keyword classes ("yes", "no", background noise).
	fmt.Println("== 1. collecting data ==")
	ds, err := synth.KWSDataset(3, 16, 8000, 0.5, 0.03, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range ds.Stats() {
		fmt.Printf("  %-8s %2d training / %d test clips (%.1fs audio)\n",
			st.Label, st.Training, st.Testing, st.Seconds)
	}

	// 2. Impulse design: 500 ms window -> MFE -> classifier.
	fmt.Println("== 2. designing the impulse ==")
	imp := core.New("quickstart-kws")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		log.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, err := imp.FeatureShape()
	if err != nil {
		log.Fatal(err)
	}
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	if err != nil {
		log.Fatal(err)
	}
	if err := nn.InitWeights(model, 7); err != nil {
		log.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  " + imp.Describe())
	fmt.Println("  model: " + models.Describe(model))

	// 3. Training.
	fmt.Println("== 3. training ==")
	if _, err := imp.Train(ds, trainer.Config{
		Epochs: 10, LearningRate: 0.005, Seed: 7, Log: os.Stdout,
	}); err != nil {
		log.Fatal(err)
	}
	acc, conf, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  test accuracy: %.1f%%  confusion: %v\n", acc*100, conf)

	// 4. Quantize to int8.
	fmt.Println("== 4. quantizing ==")
	if err := imp.Quantize(ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  int8 weights: %d bytes (float: %d bytes)\n",
		imp.QModel.WeightBytes(), imp.Model.ParamCount()*4)

	// 5. Deploy as an EIM artifact and run the deployed model.
	fmt.Println("== 5. deploying ==")
	blob, err := deploy.BuildEIM(imp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  model.eim: %d bytes\n", len(blob))
	deployed, err := deploy.ParseEIM(blob)
	if err != nil {
		log.Fatal(err)
	}
	clip, err := synth.Keyword("yes", 8000, 0.5, 0.03, rand.New(rand.NewSource(99)))
	if err != nil {
		log.Fatal(err)
	}
	res, err := deployed.ClassifyQuantized(clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  deployed model says: %q  scores: %v\n", res.Label, res.Scores)
}
