// Visual wake words: the paper's person-detection vision workload.
//
// It trains a small CNN on synthetic person / no-person images, quantizes
// it, and then reproduces the paper's memory-fit analysis: which of the
// three evaluation boards can actually run each (precision, engine)
// variant — the reason VWW float32 shows '-' for the Nano 33 and Pi Pico
// in Table 2.
//
//	go run ./examples/visual_wake_words
package main

import (
	"fmt"
	"log"
	"math/rand"

	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/profiler"
	"edgepulse/internal/renode"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
)

func main() {
	ds, err := synth.VWWDataset(20, 32, 13)
	if err != nil {
		log.Fatal(err)
	}
	imp := core.New("person-detect")
	imp.Input = core.InputBlock{Kind: core.ImageInput, Width: 32, Height: 32, Axes: 3}
	block, err := dsp.New("image", map[string]float64{"width": 24, "height": 24})
	if err != nil {
		log.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, _ := imp.FeatureShape()
	model := models.CIFARCNN(shape[0], shape[2], len(imp.Classes))
	if err := nn.InitWeights(model, 9); err != nil {
		log.Fatal(err)
	}
	if err := imp.AttachClassifier(model); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== training person / no-person classifier ==")
	if _, err := imp.Train(ds, trainer.Config{Epochs: 14, LearningRate: 0.005, Seed: 9}); err != nil {
		log.Fatal(err)
	}
	acc, _, err := imp.Evaluate(ds, data.Testing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  test accuracy: %.0f%%\n", acc*100)
	if err := imp.Quantize(ds); err != nil {
		log.Fatal(err)
	}

	// Memory fit analysis, as in Table 2/4 — here for the paper's
	// full-size MobileNetV1 0.25 VWW model at 96x96.
	fmt.Println("== memory fit: full-size MobileNetV1 0.25 @ 96x96 (paper's VWW model) ==")
	full := models.VWWMobileNetV1(96, 3, 0.25, 2)
	if err := nn.InitWeights(full, 10); err != nil {
		log.Fatal(err)
	}
	const imageDSPRAM = 36 << 10
	type variant struct {
		name string
		ram  func() (profiler.Memory, error)
	}
	fpTFLM := func() (profiler.Memory, error) { return profiler.EstimateFloat(full, renode.TFLM) }
	fpEON := func() (profiler.Memory, error) { return profiler.EstimateFloat(full, renode.EON) }
	for _, v := range []variant{{"float32 TFLM", fpTFLM}, {"float32 EON", fpEON}} {
		mem, err := v.ram()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s ram %4d kB  flash %4d kB   fits:", v.name, mem.RAMBytes>>10, mem.FlashBytes>>10)
		for _, b := range device.EvaluationBoards() {
			mark := "no"
			if profiler.Fits(mem, imageDSPRAM, b) {
				mark = "YES"
			}
			fmt.Printf("  %s=%s", b.ID, mark)
		}
		fmt.Println()
	}

	// The trained small model deploys everywhere.
	fmt.Println("== memory fit: this example's 24x24 model ==")
	for _, engine := range []renode.Engine{renode.TFLM, renode.EON} {
		mem := profiler.EstimateInt8(imp.QModel, engine)
		fmt.Printf("  int8 %-5v ram %3d kB  flash %3d kB   fits:", engine, mem.RAMBytes>>10, mem.FlashBytes>>10)
		for _, b := range device.EvaluationBoards() {
			mark := "no"
			if profiler.Fits(mem, imp.DSPRAM(), b) {
				mark = "YES"
			}
			fmt.Printf("  %s=%s", b.ID, mark)
		}
		fmt.Println()
	}

	// Classify one fresh image of each kind.
	fmt.Println("== inference ==")
	person := synth.PersonImage(32, rand.New(rand.NewSource(21)))
	empty := synth.NonPersonImage(32, rand.New(rand.NewSource(22)))
	for _, tc := range []struct {
		name string
		sig  dsp.Signal
	}{{"person image", person}, {"background image", empty}} {
		res, err := imp.ClassifyQuantized(tc.sig)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s -> %q %v\n", tc.name, res.Label, res.Scores)
	}
}
