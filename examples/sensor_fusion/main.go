// Sensor fusion: a multi-block impulse graph driven end-to-end through
// the REST API and the typed Go client (paper Sec. 3, Fig. 2 — real
// impulses carry multiple DSP blocks, one per sensor modality). A
// 4-axis machine-monitoring signal (3-axis accelerometer + contact
// microphone, interleaved at one rate) feeds two DSP blocks — spectral
// analysis on axes 0-2 and MFE on axis 3 — whose outputs concatenate
// into one composite feature vector consumed by a classifier, while a
// K-means anomaly block watches the vibration features alone. The
// design trains, quantizes, EON-compiles and classifies without any
// direct library calls into the ML internals.
//
//	go run ./examples/sensor_fusion
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"
	"time"

	"edgepulse/internal/api"
	v1 "edgepulse/internal/api/v1"
	"edgepulse/internal/client"
	"edgepulse/internal/core"
	"edgepulse/internal/deploy"
	"edgepulse/internal/dsp"
	"edgepulse/internal/ingest"
	"edgepulse/internal/jobs"
	"edgepulse/internal/project"
)

const (
	rateHz   = 4000
	windowMS = 500
	axes     = 4 // 3 accelerometer + 1 microphone, interleaved
)

// fusedSample synthesizes one window of interleaved 4-axis data. The
// "alarm" condition shows up in both modalities: a 50 Hz vibration with
// harmonics on the accelerometer and an 800 Hz whine on the microphone.
func fusedSample(label string, rng *rand.Rand) []float32 {
	frames := windowMS * rateHz / 1000
	out := make([]float32, frames*axes)
	alarm := label == "alarm"
	phase := rng.Float64() * 2 * math.Pi
	for t := 0; t < frames; t++ {
		ts := float64(t) / rateHz
		for a := 0; a < 3; a++ {
			v := 0.05 * rng.NormFloat64()
			if alarm {
				v += 0.6*math.Sin(2*math.Pi*50*ts+phase+float64(a)) +
					0.25*math.Sin(2*math.Pi*150*ts+phase)
			}
			out[t*axes+a] = float32(v)
		}
		mic := 0.05 * rng.NormFloat64()
		if alarm {
			mic += 0.5 * math.Sin(2*math.Pi*800*ts+phase)
		}
		out[t*axes+3] = float32(mic)
	}
	return out
}

func main() {
	// Boot the platform in-process (in production: cmd/ei-studio).
	registry := project.NewRegistry()
	sched := jobs.NewScheduler(jobs.Config{MinWorkers: 1, MaxWorkers: 4, ScaleInterval: 20 * time.Millisecond})
	defer sched.Shutdown()
	server := httptest.NewServer(api.NewServer(registry, sched).Handler())
	defer server.Close()
	ctx := context.Background()

	c := client.New(server.URL)
	user, err := c.CreateUser(ctx, "fusion-bot")
	if err != nil {
		log.Fatal(err)
	}
	c = c.WithAPIKey(user.APIKey)
	proj, err := c.CreateProject(ctx, "machine-monitor")
	if err != nil {
		log.Fatal(err)
	}

	// The design catalog lists every registered DSP and learn block
	// with its parameter schema.
	catalog, err := c.Blocks(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("block catalog: dsp [")
	for i, b := range catalog.DSP {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(b.Type)
	}
	fmt.Print("], learn [")
	for i, b := range catalog.Learn {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(b.Type)
	}
	fmt.Println("]")

	// Ingest signed 4-sensor acquisition documents.
	rng := rand.New(rand.NewSource(11))
	sensors := []ingest.Sensor{
		{Name: "accX", Units: "m/s2"}, {Name: "accY", Units: "m/s2"},
		{Name: "accZ", Units: "m/s2"}, {Name: "mic", Units: "wav"},
	}
	uploaded := 0
	for _, label := range []string{"idle", "alarm"} {
		for i := 0; i < 14; i++ {
			raw := fusedSample(label, rng)
			values := make([][]float64, len(raw)/axes)
			for t := range values {
				row := make([]float64, axes)
				for a := 0; a < axes; a++ {
					row[a] = float64(raw[t*axes+a])
				}
				values[t] = row
			}
			doc, err := ingest.SignJSON(ingest.Payload{
				DeviceName: "pump-07", DeviceType: "MONITOR",
				IntervalMS: 1000.0 / rateHz,
				Sensors:    sensors, Values: values,
			}, proj.HMACKey, time.Now().Unix())
			if err != nil {
				log.Fatal(err)
			}
			if _, err := c.UploadSample(ctx, proj.ID, client.UploadParams{
				Label: label, Name: fmt.Sprintf("%s-%02d", label, i), Format: "acquisition",
			}, doc); err != nil {
				log.Fatal(err)
			}
			uploaded++
		}
	}
	fmt.Printf("ingested %d fused samples\n", uploaded)
	if _, err := c.Rebalance(ctx, proj.ID, 0.25); err != nil {
		log.Fatal(err)
	}

	// The v2 design: two DSP blocks over disjoint axis subsets, a
	// classifier fusing both outputs, and an anomaly block watching
	// only the vibration features.
	cfg := core.Config{
		Version: core.ConfigVersion,
		Name:    "machine-monitor",
		Input:   core.InputBlock{Kind: core.TimeSeries, WindowMS: windowMS, FrequencyHz: rateHz, Axes: axes},
		DSP: []core.DSPBlockSpec{
			{
				Name: "vibration", Type: "spectral-analysis",
				Params: map[string]float64{"fft_length": 64, "num_peaks": 8},
				Axes:   []int{0, 1, 2},
			},
			{
				Name: "audio", Type: "mfe",
				Params: map[string]float64{"num_filters": 16, "fft_length": 128, "frame_length": 0.02, "frame_stride": 0.02},
				Axes:   []int{3},
			},
		},
		Learn: []core.LearnBlockSpec{
			{Type: core.LearnClassification, Inputs: []string{"vibration", "audio"}},
			{Type: core.LearnAnomaly, Inputs: []string{"vibration"}, Params: map[string]float64{"clusters": 3}},
		},
		Classes: []string{"alarm", "idle"},
	}
	imp, err := c.SetImpulse(ctx, proj.ID, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("impulse:", imp.Dataflow)
	fmt.Println("composite feature shape:", imp.FeatureShape)
	for _, b := range imp.Blocks {
		fmt.Printf("  block %-10s %-18s -> offset %d, size %d\n", b.Name, b.Type, b.Offset, b.Size)
	}

	// Train (MLP over the fused flat vector), quantize, and fit the
	// anomaly block — one job.
	accepted, err := c.Train(ctx, proj.ID, v1.TrainRequest{
		Model:        v1.ModelSpec{Type: "mlp", Hidden: 24},
		Epochs:       8,
		LearningRate: 0.005,
		Quantize:     true,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	done, err := c.WaitJob(ctx, accepted.JobID)
	if err != nil {
		log.Fatal(err)
	}
	if done.Status == v1.JobFailed {
		log.Fatal("training failed: ", done.Job.Error)
	}
	resultResp, err := c.JobResult(ctx, accepted.JobID)
	if err != nil {
		log.Fatal(err)
	}
	trained, err := resultResp.TrainResult()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: accuracy %.3f, quantized=%v, anomaly=%v\n",
		trained.Accuracy, trained.Quantized, trained.AnomalyTrained)

	// Classify one raw fused window through the API (both precisions).
	alarmRaw := fusedSample("alarm", rng)
	res, err := c.Classify(ctx, proj.ID, alarmRaw, false)
	if err != nil {
		log.Fatal(err)
	}
	qres, err := c.Classify(ctx, proj.ID, alarmRaw, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alarm window: float=%q int8=%q anomaly=%.2f\n", res.Label, qres.Label, res.Anomaly)

	// EON-compiled C++ deployment of the fused design.
	art, err := c.Deployment(ctx, proj.ID, "cpp", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EON-compiled C++ library (%d files):\n", len(art.Files))
	for name := range art.Files {
		fmt.Println("  ", name)
	}

	// EIM round trip: the deployed binary re-runs the fused graph
	// locally with the same result.
	blob, err := c.DeploymentEIM(ctx, proj.ID)
	if err != nil {
		log.Fatal(err)
	}
	deployed, err := deploy.ParseEIM(blob)
	if err != nil {
		log.Fatal(err)
	}
	local, err := deployed.ClassifyQuantized(dsp.Signal{Data: alarmRaw, Rate: rateHz, Axes: axes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed EIM (%d bytes): alarm window classified as %q\n", len(blob), local.Label)
}
