// Keyword spotting: the paper's flagship workload, end to end.
//
// It runs the EON Tuner over DSP×model candidates under the Nano 33 BLE
// Sense's constraints, trains the winning configuration, calibrates the
// streaming post-processing with the genetic algorithm (FAR/FRR Pareto
// front), and profiles the final model on all three evaluation boards.
//
//	go run ./examples/keyword_spotting
package main

import (
	"fmt"
	"log"

	"edgepulse/internal/calibration"
	"edgepulse/internal/core"
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/profiler"
	"edgepulse/internal/renode"
	"edgepulse/internal/sdk"
	"edgepulse/internal/synth"
	"edgepulse/internal/trainer"
	"edgepulse/internal/tuner"
)

func main() {
	const rate = 8000
	ds, err := synth.KWSDataset(2, 16, rate, 1.0, 0.03, 11)
	if err != nil {
		log.Fatal(err)
	}
	input := core.InputBlock{Kind: core.TimeSeries, WindowMS: 1000, StrideMS: 250, FrequencyHz: rate, Axes: 1}
	target := device.MustGet("nano-33-ble-sense")

	// 1. EON Tuner: explore DSP × model candidates under the target's
	// constraints.
	fmt.Println("== EON Tuner ==")
	space := tuner.Space{
		DSP: []tuner.DSPCandidate{
			{Name: "mfe", Params: map[string]float64{"num_filters": 16, "fft_length": 128}, Desc: "MFE (0.02, 0.01, 16)"},
			{Name: "mfcc", Params: map[string]float64{"num_filters": 16, "num_cepstral": 10, "fft_length": 128}, Desc: "MFCC (0.02, 0.01, 10)"},
		},
		Models: []tuner.ModelCandidate{
			{Desc: "2x conv1d (8 to 16)", Build: func(f, c, cl int) (*nn.Model, error) {
				return models.Conv1DStack(f, c, 2, 8, 16, cl)
			}},
			{Desc: "3x conv1d (16 to 64)", Build: func(f, c, cl int) (*nn.Model, error) {
				return models.Conv1DStack(f, c, 3, 16, 64, cl)
			}},
		},
	}
	trials, err := tuner.Run(ds, tuner.Config{
		Space: space, Input: input,
		Constraints: tuner.Constraints{Target: target},
		Epochs:      4, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range trials {
		fmt.Printf("  %-22s x %-20s acc %.0f%%  total %4.0fms  ram %3dkB  flash %3dkB  fits=%v\n",
			tr.DSPDesc, tr.ModelDesc, tr.Accuracy*100, tr.TotalLatencyMS,
			tr.TotalRAM/1024, tr.NNFlash/1024, tr.Fits)
	}
	best := trials[0]
	fmt.Printf("  -> selected %s x %s\n", best.DSPDesc, best.ModelDesc)

	// 2. Train the winning configuration properly.
	fmt.Println("== training the winner ==")
	imp := core.New("kws")
	imp.Input = input
	blockName := "mfe"
	params := space.DSP[0].Params
	if best.DSPDesc[0] == 'M' && len(best.DSPDesc) > 3 && best.DSPDesc[:4] == "MFCC" {
		blockName = "mfcc"
		params = space.DSP[1].Params
	}
	block, err := dsp.New(blockName, params)
	if err != nil {
		log.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = ds.Labels()
	shape, _ := imp.FeatureShape()
	model, err := models.Conv1DStack(shape[0], shape[1], 3, 16, 64, len(imp.Classes))
	if err != nil {
		log.Fatal(err)
	}
	nn.InitWeights(model, 5)
	if err := imp.AttachClassifier(model); err != nil {
		log.Fatal(err)
	}
	if _, err := imp.Train(ds, trainer.Config{Epochs: 10, LearningRate: 0.005, Seed: 5, RestoreBest: true}); err != nil {
		log.Fatal(err)
	}

	// 3. Performance calibration: tune streaming post-processing on a
	// synthetic stream with known keyword positions.
	fmt.Println("== performance calibration ==")
	keyword := imp.Classes[0]
	if keyword == "noise" {
		keyword = imp.Classes[1]
	}
	stream, events, err := synth.Stream(keyword, rate, 60, 8, 0.02, 17)
	if err != nil {
		log.Fatal(err)
	}
	classifier, err := sdk.NewClassifier(imp)
	if err != nil {
		log.Fatal(err)
	}
	results, err := classifier.RunContinuous(stream, 1)
	if err != nil {
		log.Fatal(err)
	}
	calStream := calibration.Stream{
		Rate: rate, TotalSamples: stream.Frames(), Events: events,
	}
	for _, r := range results {
		calStream.Scores = append(calStream.Scores, r.Scores[keyword])
		calStream.WindowStarts = append(calStream.WindowStarts, r.WindowStart)
	}
	suggestions, err := calibration.Calibrate(calStream, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d Pareto-optimal operating points for %q:\n", len(suggestions), keyword)
	for _, s := range suggestions {
		fmt.Printf("    threshold %.2f  avg %2d  suppress %2d  ->  FAR %5.1f/h  FRR %4.0f%%\n",
			s.Config.Threshold, s.Config.AveragingWindows, s.Config.SuppressionWindows,
			s.Outcome.FalseAcceptsPerHour, s.Outcome.FalseRejectionRate*100)
	}

	// 4. Profile the final model across the paper's three boards.
	fmt.Println("== cross-device profile (float32, TFLM) ==")
	specs, _ := imp.Model.Spec()
	mem, err := profiler.EstimateFloat(imp.Model, renode.TFLM)
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range device.EvaluationBoards() {
		est := renode.EstimateFloat(b, imp.DSPCost(), specs, renode.TFLM)
		fmt.Printf("  %-24s dsp %6.1fms  nn %7.1fms  total %7.1fms  fits=%v\n",
			b.Name, est.DSPMillis, est.InferenceMillis, est.TotalMillis,
			profiler.Fits(mem, imp.DSPRAM(), b))
	}
}
