// Active learning: the paper's data-centric labeling loop (Sec. 4.8).
//
//  1. Train a model on the small labeled subset of a mostly-unlabeled
//     keyword dataset.
//
//  2. Extract embeddings from an intermediate layer for every sample.
//
//  3. Project them to 2-D and render the data-explorer view.
//
//  4. Auto-label the unlabeled samples by proximity to class clusters and
//     measure how many suggestions are correct.
//
//     go run ./examples/active_learning
package main

import (
	"fmt"
	"log"

	"edgepulse/internal/active"
	"edgepulse/internal/core"
	"edgepulse/internal/data"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/report"
	"edgepulse/internal/synth"
	"edgepulse/internal/tensor"
	"edgepulse/internal/trainer"
)

func main() {
	// A dataset where only 40% of the samples are labeled. We keep the
	// ground truth aside to score the suggestions afterwards.
	full, err := synth.KWSDataset(2, 30, 8000, 0.5, 0.03, 5)
	if err != nil {
		log.Fatal(err)
	}
	var samples []*data.Sample
	for _, h := range full.List("") {
		s, err := full.Get(h.ID)
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, s)
	}
	truth := make([]string, len(samples))
	visible := make([]string, len(samples))
	labeledDS := data.New()
	for i, s := range samples {
		truth[i] = s.Label
		if i%5 < 2 { // 40% labeled
			visible[i] = s.Label
			clone := *s
			clone.ID = ""
			if _, err := labeledDS.Add(&clone); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("dataset: %d samples, %d labeled, %d unlabeled\n",
		len(samples), labeledDS.Len(), len(samples)-labeledDS.Len())

	// Impulse trained on the labeled subset only.
	imp := core.New("active")
	imp.Input = core.InputBlock{Kind: core.TimeSeries, WindowMS: 500, FrequencyHz: 8000, Axes: 1}
	block, err := dsp.New("mfe", map[string]float64{"num_filters": 16, "fft_length": 128})
	if err != nil {
		log.Fatal(err)
	}
	imp.UseDSP(block)
	imp.Classes = labeledDS.Labels()
	shape, _ := imp.FeatureShape()
	model, err := models.Conv1DStack(shape[0], shape[1], 2, 8, 16, len(imp.Classes))
	if err != nil {
		log.Fatal(err)
	}
	nn.InitWeights(model, 6)
	if err := imp.AttachClassifier(model); err != nil {
		log.Fatal(err)
	}
	if _, err := imp.Train(labeledDS, trainer.Config{Epochs: 8, LearningRate: 0.005, Seed: 6}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained on the labeled subset")

	// Embeddings for every sample (labeled and unlabeled).
	var features []*tensor.F32
	for _, s := range samples {
		x, err := imp.Features(s.Signal)
		if err != nil {
			log.Fatal(err)
		}
		features = append(features, x)
	}
	embs, err := active.Embeddings(imp.Model, -1, features)
	if err != nil {
		log.Fatal(err)
	}

	// Data explorer: 2-D projection with '?' for unlabeled samples.
	proj, err := active.PCA2D(embs)
	if err != nil {
		log.Fatal(err)
	}
	points := make([]report.Point, len(proj))
	for i, p := range proj {
		points[i] = report.Point{X: p[0], Y: p[1], Label: visible[i]}
	}
	fmt.Print(report.Scatter(points, 64, 16))

	// Auto-label suggestions by cluster proximity.
	suggestions, err := active.SuggestLabels(embs, visible, 5, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, s := range suggestions {
		if s.Label == truth[s.Index] {
			correct++
		}
	}
	fmt.Printf("auto-label suggestions: %d of %d unlabeled samples (conf >= 0.7)\n",
		len(suggestions), len(samples)-labeledDS.Len())
	fmt.Printf("suggestion accuracy vs held-out ground truth: %d/%d (%.0f%%)\n",
		correct, len(suggestions), 100*float64(correct)/float64(max(1, len(suggestions))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
