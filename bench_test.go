// Repository-level benchmarks: one per paper table/figure (wrapping the
// internal/bench harness) plus ablation benchmarks for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package edgepulse_test

import (
	"math/rand"
	"testing"

	"edgepulse/internal/bench"
	"edgepulse/internal/device"
	"edgepulse/internal/dsp"
	"edgepulse/internal/models"
	"edgepulse/internal/nn"
	"edgepulse/internal/profiler"
	"edgepulse/internal/quant"
	"edgepulse/internal/renode"
	"edgepulse/internal/search"
	"edgepulse/internal/tensor"
	"edgepulse/internal/tflm"

	eonc "edgepulse/internal/eon"
)

// BenchmarkTable1Platforms renders the evaluation platform table.
func BenchmarkTable1Platforms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := bench.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Latency regenerates the cross-hardware latency table
// (3 workloads × 3 boards × 2 precisions through the cycle simulator).
func BenchmarkTable2Latency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, cells, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 18 {
			b.Fatalf("%d cells", len(cells))
		}
	}
}

// BenchmarkTable3Tuner runs a quick EON Tuner exploration per iteration
// (train + profile several DSP×NN candidates).
func BenchmarkTable3Tuner(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, trials, err := bench.Table3(bench.Table3Options{Quick: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(trials) == 0 {
			b.Fatal("no trials")
		}
	}
}

// BenchmarkTable4Memory regenerates the memory estimation table.
func BenchmarkTable4Memory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, cells, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 12 {
			b.Fatalf("%d cells", len(cells))
		}
	}
}

// BenchmarkTable5Matrix renders the platform comparison.
func BenchmarkTable5Matrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Table5()
	}
}

// BenchmarkFig1Workflow renders the workflow/feature mapping.
func BenchmarkFig1Workflow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig1()
	}
}

// BenchmarkFig2Dataflow renders the impulse dataflow diagram.
func BenchmarkFig2Dataflow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Fig2()
	}
}

// BenchmarkFig3TunerView renders the tuner result view from one quick
// tuner run.
func BenchmarkFig3TunerView(b *testing.B) {
	b.ReportAllocs()
	_, trials, err := bench.Table3(bench.Table3Options{Quick: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig3(trials)
	}
}

// --- Ablations ---

func kwsModelAndQuant(b testing.TB) (*nn.Model, *quant.QModel, *tensor.F32) {
	b.Helper()
	m := models.KWSDSCNN(49, 10, 12)
	if err := nn.InitWeights(m, 1); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in := tensor.NewF32(49, 10)
	for i := range in.Data {
		in.Data[i] = float32(rng.Float64())
	}
	qm, err := quant.Quantize(m, []*tensor.F32{in})
	if err != nil {
		b.Fatal(err)
	}
	return m, qm, in
}

// BenchmarkAblationTFLMInterpreter measures interpreter-dispatch
// inference on the KWS model (registry lookup per op).
func BenchmarkAblationTFLMInterpreter(b *testing.B) {
	m, _, in := kwsModelAndQuant(b)
	it, err := tflm.NewInterpreter(tflm.ModelFileFromFloat(m))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Invoke(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEONCompiled measures the same model through the EON
// compiled program (direct calls, no per-op dispatch).
func BenchmarkAblationEONCompiled(b *testing.B) {
	m, _, in := kwsModelAndQuant(b)
	prog, err := eonc.Compile(tflm.ModelFileFromFloat(m))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFloatKernels measures float32 host inference.
func BenchmarkAblationFloatKernels(b *testing.B) {
	b.ReportAllocs()
	m, _, in := kwsModelAndQuant(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(in)
	}
}

// BenchmarkAblationInt8Kernels measures int8 host inference on the same
// architecture (int32 accumulators + fixed-point requantization).
func BenchmarkAblationInt8Kernels(b *testing.B) {
	b.ReportAllocs()
	_, qm, in := kwsModelAndQuant(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.Forward(in)
	}
}

// BenchmarkAblationArenaPlanner compares the liveness-based arena to the
// no-reuse baseline, reporting both sizes as metrics.
func BenchmarkAblationArenaPlanner(b *testing.B) {
	b.ReportAllocs()
	m, _, _ := kwsModelAndQuant(b)
	specs, err := m.Spec()
	if err != nil {
		b.Fatal(err)
	}
	bufs := profiler.ActivationBuffers(specs, 4)
	var planned, naive int64
	for i := 0; i < b.N; i++ {
		planned, _ = profiler.PlanArena(bufs)
		naive = profiler.NaiveArena(bufs)
	}
	b.ReportMetric(float64(planned), "planned_bytes")
	b.ReportMetric(float64(naive), "naive_bytes")
	b.ReportMetric(float64(naive)/float64(planned), "reuse_factor")
}

// BenchmarkAblationSearchRandom and ...Hyperband compare search cost on a
// synthetic objective, reporting total training budget spent.
func BenchmarkAblationSearchRandom(b *testing.B) {
	b.ReportAllocs()
	var spent int64
	obj := func(c, budget int) (float64, error) {
		spent += int64(budget)
		d := float64(c - 40)
		return 1 / (1 + d*d), nil
	}
	for i := 0; i < b.N; i++ {
		if _, err := search.Random(100, 30, 27, int64(i), obj); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(spent)/float64(b.N), "budget_units")
}

func BenchmarkAblationSearchHyperband(b *testing.B) {
	b.ReportAllocs()
	var spent int64
	obj := func(c, budget int) (float64, error) {
		spent += int64(budget)
		d := float64(c - 40)
		return 1 / (1 + d*d), nil
	}
	for i := 0; i < b.N; i++ {
		if _, err := search.Hyperband(100, 27, int64(i), obj); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(spent)/float64(b.N), "budget_units")
}

// BenchmarkAblationMFEvsMFCC compares front-end extraction cost.
func BenchmarkAblationMFE(b *testing.B) {
	sig := dsp.Signal{Data: make([]float32, 16000), Rate: 16000, Axes: 1}
	block, err := dsp.NewMFE(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := block.Extract(sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMFCC(b *testing.B) {
	sig := dsp.Signal{Data: make([]float32, 16000), Rate: 16000, Axes: 1}
	block, err := dsp.NewMFCC(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := block.Extract(sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRenodeEstimate measures the cost of one full device
// latency estimation (it must be cheap: the tuner calls it per trial).
func BenchmarkAblationRenodeEstimate(b *testing.B) {
	m, qm, _ := kwsModelAndQuant(b)
	specs, _ := m.Spec()
	block, _ := dsp.NewMFCC(nil)
	sig := dsp.Signal{Data: make([]float32, 16000), Rate: 16000, Axes: 1}
	cost := block.Cost(sig)
	nano := device.MustGet("nano-33-ble-sense")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		renode.EstimateFloat(nano, cost, specs, renode.TFLM)
		renode.EstimateInt8(nano, cost, qm, renode.EON)
	}
}
